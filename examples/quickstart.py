#!/usr/bin/env python3
"""Quickstart: trace a small imbalanced application and find its wait states.

Builds a two-metahost machine, runs a compute-then-barrier workload whose
ranks finish at different times, and prints the analyzer's three panels:
pattern hierarchy, call tree, and system tree.  The fast metahost shows up
as the one *waiting* — the central idea of wait-state analysis.

Run with:  python examples/quickstart.py
"""

from repro import (
    MetaMPIRuntime,
    Placement,
    analyze_run,
    render_analysis,
    uniform_metacomputer,
)
from repro.analysis.patterns import GRID_WAIT_AT_BARRIER, WAIT_AT_BARRIER


def application(ctx):
    """Each rank computes (ranks on metahost 0 work 4x longer), then syncs.

    Applications are plain generator functions: ``yield`` a request built
    from the per-rank :class:`~repro.sim.mpi.Context`, get its result back.
    """
    slow = ctx.metahost_id == 0
    for _step in range(5):
        with ctx.region("solver"):
            yield ctx.compute(0.08 if slow else 0.02)
        with ctx.region("exchange"):
            yield ctx.comm.barrier()


def main() -> None:
    # A metacomputer: two 2-node metahosts joined by a 1 ms WAN link.
    machine = uniform_metacomputer(
        metahost_count=2, node_count=2, cpus_per_node=1
    )
    placement = Placement.block(machine, 4)  # ranks 0-1 / 2-3 per metahost

    # Run the instrumented application: this writes per-metahost trace
    # archives and performs the clock-offset measurements.
    runtime = MetaMPIRuntime(machine, placement, seed=42)
    run = runtime.run(application)
    print(
        f"simulated {run.stats.finish_time:.3f} s, "
        f"{run.stats.collectives} collectives, "
        f"{run.archive_outcome.partial_archive_count} partial archives"
    )

    # Replay-analyze the archives (hierarchical synchronization by default).
    result = analyze_run(run)
    print(render_analysis(result, metric=WAIT_AT_BARRIER, min_pct=0.1))

    # Because the barrier spans metahosts, the waiting is *grid* waiting.
    print(
        f"\ngrid wait at barrier: {result.pct(GRID_WAIT_AT_BARRIER):.1f}% "
        f"of total time (all of it on the fast metahost:"
        f" {result.machine_breakdown(GRID_WAIT_AT_BARRIER)})"
    )


if __name__ == "__main__":
    main()
