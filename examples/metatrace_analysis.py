#!/usr/bin/env python3
"""The paper's Section 5 workflow: analyze MetaTrace on two configurations.

Runs the coupled multi-physics application on (1) the heterogeneous
three-metahost VIOLA testbed and (2) the homogeneous IBM POWER machine
(Table 3), prints the headline pattern severities of Figures 6 and 7, and
uses the cross-experiment algebra to localize what changed — the comparison
the paper performs manually.

Run with:  python examples/metatrace_analysis.py
"""

from repro.analysis.patterns import (
    GRID_LATE_SENDER,
    GRID_WAIT_AT_BARRIER,
    LATE_SENDER,
    WAIT_AT_BARRIER,
)
from repro.experiments.figures import run_metatrace_experiment
from repro.report.algebra import canonicalize, diff
from repro.report.render import render_metric_tree


def describe(outcome) -> None:
    result = outcome.result
    print(f"--- {outcome.label} ---")
    print(f"total time: {result.total_time:.1f} s (sum over 32 processes)")
    for metric in (LATE_SENDER, GRID_LATE_SENDER, WAIT_AT_BARRIER, GRID_WAIT_AT_BARRIER):
        print(f"  {metric:22s} {result.pct(metric):6.2f} % of time")
    print(f"  late sender inside cgiteration():      "
          f"{outcome.late_sender_in('cgiteration'):8.2f} s")
    print(f"  late sender inside getsteering():      "
          f"{outcome.late_sender_in('getsteering'):8.2f} s")
    print(f"  barrier wait in ReadVelFieldFromTrace: "
          f"{outcome.wait_at_barrier_in('ReadVelFieldFromTrace'):8.2f} s")
    print()


def main() -> None:
    print("running Experiment 1 (CAESAR + FH-BRS + FZJ-XD1)...")
    exp1 = run_metatrace_experiment(figure=1, seed=11)
    print("running Experiment 2 (IBM AIX POWER)...\n")
    exp2 = run_metatrace_experiment(figure=2, seed=11)

    describe(exp1)
    describe(exp2)

    print("metric hierarchy of the three-metahost run:")
    print(render_metric_tree(exp1.result, min_pct=0.2))

    # Cross-experiment algebra (the paper's planned Song-et-al. utilities):
    # positive values = time Experiment 1 spent that Experiment 2 did not.
    delta = diff(canonicalize(exp1.result, "exp1"), canonicalize(exp2.result, "exp2"))
    print("\nexp1 − exp2 (where did the heterogeneous run lose time?)")
    print(f"  wait at barrier:   {delta.metric_total(WAIT_AT_BARRIER):+9.2f} s")
    print(f"  late sender:       {delta.metric_total(LATE_SENDER):+9.2f} s")
    print(f"    in cgiteration:  "
          f"{delta.value_in_region(LATE_SENDER, 'MPI_Recv'):+9.2f} s (receives)")
    by_path = delta.by_path(LATE_SENDER)
    steering = sum(v for p, v in by_path.items() if "getsteering" in p)
    print(f"    under getsteering: {steering:+9.2f} s "
          "(negative: the homogeneous run waits MORE for steering)")


if __name__ == "__main__":
    main()
