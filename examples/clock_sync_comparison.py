#!/usr/bin/env python3
"""Compare the three time-stamp synchronization schemes (Table 2 / Figure 3).

Runs the varying-pairs short-message benchmark on the three-metahost VIOLA
testbed with drifting, unsynchronized node clocks, then analyzes the *same*
trace archive with each scheme:

* a single flat offset (no drift compensation),
* two flat offsets + linear interpolation (KOJAK's previous method),
* two hierarchical offsets + interpolation (the paper's contribution).

Prints the clock-condition violations per scheme and the intra-metahost
alignment errors that explain them.

Run with:  python examples/clock_sync_comparison.py
"""

import numpy as np

from repro.experiments.figures import run_figure3
from repro.experiments.table2 import run_table2, table2_text


def main() -> None:
    print("running the clock benchmark on simulated VIOLA "
          "(12 processes, 3 metahosts)...\n")
    rows, run, analyses = run_table2(seed=7)

    print(table2_text(rows))
    print()

    # Why does the flat scheme violate?  Look at how well two slaves of the
    # SAME metahost are aligned relative to each other: the flat scheme
    # derives their mutual offset by subtracting two noisy external-link
    # measurements, the hierarchical scheme measures it over the precise
    # internal link.
    outcome = run_figure3(run)
    print("intra-metahost pairwise alignment error (|error| in µs):")
    for scheme, errors in outcome.pair_errors_us.items():
        abs_err = [abs(e) for e in errors]
        print(
            f"  {scheme:28s} mean {np.mean(abs_err):7.2f}   max {max(abs_err):7.2f}"
        )
    print("  (internal one-way latencies: FZJ 21.5 µs, FH-BRS 44.4 µs)")

    flat = analyses["two-flat-offsets"]
    print(
        f"\nflat-scheme violations are all internal "
        f"({flat.violations.internal_violations} internal / "
        f"{flat.violations.external_violations} external): the 988 µs "
        "external latency hides small errors, the 21–60 µs internal "
        "latencies do not."
    )
    print(
        f"worst reversed gap under the flat scheme: "
        f"{flat.violations.worst_slack_s() * 1e6:.1f} µs"
    )


if __name__ == "__main__":
    main()
