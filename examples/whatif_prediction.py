#!/usr/bin/env python3
"""What-if prediction: port an application to a metacomputer on paper first.

Implements the DIMEMAS workflow the paper cites in its related work: take
an execution trace from a single, homogeneous machine, combine it with the
network parameters of a target metacomputer, and predict the wait states
the port would exhibit — without ever running there.

The example traces a halo-exchange solver on one cluster, then predicts it
on a two-site metacomputer whose sites differ 2× in CPU speed.  The
prediction shows (a) the wall-time change and (b) brand-new *grid* wait
states the single-machine run could not have, localized to the function
that will suffer.

Run with:  python examples/whatif_prediction.py
"""

from repro import MetaMPIRuntime, Placement, analyze_run
from repro.analysis.patterns import GRID_LATE_SENDER, GRID_WAIT_AT_NXN, LATE_SENDER
from repro.analysis.stats import render_statistics, statistics_of
from repro.predict import predict_run, skeleton_from_run
from repro.report.timeline import render_result_timeline
from repro.topology.machine import CpuSpec, homogeneous_metahost
from repro.topology.metacomputer import Metacomputer
from repro.topology.network import LinkClass, LinkSpec
from repro.topology.presets import single_cluster


def solver(ctx):
    """A 1-D halo-exchange stencil with a residual allreduce per step."""
    left, right = (ctx.rank - 1) % ctx.size, (ctx.rank + 1) % ctx.size
    for _step in range(10):
        with ctx.region("stencil"):
            yield ctx.compute(0.03)
            h1 = yield ctx.comm.isend(left, 4096, tag=1)
            h2 = yield ctx.comm.isend(right, 4096, tag=2)
            yield ctx.comm.recv(right, tag=1)
            yield ctx.comm.recv(left, tag=2)
            yield ctx.comm.waitall([h1, h2])
        with ctx.region("residual"):
            yield ctx.comm.allreduce(8)


def target_metacomputer() -> Metacomputer:
    fast = homogeneous_metahost(
        "site-A", node_count=4, cpus_per_node=1,
        cpu=CpuSpec("new", 3.2, speed_factor=2.0),
        internal_latency_s=8e-6, internal_latency_jitter_s=4e-7,
        internal_bandwidth_bps=1.5e9,
    )
    slow = homogeneous_metahost(
        "site-B", node_count=4, cpus_per_node=1,
        cpu=CpuSpec("old", 2.2, speed_factor=1.0),
        internal_latency_s=4e-5, internal_latency_jitter_s=2e-6,
        internal_bandwidth_bps=250e6,
    )
    wan = LinkSpec(
        latency_s=1.5e-3, jitter_s=8e-6, bandwidth_bps=1.25e9,
        link_class=LinkClass.EXTERNAL, name="A<->B",
    )
    return Metacomputer([fast, slow], external_links={(0, 1): wan})


def main() -> None:
    # 1. Trace on the machine we have: one homogeneous cluster.
    source = single_cluster(node_count=8, cpus_per_node=1, speed=1.0)
    run = MetaMPIRuntime(source, Placement.block(source, 8), seed=3).run(solver)
    baseline = analyze_run(run)
    print(f"source run: {run.stats.finish_time:.3f} s wall, "
          f"grid late sender {baseline.pct(GRID_LATE_SENDER):.2f} % "
          "(single machine: necessarily zero)\n")
    print(render_statistics(statistics_of(baseline), top=4))

    # 2. Extract the skeleton and predict the metacomputer port.
    skeleton = skeleton_from_run(run, baseline)
    target = target_metacomputer()
    predicted = predict_run(skeleton, target, Placement.block(target, 8), seed=4)

    print(f"\npredicted on the metacomputer: "
          f"{predicted.predicted_seconds:.3f} s wall")
    for metric in (LATE_SENDER, GRID_LATE_SENDER, GRID_WAIT_AT_NXN):
        print(f"  {metric:18s} {predicted.result.pct(metric):6.2f} % of time")
    print("\npredicted grid late-sender by metahost pair (causer -> waiter):")
    for (causer, waiter), value in predicted.result.grid_pair_breakdown(
        GRID_LATE_SENDER
    ).items():
        print(f"  {causer} -> {waiter}: {value * 1e3:.1f} ms")

    print("\npredicted timeline (rows = ranks, B=barrier, m=p2p, C=collective):")
    print(render_result_timeline(predicted.result, columns=64))


if __name__ == "__main__":
    main()
