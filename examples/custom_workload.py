#!/usr/bin/env python3
"""Build your own metacomputer and workload.

Shows the full public API surface a downstream user needs:

* define metahosts with custom CPU speeds and networks, join them with an
  explicit external link;
* write an application mixing non-blocking halo exchange, reductions and a
  master/worker result collection on a sub-communicator;
* run it without a shared file system, analyze, and drill into a specific
  call path.

Run with:  python examples/custom_workload.py
"""

from repro import MetaMPIRuntime, Placement, analyze_run
from repro.analysis.patterns import (
    EARLY_REDUCE,
    GRID_LATE_SENDER,
    IDLE_THREADS,
    LATE_SENDER,
    WAIT_AT_NXN,
)
from repro.report.render import render_call_tree, render_system_tree
from repro.topology.machine import CpuSpec, homogeneous_metahost
from repro.topology.metacomputer import Metacomputer
from repro.topology.network import LinkClass, LinkSpec

HALO_BYTES = 8 * 1024
RESULT_BYTES = 32 * 1024
STEPS = 8


def build_machine() -> Metacomputer:
    """Two unequal clusters joined by a 2 ms wide-area link."""
    fast = homogeneous_metahost(
        "fast-cluster", node_count=4, cpus_per_node=1,
        cpu=CpuSpec("EPYC", 3.0, speed_factor=2.0),
        internal_latency_s=5e-6, internal_latency_jitter_s=2e-7,
        internal_bandwidth_bps=2e9, interconnect="InfiniBand",
    )
    slow = homogeneous_metahost(
        "campus-cluster", node_count=4, cpus_per_node=1,
        cpu=CpuSpec("Xeon", 2.4, speed_factor=1.0),
        internal_latency_s=5e-5, internal_latency_jitter_s=2e-6,
        internal_bandwidth_bps=125e6, interconnect="GigE",
    )
    wan = LinkSpec(
        latency_s=2e-3, jitter_s=1e-5, bandwidth_bps=1.25e9,
        link_class=LinkClass.EXTERNAL, name="fast<->campus",
        congestion_prob=0.3, congestion_scale_s=5e-5,
    )
    return Metacomputer([fast, slow], external_links={(0, 1): wan})


def application(ctx):
    """1-D halo stencil + allreduce per step; results gathered by rank 0."""
    left = (ctx.rank - 1) % ctx.size
    right = (ctx.rank + 1) % ctx.size
    workers = ctx.get_comm("workers")

    with ctx.region("timeloop"):
        for _step in range(STEPS):
            with ctx.region("stencil"):
                # Hybrid MPI+threads: a fork-join region whose 4 threads
                # carry slightly imbalanced work (Idle Threads severity).
                yield ctx.parallel([0.02, 0.018, 0.02, 0.015])
                # Non-blocking halo exchange with both neighbors.
                h1 = yield ctx.comm.isend(left, HALO_BYTES, tag=1)
                h2 = yield ctx.comm.isend(right, HALO_BYTES, tag=2)
                yield ctx.comm.recv(right, tag=1)
                yield ctx.comm.recv(left, tag=2)
                yield ctx.comm.waitall([h1, h2])
            with ctx.region("residual"):
                yield ctx.comm.allreduce(8)

    with ctx.region("collect"):
        if ctx.rank == 0:
            for _ in range(ctx.size - 1):
                yield ctx.comm.recv()
        else:
            # Workers postprocess before reporting (slower on the campus
            # cluster), then reduce a checksum among themselves.
            yield ctx.compute(0.05)
            if workers is not None:
                yield workers.reduce(8, root=0)
            yield ctx.comm.send(0, RESULT_BYTES, tag=9)


def main() -> None:
    machine = build_machine()
    placement = Placement.block(machine, 8)
    runtime = MetaMPIRuntime(
        machine,
        placement,
        seed=2024,
        subcomms={"workers": list(range(1, 8))},
    )
    run = runtime.run(application)
    result = analyze_run(run)

    print(f"simulated {run.stats.finish_time:.2f} s; "
          f"{run.stats.p2p_messages} messages, "
          f"{run.stats.collectives} collectives\n")

    for metric in (
        LATE_SENDER, GRID_LATE_SENDER, WAIT_AT_NXN, EARLY_REDUCE, IDLE_THREADS,
    ):
        print(f"{metric:18s} {result.metric_total(metric) * 1e3:9.2f} ms "
              f"({result.pct(metric):5.2f} %)")

    print("\nwhere does the stencil wait?")
    print(render_call_tree(result, LATE_SENDER, min_pct=1.0))

    print("\nwho waits? (grid late sender across the WAN boundary)")
    print(render_system_tree(result, GRID_LATE_SENDER))


if __name__ == "__main__":
    main()
