"""Hot-path pipeline benchmark: simulate → encode → decode → replay.

Times each stage of the toolset's end-to-end pipeline on the scaled
Experiment 1 workload (32/64/128 ranks by default) and writes the results
to ``BENCH_pipeline.json``:

* **simulate** — run the coupled MetaTrace application on the simulated
  VIOLA metacomputer and write all trace archives (one pass; includes the
  encoder, since the runtime serializes traces as it goes);
* **encode**   — re-serialize every rank's decoded event list with
  :func:`~repro.trace.encoding.encode_events`;
* **decode**   — parse every rank's trace file with
  :func:`~repro.trace.encoding.decode_events`;
* **replay**   — full :class:`~repro.analysis.replay.ReplayAnalyzer` pass
  (streaming decode, timeline build, matching, pattern accumulation).

Encode/decode/replay are timed as the minimum over ``reps`` repetitions
(the simulation runs once per factor — it is deterministic and by far the
longest stage).  Usable three ways:

* pytest (tier-2 perf suite): ``pytest benchmarks/bench_pipeline_hotpath.py``;
* script: ``PYTHONPATH=src python benchmarks/bench_pipeline_hotpath.py
  --factors 1 2 4 --out BENCH_pipeline.json``;
* library: :func:`run_pipeline_benchmark` from the smoke test.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import time
from typing import Dict, List, Optional, Sequence

from repro.analysis.replay import ReplayAnalyzer
from repro.apps.metatrace import make_metatrace_app
from repro.experiments.configs import scaled_experiment1
from repro.sim.runtime import MetaMPIRuntime
from repro.trace.encoding import decode_events, encode_events

#: Schema identifier written into (and checked against) the JSON artifact.
SCHEMA = "repro-bench-pipeline/1"

#: Default scale factors: 32, 64 and 128 ranks.
DEFAULT_FACTORS = (1, 2, 4)
DEFAULT_SEED = 1
DEFAULT_REPS = 3
DEFAULT_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_pipeline.json"

#: Checked-in perf-smoke budget for the simulate stage (see that file's
#: ``comment`` field for how the numbers were chosen).
PERF_BUDGET_PATH = pathlib.Path(__file__).parent / "perf_baseline.json"

#: Stage keys each result carries, in pipeline order.
STAGE_KEYS = ("simulate_s", "encode_s", "decode_s", "replay_s")


def bench_factor(
    factor: int,
    seed: int = DEFAULT_SEED,
    reps: int = DEFAULT_REPS,
    coupling_intervals: Optional[int] = None,
    cg_iterations: Optional[int] = None,
) -> Dict[str, object]:
    """Time all four stages for one scale factor; returns one result row."""
    metacomputer, placement, config = scaled_experiment1(
        factor, coupling_intervals=coupling_intervals
    )
    if cg_iterations is not None:
        config = dataclasses.replace(config, cg_iterations=cg_iterations)
    nranks = len(config.trace_ranks) + len(config.partrace_ranks)

    runtime = MetaMPIRuntime(
        metacomputer, placement, seed=seed, subcomms=config.subcomms()
    )
    t0 = time.perf_counter()
    run = runtime.run(make_metatrace_app(config))
    simulate_s = time.perf_counter() - t0

    readers = {m: run.reader(m) for m in run.machines_used}
    definitions = next(iter(readers.values())).definitions()
    blobs = []
    for rank in sorted(definitions.locations):
        reader = readers[definitions.locations[rank].machine]
        blobs.append((rank, reader.read_trace_blob(rank)))

    decode_s = float("inf")
    event_count = 0
    decoded: List[object] = []
    for _ in range(reps):
        t0 = time.perf_counter()
        event_count = 0
        decoded = []
        for rank, blob in blobs:
            _, events = decode_events(blob)
            event_count += len(events)
            decoded.append((rank, events))
        decode_s = min(decode_s, time.perf_counter() - t0)

    encode_s = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        for rank, events in decoded:
            encode_events(rank, events)
        encode_s = min(encode_s, time.perf_counter() - t0)

    replay_s = float("inf")
    matched = 0
    for _ in range(reps):
        t0 = time.perf_counter()
        result = ReplayAnalyzer(readers).analyze()
        replay_s = min(replay_s, time.perf_counter() - t0)
        matched = result.violations.total
    return {
        "factor": factor,
        "ranks": nranks,
        "events": event_count,
        "trace_bytes": run.total_trace_bytes,
        "matched_pairs": matched,
        "stages": {
            "simulate_s": simulate_s,
            "encode_s": encode_s,
            "decode_s": decode_s,
            "replay_s": replay_s,
        },
    }


def run_pipeline_benchmark(
    factors: Sequence[int] = DEFAULT_FACTORS,
    seed: int = DEFAULT_SEED,
    reps: int = DEFAULT_REPS,
    coupling_intervals: Optional[int] = None,
    cg_iterations: Optional[int] = None,
) -> Dict[str, object]:
    """Run the benchmark at every factor; returns the JSON-ready document."""
    results: List[Dict[str, object]] = [
        bench_factor(
            factor,
            seed=seed,
            reps=reps,
            coupling_intervals=coupling_intervals,
            cg_iterations=cg_iterations,
        )
        for factor in factors
    ]
    return {
        "schema": SCHEMA,
        "workload": "scaled-experiment1",
        "seed": seed,
        "reps": reps,
        "stage_keys": list(STAGE_KEYS),
        "results": results,
    }


def validate_document(doc: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless *doc* matches the BENCH_pipeline schema."""
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"unexpected schema {doc.get('schema')!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError("results must be a non-empty list")
    for row in results:
        for key in ("factor", "ranks", "events", "trace_bytes", "stages"):
            if key not in row:
                raise ValueError(f"result row missing {key!r}: {row}")
        stages = row["stages"]
        for stage in STAGE_KEYS:
            value = stages.get(stage)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"stage {stage!r} has bad value {value!r}")


def write_document(doc: Dict[str, object], out: pathlib.Path) -> None:
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


try:  # pytest entry point; the module stays runnable without pytest.
    import pytest
except ImportError:  # pragma: no cover - script usage
    pytest = None


if pytest is not None:

    @pytest.mark.perf
    @pytest.mark.slow
    def test_perf_pipeline_hotpath():
        """Full 32/64/128-rank run; writes benchmarks/out/BENCH_pipeline.json."""
        doc = run_pipeline_benchmark()
        validate_document(doc)
        write_document(doc, DEFAULT_OUT)
        for row in doc["results"]:
            assert row["events"] > 0
            # Decode must beat simulate by a wide margin: it reads what the
            # simulation took seconds to produce.
            assert row["stages"]["decode_s"] < row["stages"]["simulate_s"]

    @pytest.mark.perf
    def test_perf_simulate_budget_64_ranks():
        """The simulate stage at 64 ranks must stay inside the checked-in
        budget — guards the batched-sampling/timer-coalescing speedup."""
        budget_doc = json.loads(PERF_BUDGET_PATH.read_text(encoding="utf-8"))
        budget_s = budget_doc["simulate_s_baseline"] * budget_doc["budget_factor"]
        metacomputer, placement, config = scaled_experiment1(budget_doc["factor"])
        runtime = MetaMPIRuntime(
            metacomputer,
            placement,
            seed=budget_doc["seed"],
            subcomms=config.subcomms(),
        )
        t0 = time.perf_counter()
        runtime.run(make_metatrace_app(config))
        simulate_s = time.perf_counter() - t0
        assert simulate_s <= budget_s, (
            f"simulate stage at {budget_doc['ranks']} ranks took "
            f"{simulate_s:.3f}s, budget is {budget_s:.3f}s "
            f"({budget_doc['simulate_s_baseline']}s baseline x "
            f"{budget_doc['budget_factor']} slack)"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--factors",
        type=int,
        nargs="+",
        default=list(DEFAULT_FACTORS),
        help="scale factors (ranks = 32 * factor); default: 1 2 4",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--reps", type=int, default=DEFAULT_REPS, help="min-of-N repetitions"
    )
    parser.add_argument(
        "--intervals",
        type=int,
        default=None,
        help="override coupling_intervals (smaller = faster run)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_OUT, help="output JSON path"
    )
    args = parser.parse_args(argv)
    doc = run_pipeline_benchmark(
        factors=args.factors,
        seed=args.seed,
        reps=args.reps,
        coupling_intervals=args.intervals,
    )
    validate_document(doc)
    write_document(doc, args.out)
    for row in doc["results"]:
        stages = row["stages"]
        print(
            f"factor {row['factor']:>2} ({row['ranks']:>3} ranks, "
            f"{row['events']:>7} events): "
            + "  ".join(f"{k[:-2]} {stages[k]:.4f}s" for k in STAGE_KEYS)
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
