"""Parallel replay-analysis benchmark: serial vs sharded workers.

Times the full replay analysis of the scaled Experiment 1 workload
(64 ranks at the default factor 2) at ``jobs = 1, 2, 4`` and writes the
results to ``BENCH_parallel.json``, extending the perf trajectory of
``BENCH_pipeline.json``:

* **jobs=1** — the serial :class:`~repro.analysis.replay.ReplayAnalyzer`;
* **jobs=N** — :class:`~repro.analysis.parallel.ParallelReplayAnalyzer`
  sharding the same archive across N worker processes.

Every parallel result is checked bit-identical to the serial severity cube
before its timing is recorded — a benchmark of a wrong analysis is
worthless.  The document records ``cpu_count`` because the speedup target
(≥ 2× at 64 ranks) only applies on machines with ≥ 4 cores; on smaller
boxes the numbers quantify the sharding overhead instead.

Usable three ways:

* pytest (tier-2 perf suite): ``pytest benchmarks/bench_parallel_analysis.py``;
* script: ``PYTHONPATH=src python benchmarks/bench_parallel_analysis.py
  --factor 2 --jobs 1 2 4 --out BENCH_parallel.json``;
* library: :func:`run_parallel_benchmark` from the smoke test.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pathlib
import time
from typing import Dict, List, Optional, Sequence

from repro.api import AnalysisRequest, analyze
from repro.apps.metatrace import make_metatrace_app
from repro.experiments.configs import scaled_experiment1
from repro.sim.runtime import MetaMPIRuntime

#: Schema identifier written into (and checked against) the JSON artifact.
SCHEMA = "repro-bench-parallel/1"

DEFAULT_FACTOR = 2  # 64 ranks
DEFAULT_JOBS = (1, 2, 4)
DEFAULT_SEED = 1
DEFAULT_REPS = 3
DEFAULT_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_parallel.json"

def available_cpus() -> int:
    """Cores this machine exposes to the process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_parallel_benchmark(
    factor: int = DEFAULT_FACTOR,
    jobs_list: Sequence[int] = DEFAULT_JOBS,
    seed: int = DEFAULT_SEED,
    reps: int = DEFAULT_REPS,
    coupling_intervals: Optional[int] = None,
    cg_iterations: Optional[int] = None,
) -> Dict[str, object]:
    """Simulate once, analyze at every jobs value; returns the document."""
    metacomputer, placement, config = scaled_experiment1(
        factor, coupling_intervals=coupling_intervals
    )
    if cg_iterations is not None:
        config = dataclasses.replace(config, cg_iterations=cg_iterations)
    nranks = len(config.trace_ranks) + len(config.partrace_ranks)

    runtime = MetaMPIRuntime(
        metacomputer, placement, seed=seed, subcomms=config.subcomms()
    )
    run = runtime.run(make_metatrace_app(config))

    serial_cube = None
    results: List[Dict[str, object]] = []
    for jobs in jobs_list:
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            result = analyze(run, AnalysisRequest(jobs=jobs))
            best = min(best, time.perf_counter() - t0)
        if jobs == 1 or serial_cube is None:
            serial_cube = result.cube.data
        elif result.cube.data != serial_cube:
            raise AssertionError(
                f"jobs={jobs} produced a different severity cube than serial"
            )
        results.append({"jobs": jobs, "analyze_s": best})

    serial_s = next(r["analyze_s"] for r in results if r["jobs"] == 1)
    for row in results:
        row["speedup_vs_serial"] = (
            serial_s / row["analyze_s"] if row["analyze_s"] > 0 else float("inf")
        )
    return {
        "schema": SCHEMA,
        "workload": "scaled-experiment1",
        "factor": factor,
        "ranks": nranks,
        "seed": seed,
        "reps": reps,
        "cpu_count": available_cpus(),
        "trace_bytes": run.total_trace_bytes,
        "results": results,
    }


def validate_document(doc: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless *doc* matches the BENCH_parallel schema."""
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"unexpected schema {doc.get('schema')!r}")
    if not isinstance(doc.get("cpu_count"), int) or doc["cpu_count"] < 1:
        raise ValueError(f"bad cpu_count {doc.get('cpu_count')!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError("results must be a non-empty list")
    if not any(row.get("jobs") == 1 for row in results):
        raise ValueError("results must include the serial jobs=1 baseline")
    for row in results:
        for key in ("jobs", "analyze_s", "speedup_vs_serial"):
            value = row.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"result key {key!r} has bad value {value!r}")


def write_document(doc: Dict[str, object], out: pathlib.Path) -> None:
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


try:  # pytest entry point; the module stays runnable without pytest.
    import pytest
except ImportError:  # pragma: no cover - script usage
    pytest = None


if pytest is not None:

    @pytest.mark.perf
    @pytest.mark.slow
    def test_perf_parallel_analysis():
        """64-rank serial-vs-parallel run; writes BENCH_parallel.json.

        The ≥2× speedup acceptance target applies on machines with ≥4
        cores; elsewhere the run still validates correctness (identical
        cubes) and records the overhead honestly.
        """
        doc = run_parallel_benchmark()
        validate_document(doc)
        write_document(doc, DEFAULT_OUT)
        assert doc["ranks"] == 64
        if doc["cpu_count"] >= 4:
            best = max(r["speedup_vs_serial"] for r in doc["results"])
            assert best >= 2.0, (
                f"expected >=2x parallel speedup on {doc['cpu_count']} cores, "
                f"best was {best:.2f}x"
            )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--factor",
        type=int,
        default=DEFAULT_FACTOR,
        help="scale factor (ranks = 32 * factor); default: 2 (64 ranks)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        nargs="+",
        default=list(DEFAULT_JOBS),
        help="jobs values to time; default: 1 2 4",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--reps", type=int, default=DEFAULT_REPS, help="min-of-N repetitions"
    )
    parser.add_argument(
        "--intervals",
        type=int,
        default=None,
        help="override coupling_intervals (smaller = faster run)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_OUT, help="output JSON path"
    )
    args = parser.parse_args(argv)
    jobs_list = args.jobs if 1 in args.jobs else [1, *args.jobs]
    doc = run_parallel_benchmark(
        factor=args.factor,
        jobs_list=jobs_list,
        seed=args.seed,
        reps=args.reps,
        coupling_intervals=args.intervals,
    )
    validate_document(doc)
    write_document(doc, args.out)
    print(f"{doc['ranks']} ranks on {doc['cpu_count']} cpus:")
    for row in doc["results"]:
        print(
            f"  jobs={row['jobs']:>2}  analyze {row['analyze_s']:.4f}s  "
            f"speedup {row['speedup_vs_serial']:.2f}x"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
