"""Ablation — replay analysis traffic vs merged-trace copying.

The paper argues (Sections 3/4) that the parallel replay "avoids costly
copying of trace data between metahosts": each analysis process only ships
per-event metadata.  This bench quantifies the claim on MetaTrace
Experiment 1 and on a sweep of growing synthetic runs: the bytes a merged
analysis would copy across metahosts versus the metadata bytes the replay
exchanges.
"""

from repro.analysis.replay import analyze_run
from repro.apps.imbalance import make_imbalance_app
from repro.experiments.figures import run_metatrace_experiment
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.metacomputer import Placement
from repro.topology.presets import uniform_metacomputer

from benchmarks.conftest import write_artifact


def _synthetic_traffic(iterations: int):
    mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
    placement = Placement.block(mc, 4)
    runtime = MetaMPIRuntime(mc, placement, seed=1)
    run = runtime.run(
        make_imbalance_app({r: 0.001 for r in range(4)}, iterations=iterations)
    )
    return analyze_run(run).traffic


def test_ablation_replay_traffic(benchmark, artifact_dir):
    def workload():
        outcome = run_metatrace_experiment(figure=1, seed=11, coupling_intervals=3)
        sweep = {n: _synthetic_traffic(n) for n in (10, 50, 200)}
        return outcome.result.traffic, sweep

    metatrace_traffic, sweep = benchmark.pedantic(workload, rounds=1, iterations=1)

    lines = [
        "Ablation: replay metadata vs merged-trace copy volume",
        "",
        f"{'workload':>22s} {'replay [KiB]':>13s} {'merged copy [KiB]':>18s} "
        f"{'saving factor':>14s}",
    ]

    def row(label, traffic):
        return (
            f"{label:>22s} {traffic.replay_metadata_bytes / 1024:13.1f} "
            f"{traffic.merged_copy_bytes / 1024:18.1f} "
            f"{traffic.saving_factor:14.1f}"
        )

    lines.append(row("MetaTrace exp. 1", metatrace_traffic))
    for n, traffic in sweep.items():
        lines.append(row(f"ring x{n}", traffic))
    write_artifact("ablation_replay_traffic.txt", "\n".join(lines))

    # The replay always moves less data than a merge would copy.
    assert metatrace_traffic.saving_factor > 2.0
    for traffic in sweep.values():
        assert traffic.saving_factor > 1.0
    benchmark.extra_info["metatrace_saving_factor"] = metatrace_traffic.saving_factor
