"""Figure 3 — flat vs hierarchical synchronization accuracy.

Quantifies the figure's message: under the flat scheme, slaves of a remote
metahost inherit the external link's offset-measurement error, so their
*mutual* alignment can exceed internal latencies; the hierarchical scheme
keeps intra-metahost alignment at internal-link precision.
"""

import numpy as np

from repro.experiments.figures import run_figure3
from repro.experiments.table2 import run_table2

from benchmarks.conftest import write_artifact


def test_figure3_intra_metahost_alignment(benchmark, artifact_dir):
    def workload():
        _rows, run, _analyses = run_table2(seed=7)
        return run, run_figure3(run)

    run, outcome = benchmark.pedantic(workload, rounds=1, iterations=1)

    lines = [
        "Figure 3: intra-metahost pairwise synchronization error",
        "",
        f"{'scheme':28s} {'pairs':>6s} {'mean |err| [us]':>16s} {'max |err| [us]':>15s}",
    ]
    for scheme, errors in outcome.pair_errors_us.items():
        abs_err = [abs(e) for e in errors]
        lines.append(
            f"{scheme:28s} {len(errors):6d} {np.mean(abs_err):16.3f} "
            f"{max(abs_err):15.3f}"
        )
    lines.append("")
    lines.append("(FZJ internal latency for reference: 21.5 us)")
    write_artifact("figure3.txt", "\n".join(lines))

    flat = outcome.max_abs_us("two-flat-offsets")
    hier = outcome.max_abs_us("two-hierarchical-offsets")
    assert hier < flat
    assert hier < 21.5  # below the smallest internal latency → 0 violations
    benchmark.extra_info["flat_max_err_us"] = flat
    benchmark.extra_info["hierarchical_max_err_us"] = hier
