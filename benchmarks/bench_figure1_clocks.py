"""Figure 1 — clocks with both initial offset and different constant drifts.

Regenerates the offset-vs-time series of two drifting clocks: the mutual
offset starts non-zero and changes linearly, which is why one offset
measurement cannot synchronize a whole run and two measurements plus linear
interpolation can.
"""

from repro.experiments.figures import run_figure1

from benchmarks.conftest import write_artifact


def test_figure1_clock_drift(benchmark, artifact_dir):
    rows = benchmark.pedantic(
        lambda: run_figure1(duration_s=100.0, samples=11), rounds=1, iterations=1
    )
    lines = [
        "Figure 1: clocks with initial offset and different constant drifts",
        "",
        f"{'true time [s]':>14s} {'clock A [s]':>16s} {'clock B [s]':>16s} "
        f"{'offset A-B [ms]':>16s}",
    ]
    for t, a, b, offset in rows:
        lines.append(f"{t:14.1f} {a:16.6f} {b:16.6f} {offset * 1e3:16.6f}")
    write_artifact("figure1.txt", "\n".join(lines))

    offsets = [row[3] for row in rows]
    # Non-zero initial offset, linearly growing divergence.
    assert abs(offsets[0]) > 1e-3
    assert abs(offsets[-1] - offsets[0]) > 1e-4
    benchmark.extra_info["initial_offset_ms"] = offsets[0] * 1e3
    benchmark.extra_info["final_offset_ms"] = offsets[-1] * 1e3
