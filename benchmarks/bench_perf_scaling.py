"""Simulator scaling benchmarks: wall time vs simulated process count.

Measures how the pure-Python substrate scales with world size — relevant
because the paper's own experiments use 32 processes and the VIOLA testbed
offers 232 CPUs.  Each benchmark runs a fixed per-rank workload (ring halo
exchange + allreduce), so total simulated events grow linearly with ranks.
"""

import numpy as np
import pytest

from repro.sim.mpi import World
from repro.topology.metacomputer import Placement
from repro.topology.presets import uniform_metacomputer


def _ring_app(iterations=10):
    def app(ctx):
        succ = (ctx.rank + 1) % ctx.size
        pred = (ctx.rank - 1) % ctx.size
        for _ in range(iterations):
            yield ctx.compute(0.001)
            yield ctx.comm.sendrecv(
                dest=succ, send_size=1024, send_tag=1, source=pred, recv_tag=1
            )
            yield ctx.comm.allreduce(8)

    return app


@pytest.mark.parametrize("nprocs", [8, 32, 128])
def test_perf_world_scaling(benchmark, nprocs):
    mc = uniform_metacomputer(
        metahost_count=2, node_count=max(4, nprocs // 4), cpus_per_node=2
    )
    placement = Placement.block(mc, nprocs)

    def run():
        world = World(mc, placement, rng=np.random.default_rng(1))
        world.launch(_ring_app(), seed=1)
        stats = world.run()
        return stats.p2p_messages

    messages = benchmark(run)
    assert messages == nprocs * 10
    benchmark.extra_info["nprocs"] = nprocs
    benchmark.extra_info["simulated_messages"] = messages
