"""Ablation — eager/rendezvous protocol threshold vs wait-state attribution.

The point-to-point protocol decides *where* a wait state materializes: with
an eager send the receiver absorbs all waiting (Late Sender), while a
rendezvous send stalls the *sender* until the receive is posted (Late
Receiver).  Sweeping the eager threshold across the message size flips the
attribution — evidence that the analyzer distinguishes the two patterns by
observed call timings alone, without knowing the MPI-internal protocol.
"""

from repro.analysis.patterns import LATE_RECEIVER, LATE_SENDER
from repro.analysis.replay import analyze_run
from repro.sim.runtime import MetaMPIRuntime
from repro.sim.transfer import SimParams
from repro.topology.metacomputer import Placement
from repro.topology.presets import single_cluster

from benchmarks.conftest import write_artifact

MESSAGE_BYTES = 256 * 1024


def _late_receiver_app(ctx):
    """Sender ready early; receiver busy — protocol decides who waits."""
    with ctx.region("main"):
        for _ in range(5):
            if ctx.rank == 0:
                yield ctx.comm.send(1, MESSAGE_BYTES, tag=0)
            else:
                yield ctx.compute(0.05)
                yield ctx.comm.recv(0, 0)
        yield ctx.comm.barrier()


def _run(threshold: int):
    mc = single_cluster(node_count=2, cpus_per_node=1)
    placement = Placement.block(mc, 2)
    params = SimParams(eager_threshold_bytes=threshold)
    runtime = MetaMPIRuntime(mc, placement, seed=5, params=params)
    return analyze_run(runtime.run(_late_receiver_app))


def test_ablation_protocol_threshold(benchmark, artifact_dir):
    thresholds = [4 * 1024, 64 * 1024, 1024 * 1024]

    def sweep():
        return {t: _run(t) for t in thresholds}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation: eager threshold vs wait-state attribution",
        f"(message size: {MESSAGE_BYTES // 1024} KiB; receiver busy 50 ms/msg)",
        "",
        f"{'threshold':>12s} {'protocol':>12s} {'late sender [ms]':>17s} "
        f"{'late receiver [ms]':>19s}",
    ]
    for t, result in results.items():
        protocol = "eager" if MESSAGE_BYTES <= t else "rendezvous"
        lines.append(
            f"{t:12d} {protocol:>12s} "
            f"{result.metric_total(LATE_SENDER) * 1e3:17.2f} "
            f"{result.metric_total(LATE_RECEIVER) * 1e3:19.2f}"
        )
    write_artifact("ablation_protocol.txt", "\n".join(lines))

    rendezvous = results[4 * 1024]
    eager = results[1024 * 1024]
    # Rendezvous: the sender stalls → Late Receiver dominates.
    assert rendezvous.metric_total(LATE_RECEIVER) > 0.2
    # Eager: the sender is free → essentially no Late Receiver.
    assert eager.metric_total(LATE_RECEIVER) < 0.01
    benchmark.extra_info["rendezvous_late_receiver_s"] = rendezvous.metric_total(
        LATE_RECEIVER
    )
    benchmark.extra_info["eager_late_receiver_s"] = eager.metric_total(LATE_RECEIVER)
