"""Table 2 — clock-condition violations under the three sync schemes.

One traced run of the varying-pairs short-message benchmark; three analyses
of the same archive.  Shape targets (paper: 7560 / 2179 / 0): the single
flat offset is worst, two flat offsets still violate substantially (always
on internal messages of non-master metahosts), and the hierarchical scheme
is violation-free.
"""

from repro.experiments.table2 import check_table2_shape, run_table2, table2_text

from benchmarks.conftest import write_artifact


def test_table2_clock_condition_violations(benchmark, artifact_dir):
    rows, run, _analyses = benchmark.pedantic(
        lambda: run_table2(seed=7), rounds=1, iterations=1
    )
    text = table2_text(rows)
    write_artifact("table2.txt", text)

    checks = check_table2_shape(rows)
    assert all(checks.values()), checks
    for row in rows:
        benchmark.extra_info[row.scheme] = {
            "violations": row.violations,
            "paper": row.paper_violations,
        }
    benchmark.extra_info["messages"] = rows[0].messages
    benchmark.extra_info["run_seconds_simulated"] = run.stats.finish_time
