"""Table 1 — latencies of the internal and external networks in VIOLA.

Regenerates the three latency rows via the ping-pong benchmark on the
simulated testbed.  Shape targets: external latency two orders of magnitude
above the FZJ internal latency, and the largest jitter on the external
link.
"""

from repro.experiments.table1 import (
    check_table1_shape,
    run_table1,
    table1_text,
)

from benchmarks.conftest import write_artifact


def test_table1_latencies(benchmark, artifact_dir):
    rows = benchmark.pedantic(
        lambda: run_table1(seed=0, repetitions=400), rounds=1, iterations=1
    )
    text = table1_text(rows)
    write_artifact("table1.txt", text)

    checks = check_table1_shape(rows)
    assert all(checks.values()), checks
    for row in rows:
        benchmark.extra_info[row.label] = {
            "mean_us": row.mean_s * 1e6,
            "std_us": row.std_s * 1e6,
            "paper_mean_us": row.paper_mean_s * 1e6,
        }
