"""Ablation — offset-measurement effort vs clock-condition violations.

Sweeps the number of ping-pong exchanges per offset measurement (the
minimum-RTT filter's sample size).  More exchanges sharpen each individual
measurement, but the flat scheme's *structural* error — intra-metahost
alignment inherited from the external link — does not go away, while the
hierarchical scheme is already violation-free with minimal effort.  This is
the design argument for fixing the topology of measurements rather than
spending more probes.
"""

from repro.analysis.replay import analyze_run
from repro.apps.clockbench import ClockBenchConfig, make_clockbench_app
from repro.clocks.measurement import OffsetMeasurementConfig
from repro.clocks.sync import SCHEMES
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.metacomputer import Placement
from repro.topology.presets import CAESAR, FH_BRS, FZJ_XD1, viola_testbed

from benchmarks.conftest import write_artifact


def _violations(exchanges: int):
    mc = viola_testbed()
    placement = Placement.from_counts(
        mc, [(FZJ_XD1, 3, 1), (FH_BRS, 3, 1), (CAESAR, 3, 1)]
    )
    runtime = MetaMPIRuntime(
        mc,
        placement,
        seed=7,
        clock_drift_scale=3e-6,
        measurement_config=OffsetMeasurementConfig(exchanges=exchanges),
    )
    config = ClockBenchConfig(rounds=120, exchanges_per_round=2, inter_round_gap_s=0.15)
    run = runtime.run(make_clockbench_app(config))
    return {
        scheme.name: analyze_run(run, scheme=scheme).violations.violations
        for scheme in SCHEMES
    }


def test_ablation_measurement_effort(benchmark, artifact_dir):
    efforts = [1, 4, 16]

    def sweep():
        return {n: _violations(n) for n in efforts}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation: ping-pongs per offset measurement vs violations",
        "",
        f"{'exchanges':>10s} {'single-flat':>12s} {'two-flat':>10s} "
        f"{'hierarchical':>13s}",
    ]
    for n, by_scheme in results.items():
        lines.append(
            f"{n:10d} {by_scheme['single-flat-offset']:12d} "
            f"{by_scheme['two-flat-offsets']:10d} "
            f"{by_scheme['two-hierarchical-offsets']:13d}"
        )
    write_artifact("ablation_sync_quality.txt", "\n".join(lines))

    for by_scheme in results.values():
        # The hierarchy, not the probe count, is what eliminates violations.
        assert by_scheme["two-hierarchical-offsets"] == 0
        assert by_scheme["two-flat-offsets"] > 0
    benchmark.extra_info["results"] = results
