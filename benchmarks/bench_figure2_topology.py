"""Figures 2 and 5 — the metacomputer schematic and the VIOLA topology.

Renders the structure of the simulated testbed: three metahosts with their
internal networks (Figure 2's hierarchy) and the pairwise 10 Gbps external
links between CAESAR, FH-BRS and FZJ (Figure 5).
"""

from repro.topology.presets import viola_testbed

from benchmarks.conftest import write_artifact


def _render_topology(mc) -> str:
    lines = ["Figures 2/5: VIOLA metacomputer topology", ""]
    for index, host in enumerate(mc.metahosts):
        cpu = host.nodes[0].cpu
        lines.append(
            f"metahost {index}: {host.name} — {host.node_count} nodes × "
            f"{host.nodes[0].cpus} CPUs ({cpu.model} @ {cpu.clock_ghz} GHz, "
            f"speed ×{cpu.speed_factor})"
        )
        lines.append(
            f"  internal: {host.interconnect}, "
            f"{host.internal_latency_s * 1e6:.1f} µs ± "
            f"{host.internal_latency_jitter_s * 1e6:.2f} µs, "
            f"{host.internal_bandwidth_bps / 1e6:.0f} MB/s"
        )
    lines.append("")
    for a in range(mc.machine_count):
        for b in range(a + 1, mc.machine_count):
            link = mc.external_link(a, b)
            lines.append(
                f"external {mc.metahosts[a].name} <-> {mc.metahosts[b].name}: "
                f"{link.latency_s * 1e6:.0f} µs ± {link.jitter_s * 1e6:.2f} µs, "
                f"{link.bandwidth_bps * 8 / 1e9:.0f} Gbps"
            )
    return "\n".join(lines)


def test_figure2_topology_structure(benchmark, artifact_dir):
    mc = benchmark.pedantic(viola_testbed, rounds=1, iterations=1)
    text = _render_topology(mc)
    write_artifact("figure2_figure5.txt", text)

    # Figure 5 facts: three sites, fully meshed with 10 Gbps links.
    assert mc.machine_count == 3
    for a in range(3):
        for b in range(a + 1, 3):
            assert mc.external_link(a, b).bandwidth_bps * 8 == 10e9
    benchmark.extra_info["total_cpus"] = mc.total_cpus
