"""Extension bench — DIMEMAS-style prediction (related work, Section 2).

Badia et al. "used the prediction tool DIMEMAS to predict the performance
on a metacomputer based on execution traces from a single machine in
combination with measured network parameters."  This bench validates our
implementation of that workflow on MetaTrace:

1. **self-prediction**: the Experiment-1 skeleton replayed on Experiment
   1's machine must reproduce the direct simulation's severities;
2. **cross-prediction**: the Experiment-1 skeleton replayed on the
   homogeneous IBM POWER machine must reproduce the *direct* Experiment-2
   analysis — grid severities vanish, steering Late Sender appears — before
   the application ever "runs" there.
"""

from repro.analysis.patterns import (
    GRID_LATE_SENDER,
    GRID_WAIT_AT_BARRIER,
    LATE_SENDER,
    WAIT_AT_BARRIER,
)
from repro.experiments.configs import experiment1, experiment2
from repro.experiments.figures import run_metatrace_experiment
from repro.predict import predict_run, skeleton_from_run

from benchmarks.conftest import write_artifact


def test_prediction_fidelity(benchmark, artifact_dir):
    def workload():
        exp1 = run_metatrace_experiment(figure=1, seed=11)
        exp2 = run_metatrace_experiment(figure=2, seed=11)
        skeleton = skeleton_from_run(exp1.run, exp1.result)
        mc1, placement1, _ = experiment1()
        self_pred = predict_run(skeleton, mc1, placement1, seed=6)
        mc2, placement2, _ = experiment2()
        cross_pred = predict_run(skeleton, mc2, placement2, seed=6)
        return exp1, exp2, self_pred, cross_pred

    exp1, exp2, self_pred, cross_pred = benchmark.pedantic(
        workload, rounds=1, iterations=1
    )

    def row(label, result):
        return (
            f"{label:34s} {result.pct(GRID_LATE_SENDER):8.2f} "
            f"{result.pct(GRID_WAIT_AT_BARRIER):8.2f} "
            f"{result.pct(WAIT_AT_BARRIER):8.2f} "
            f"{result.metric_under_region(LATE_SENDER, 'getsteering'):10.2f}"
        )

    lines = [
        "Prediction bench: skeleton of Experiment 1 re-timed elsewhere",
        "",
        f"{'run':34s} {'gridLS%':>8s} {'gridWAB%':>8s} {'WAB%':>8s} "
        f"{'steerLS[s]':>10s}",
        row("direct exp1", exp1.result),
        row("self-predicted exp1", self_pred.result),
        row("direct exp2", exp2.result),
        row("predicted exp2 (from exp1 trace)", cross_pred.result),
    ]
    write_artifact("prediction.txt", "\n".join(lines))

    # Self-prediction fidelity.
    assert self_pred.result.pct(GRID_WAIT_AT_BARRIER) == (
        exp1.result.pct(GRID_WAIT_AT_BARRIER)
    ) or abs(
        self_pred.result.pct(GRID_WAIT_AT_BARRIER)
        - exp1.result.pct(GRID_WAIT_AT_BARRIER)
    ) < 1.0
    assert abs(
        self_pred.result.pct(GRID_LATE_SENDER) - exp1.result.pct(GRID_LATE_SENDER)
    ) < 1.0
    # Cross-prediction reproduces the homogeneous run's shape.
    assert cross_pred.result.pct(GRID_WAIT_AT_BARRIER) == 0.0
    assert abs(
        cross_pred.result.pct(WAIT_AT_BARRIER) - exp2.result.pct(WAIT_AT_BARRIER)
    ) < 1.0
    predicted_steering = cross_pred.result.metric_under_region(
        LATE_SENDER, "getsteering"
    )
    direct_steering = exp2.result.metric_under_region(LATE_SENDER, "getsteering")
    assert abs(predicted_steering - direct_steering) < 0.3 * max(direct_steering, 1e-9)

    benchmark.extra_info["self_grid_wab_pct"] = self_pred.result.pct(
        GRID_WAIT_AT_BARRIER
    )
    benchmark.extra_info["cross_wab_pct"] = cross_pred.result.pct(WAIT_AT_BARRIER)
