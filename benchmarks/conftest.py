"""Benchmark-suite helpers.

Every benchmark regenerates one table or figure of the paper and writes the
rendered text to ``benchmarks/out/`` so the reproduction artifacts can be
inspected after a run (pytest captures stdout).  Key numbers are also
attached to the pytest-benchmark ``extra_info`` so they appear in the
benchmark JSON.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_artifact(name: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(text, encoding="utf-8")
    print(f"\n=== {name} ===\n{text}\n")
