"""Figure 4 — the Late Sender and Wait at N×N pattern semantics.

Runs the two micro-workloads sketched in the figure — a receive posted
before its matching send, and an n-to-n operation entered at different
moments — and shows that the analyzer attributes the waiting time exactly
as the figure defines it.
"""

from repro.analysis.patterns import (
    GRID_LATE_SENDER,
    GRID_WAIT_AT_NXN,
    LATE_SENDER,
    WAIT_AT_NXN,
)
from repro.experiments.figures import run_figure4
from repro.report.render import render_call_tree

from benchmarks.conftest import write_artifact


def test_figure4_pattern_semantics(benchmark, artifact_dir):
    analyses = benchmark.pedantic(lambda: run_figure4(seed=3), rounds=1, iterations=1)

    ls = analyses["late_sender"]
    nxn = analyses["wait_at_nxn"]
    lines = [
        "Figure 4: exemplary point-to-point and collective patterns",
        "",
        "(a) Late Sender — receive posted before the matching send:",
        f"    late-sender total: {ls.metric_total(LATE_SENDER) * 1e3:.1f} ms "
        f"({ls.pct(LATE_SENDER):.1f} % of time), "
        f"grid share: {ls.metric_total(GRID_LATE_SENDER) * 1e3:.1f} ms",
        render_call_tree(ls, LATE_SENDER, min_pct=1.0),
        "",
        "(b) Wait at N×N — n-to-n operation entered at different moments:",
        f"    wait-at-nxn total: {nxn.metric_total(WAIT_AT_NXN) * 1e3:.1f} ms "
        f"({nxn.pct(WAIT_AT_NXN):.1f} % of time), "
        f"grid share: {nxn.metric_total(GRID_WAIT_AT_NXN) * 1e3:.1f} ms",
        render_call_tree(nxn, WAIT_AT_NXN, min_pct=1.0),
    ]
    write_artifact("figure4.txt", "\n".join(lines))

    assert ls.metric_total(LATE_SENDER) > 0.1
    assert nxn.metric_total(WAIT_AT_NXN) > 0.3
    # The slow rank itself never waits in the n-to-n operation.
    assert nxn.cube.by_rank(WAIT_AT_NXN).get(1, 0.0) == 0.0
    benchmark.extra_info["late_sender_pct"] = ls.pct(LATE_SENDER)
    benchmark.extra_info["wait_at_nxn_pct"] = nxn.pct(WAIT_AT_NXN)
