"""Toolkit performance benchmarks (proper pytest-benchmark timing runs).

These measure the reproduction's own machinery — event-engine throughput,
message matching, trace codec, and replay analysis — rather than paper
results; they guard against performance regressions of the simulator.
"""

import numpy as np

from repro.analysis.replay import analyze_run
from repro.apps.imbalance import make_imbalance_app
from repro.sim.engine import Engine
from repro.sim.mpi import World
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.metacomputer import Placement
from repro.topology.presets import single_cluster, uniform_metacomputer
from repro.trace.encoding import decode_events, encode_events
from repro.trace.events import EnterEvent, ExitEvent, SendEvent


def test_perf_engine_throughput(benchmark):
    def run_engine():
        engine = Engine()
        for i in range(10_000):
            engine.schedule(float(i) * 1e-6, lambda: None)
        engine.run()
        return engine.processed_events

    assert benchmark(run_engine) == 10_000


def test_perf_p2p_message_rate(benchmark):
    mc = single_cluster(node_count=2, cpus_per_node=1)
    placement = Placement.block(mc, 2)

    def pingpong_run():
        def app(ctx):
            for i in range(500):
                if ctx.rank == 0:
                    yield ctx.comm.send(1, 64, tag=0)
                    yield ctx.comm.recv(1, 1)
                else:
                    yield ctx.comm.recv(0, 0)
                    yield ctx.comm.send(0, 64, tag=1)

        world = World(mc, placement, rng=np.random.default_rng(0))
        world.launch(app, seed=0)
        return world.run().p2p_messages

    assert benchmark(pingpong_run) == 1000


def test_perf_trace_codec(benchmark):
    events = []
    t = 0.0
    for i in range(2000):
        events.append(EnterEvent(t, i % 16))
        events.append(SendEvent(t + 1e-6, i % 8, 0, 0, 1024))
        events.append(ExitEvent(t + 2e-6, i % 16))
        t += 1e-5

    def round_trip():
        _, decoded = decode_events(encode_events(0, events))
        return len(decoded)

    assert benchmark(round_trip) == 6000


def test_perf_replay_analysis(benchmark):
    mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
    placement = Placement.block(mc, 4)
    runtime = MetaMPIRuntime(mc, placement, seed=0)
    run = runtime.run(
        make_imbalance_app({r: 0.001 for r in range(4)}, iterations=100)
    )

    def analyze():
        return analyze_run(run).violations.total

    assert benchmark(analyze) == 400  # 4 ranks × 100 ring messages
