"""Ablation — hardware heterogeneity vs application imbalance.

The paper's conclusion states that "from a single experiment it is
difficult to judge whether the load imbalance is caused by the
heterogeneity of the cluster (including varying network characteristics)
or by the application itself".  In simulation we can answer it directly:
sweep ONLY the CAESAR/FH-BRS CPU-speed ratio while keeping the MetaTrace
application fixed.  The grid Late Sender severity inside ``cgiteration()``
should track the hardware gap and vanish at speed parity — proving that in
Experiment 1 the solver's waiting is hardware-caused, while the coupling
(barrier) imbalance has an application component that persists.
"""

from repro.analysis.patterns import GRID_LATE_SENDER, GRID_WAIT_AT_BARRIER
from repro.analysis.replay import analyze_run
from repro.apps.metatrace import make_metatrace_app
from repro.apps.metatrace.config import interleaved_x_coords
from repro.experiments.configs import EXPERIMENT1_BLOCKS, PARTRACE_RANKS, TRACE_RANKS
from repro.apps.metatrace.config import MetaTraceConfig
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.metacomputer import Placement
from repro.topology.presets import viola_testbed

from benchmarks.conftest import write_artifact


def _run(caesar_speed: float, seed: int = 11):
    metacomputer = viola_testbed(caesar_speed=caesar_speed, fhbrs_speed=2.0)
    placement = Placement.from_counts(metacomputer, list(EXPERIMENT1_BLOCKS))
    config = MetaTraceConfig(
        trace_ranks=TRACE_RANKS,
        partrace_ranks=PARTRACE_RANKS,
        dims=(4, 2, 2),
        trace_coords=interleaved_x_coords((4, 2, 2), 8),
        coupling_intervals=3,
    )
    runtime = MetaMPIRuntime(
        metacomputer, placement, seed=seed, subcomms=config.subcomms()
    )
    return analyze_run(runtime.run(make_metatrace_app(config)))


def test_ablation_heterogeneity_sweep(benchmark, artifact_dir):
    speeds = [1.0, 1.5, 2.0]

    def sweep():
        return {s: _run(s) for s in speeds}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation: CAESAR CPU speed vs grid wait states (FH-BRS fixed at 2.0)",
        "",
        f"{'CAESAR speed':>13s} {'speed ratio':>12s} {'grid LS %':>10s} "
        f"{'grid WAB %':>11s}",
    ]
    for speed, result in results.items():
        lines.append(
            f"{speed:13.1f} {2.0 / speed:12.2f} "
            f"{result.pct(GRID_LATE_SENDER):10.2f} "
            f"{result.pct(GRID_WAIT_AT_BARRIER):11.2f}"
        )
    lines += [
        "",
        "At speed parity (ratio 1.0) the solver's grid Late Sender vanishes:",
        "it is hardware-caused.  The coupling barrier wait shrinks but only",
        "partly: the Trace/Partrace work split is an application property.",
    ]
    write_artifact("ablation_heterogeneity.txt", "\n".join(lines))

    ls = {s: r.pct(GRID_LATE_SENDER) for s, r in results.items()}
    # Monotone in the hardware gap, near-zero at parity.
    assert ls[1.0] > ls[1.5] > ls[2.0]
    assert ls[2.0] < 1.0
    assert ls[1.0] > 5.0
    benchmark.extra_info["grid_late_sender_pct_by_speed"] = ls
