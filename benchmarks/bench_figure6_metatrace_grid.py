"""Figure 6 — MetaTrace on three metahosts (Experiment 1 of Table 3).

Regenerates the paper's headline analysis: on the heterogeneous VIOLA
configuration, the Grid Late Sender pattern consumes ≈ 9.3 % of execution
time — concentrated in ``cgiteration()`` with the waiting on the faster
FH-BRS cluster — and Grid Wait at Barrier ≈ 23.1 %, concentrated in
Partrace's ``ReadVelFieldFromTrace()`` on the Cray XD1.
"""

from repro.analysis.patterns import (
    GRID_LATE_SENDER,
    GRID_WAIT_AT_BARRIER,
    LATE_SENDER,
    WAIT_AT_BARRIER,
)
from repro.experiments.configs import table3_text
from repro.experiments.figures import run_metatrace_experiment
from repro.report.render import render_analysis, render_system_tree

from benchmarks.conftest import write_artifact

PAPER_GRID_LATE_SENDER_PCT = 9.3
PAPER_GRID_WAIT_AT_BARRIER_PCT = 23.1


def test_figure6_three_metahost_metatrace(benchmark, artifact_dir):
    outcome = benchmark.pedantic(
        lambda: run_metatrace_experiment(figure=1, seed=11), rounds=1, iterations=1
    )
    result = outcome.result
    text = "\n".join(
        [
            table3_text(),
            "",
            f"measured grid late sender:    {outcome.grid_late_sender_pct:6.2f} % "
            f"(paper: {PAPER_GRID_LATE_SENDER_PCT} %)",
            f"measured grid wait at barrier: {outcome.grid_wait_at_barrier_pct:5.2f} % "
            f"(paper: {PAPER_GRID_WAIT_AT_BARRIER_PCT} %)",
            "",
            render_analysis(result, metric=LATE_SENDER, min_pct=0.5),
            "",
            "-- Wait at Barrier system distribution "
            "(ReadVelFieldFromTrace on the XD1) --",
            render_system_tree(result, WAIT_AT_BARRIER),
        ]
    )
    write_artifact("figure6.txt", text)

    # Shape assertions (bands around the paper's numbers).
    assert 5.0 <= outcome.grid_late_sender_pct <= 15.0
    assert 15.0 <= outcome.grid_wait_at_barrier_pct <= 32.0
    # Late Sender concentrated in cgiteration, waiting on FH-BRS.
    ls_total = result.metric_total(LATE_SENDER)
    assert outcome.late_sender_in("cgiteration") / ls_total > 0.9
    by_machine = result.machine_breakdown(LATE_SENDER)
    assert by_machine["FH-BRS"] > 0.8 * sum(by_machine.values())
    # Barrier waits concentrated in ReadVelFieldFromTrace on the XD1.
    wab_total = result.metric_total(WAIT_AT_BARRIER)
    assert outcome.wait_at_barrier_in("ReadVelFieldFromTrace") / wab_total > 0.9
    wab_by_machine = result.machine_breakdown(WAIT_AT_BARRIER)
    assert wab_by_machine["FZJ-XD1"] > 0.9 * sum(wab_by_machine.values())

    benchmark.extra_info["grid_late_sender_pct"] = outcome.grid_late_sender_pct
    benchmark.extra_info["grid_wait_at_barrier_pct"] = (
        outcome.grid_wait_at_barrier_pct
    )
    benchmark.extra_info["paper_grid_late_sender_pct"] = PAPER_GRID_LATE_SENDER_PCT
    benchmark.extra_info["paper_grid_wait_at_barrier_pct"] = (
        PAPER_GRID_WAIT_AT_BARRIER_PCT
    )
