"""Figure 7 — MetaTrace on one homogeneous metahost (Experiment 2).

On the IBM AIX POWER configuration the grid severities vanish, the Wait at
Barrier inside ``ReadVelFieldFromTrace()`` decreases sharply, the receive
waits inside ``cgiteration()`` shrink — but the Late Sender on the steering
communication from Partrace back to Trace *increases*: "now Trace mostly
waits for Partrace".
"""

from repro.analysis.patterns import LATE_SENDER, WAIT_AT_BARRIER
from repro.experiments.figures import run_metatrace_experiment
from repro.report.render import render_analysis

from benchmarks.conftest import write_artifact


def test_figure7_one_metahost_metatrace(benchmark, artifact_dir):
    def workload():
        return (
            run_metatrace_experiment(figure=1, seed=11),
            run_metatrace_experiment(figure=2, seed=11),
        )

    exp1, exp2 = benchmark.pedantic(workload, rounds=1, iterations=1)

    text = "\n".join(
        [
            "Figure 7: one-metahost (homogeneous) MetaTrace analysis",
            "",
            f"{'metric':34s} {'Experiment 1':>13s} {'Experiment 2':>13s}",
            f"{'grid late sender [% time]':34s} "
            f"{exp1.grid_late_sender_pct:13.2f} {exp2.grid_late_sender_pct:13.2f}",
            f"{'grid wait at barrier [% time]':34s} "
            f"{exp1.grid_wait_at_barrier_pct:13.2f} "
            f"{exp2.grid_wait_at_barrier_pct:13.2f}",
            f"{'wait at barrier [% time]':34s} "
            f"{exp1.wait_at_barrier_pct:13.2f} {exp2.wait_at_barrier_pct:13.2f}",
            f"{'late sender in cgiteration [s]':34s} "
            f"{exp1.late_sender_in('cgiteration'):13.3f} "
            f"{exp2.late_sender_in('cgiteration'):13.3f}",
            f"{'late sender in getsteering [s]':34s} "
            f"{exp1.late_sender_in('getsteering'):13.3f} "
            f"{exp2.late_sender_in('getsteering'):13.3f}",
            "",
            render_analysis(exp2.result, metric=LATE_SENDER, min_pct=0.5),
        ]
    )
    write_artifact("figure7.txt", text)

    # Grid patterns vanish on a single metahost.
    assert exp2.grid_late_sender_pct == 0.0
    assert exp2.grid_wait_at_barrier_pct == 0.0
    # Barrier waiting decreases significantly.
    assert exp2.wait_at_barrier_pct < exp1.wait_at_barrier_pct / 3
    # cgiteration receive waits shrink.
    assert exp2.late_sender_in("cgiteration") < exp1.late_sender_in("cgiteration") / 5
    # Steering Late Sender increases significantly: Trace waits for Partrace.
    assert exp2.late_sender_in("getsteering") > 10 * max(
        exp1.late_sender_in("getsteering"), 1e-9
    )

    benchmark.extra_info["exp1"] = exp1.summary()
    benchmark.extra_info["exp2"] = exp2.summary()
