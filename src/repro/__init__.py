"""repro — automatic trace-based performance analysis of metacomputing applications.

A production-quality Python reproduction of Becker, Wolf, Frings, Geimer,
Wylie, Mohr: *Automatic Trace-Based Performance Analysis of Metacomputing
Applications* (IPPS 2007): a KOJAK/SCALASCA-style wait-state analyzer
extended to metacomputers, together with every substrate it needs — a
metacomputer topology model, a deterministic discrete-event MPI simulator,
unsynchronized node clocks with flat and hierarchical offset-measurement
schemes, per-metahost file systems with the runtime archive-management
protocol, binary event traces, a parallel replay pattern search with grid
pattern variants, and a CUBE-like result presentation with cross-experiment
algebra.

Quickstart::

    from repro import (
        viola_testbed, Placement, MetaMPIRuntime, analyze_run, render_analysis,
    )

    mc = viola_testbed()
    placement = Placement.block(mc, 8)

    def app(ctx):
        yield ctx.compute(0.01 * (1 + ctx.rank))
        yield ctx.comm.barrier()

    run = MetaMPIRuntime(mc, placement, seed=1).run(app)
    result = analyze_run(run)
    print(render_analysis(result, metric="wait-at-barrier"))
"""

from repro.errors import ReproError
from repro.ids import ANY_SOURCE, ANY_TAG, Location, NodeId
from repro.topology import (
    CpuSpec,
    Metacomputer,
    Metahost,
    NodeSpec,
    Placement,
    ibm_aix_power,
    single_cluster,
    uniform_metacomputer,
    viola_testbed,
)
from repro.clocks import (
    ClockEnsemble,
    FlatInterpolation,
    FlatSingleOffset,
    HierarchicalInterpolation,
    LinearClock,
    SCHEMES,
)
from repro.sim import Context, MetaMPIRuntime, RunResult, SimParams, World

# Imported after repro.sim: the faults package reaches back into
# repro.sim.transfer for RetryPolicy, so the sim package must finish
# initializing first (runtime -> faults -> sim.transfer resolves; the
# reverse order is a circular import).
from repro.faults import (
    FaultPlan,
    FileSystemFault,
    LinkDegradation,
    LinkOutage,
    MessageLoss,
    PingFault,
    TraceCorruption,
    TraceTruncation,
)
from repro.analysis import (
    AnalysisResult,
    ReplayAnalyzer,
    analyze_run,
    statistics_of,
    render_statistics,
)
from repro.analysis.patterns import METRICS, metric_tree
# The stable facade (imported after the subsystems it fronts).
from repro.api import (
    analyze,
    resolve_jobs,
    run_experiment,
    simulate,
)
from repro.predict import predict_run, skeleton_from_run
from repro.report import (
    render_result_timeline,
    canonicalize,
    diff,
    mean,
    merge,
    render_analysis,
    render_call_tree,
    render_metric_tree,
    render_system_tree,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ANY_SOURCE",
    "ANY_TAG",
    "Location",
    "NodeId",
    "CpuSpec",
    "Metacomputer",
    "Metahost",
    "NodeSpec",
    "Placement",
    "ibm_aix_power",
    "single_cluster",
    "uniform_metacomputer",
    "viola_testbed",
    "ClockEnsemble",
    "FlatInterpolation",
    "FlatSingleOffset",
    "HierarchicalInterpolation",
    "LinearClock",
    "SCHEMES",
    "FaultPlan",
    "FileSystemFault",
    "LinkDegradation",
    "LinkOutage",
    "MessageLoss",
    "PingFault",
    "TraceCorruption",
    "TraceTruncation",
    "Context",
    "MetaMPIRuntime",
    "RunResult",
    "SimParams",
    "World",
    "AnalysisResult",
    "ReplayAnalyzer",
    "analyze_run",
    "simulate",
    "analyze",
    "run_experiment",
    "resolve_jobs",
    "statistics_of",
    "render_statistics",
    "predict_run",
    "skeleton_from_run",
    "render_result_timeline",
    "METRICS",
    "metric_tree",
    "canonicalize",
    "diff",
    "mean",
    "merge",
    "render_analysis",
    "render_call_tree",
    "render_metric_tree",
    "render_system_tree",
    "__version__",
]
