"""Exception hierarchy for the :mod:`repro` toolkit.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch toolkit failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all toolkit errors."""


class TopologyError(ReproError):
    """Invalid metacomputer topology (unknown metahost, missing link, ...)."""


class RoutingError(TopologyError):
    """No route exists between two locations."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All simulated processes are blocked and no event is pending."""


class MPIUsageError(SimulationError):
    """A simulated MPI call was used incorrectly (bad rank, bad comm, ...)."""


class ClockError(ReproError):
    """Clock-model or synchronization failure."""


class MeasurementError(ClockError):
    """An offset measurement could not be carried out."""


class TraceError(ReproError):
    """Trace data is malformed or inconsistent."""


class EncodingError(TraceError):
    """A trace byte stream could not be encoded or decoded."""


class ArchiveError(TraceError):
    """Experiment-archive layout or manifest problem."""


class FileSystemError(ReproError):
    """Simulated file-system failure (path not visible, already exists, ...)."""


class ArchiveCreationAborted(FileSystemError):
    """The runtime archive-management protocol aborted the measurement.

    Raised when, after the hierarchical creation protocol, at least one
    process still cannot see an archive directory (paper, Section 4,
    *Runtime archive management*: "otherwise the application is aborted").
    """


class AnalysisError(ReproError):
    """Replay analysis failed (unmatched message, malformed trace, ...)."""


class PatternError(AnalysisError):
    """A pattern definition is inconsistent (duplicate name, bad parent)."""


class ReportError(ReproError):
    """Report construction, rendering or algebra failure."""


class ExperimentError(ReproError):
    """An experiment driver was misconfigured."""


class ConfigurationError(ReproError):
    """Runtime configuration problem (missing metahost env vars, ...)."""
