"""Exception hierarchy for the :mod:`repro` toolkit.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch toolkit failures without masking programming errors.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class of all toolkit errors."""


class TopologyError(ReproError):
    """Invalid metacomputer topology (unknown metahost, missing link, ...)."""


class RoutingError(TopologyError):
    """No route exists between two locations."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All simulated processes are blocked and no event is pending."""


class MPIUsageError(SimulationError):
    """A simulated MPI call was used incorrectly (bad rank, bad comm, ...)."""


class CommunicationTimeoutError(SimulationError):
    """A message could not be delivered within the retransmission budget.

    Raised by the transport layer when every retransmission attempt of a
    message fell into a link outage (or was lost) and the retry policy's
    attempt/timeout budget is exhausted — the simulated equivalent of a
    permanently dead external link.

    Attributes
    ----------
    link:
        Name of the link the message could not cross.
    attempts:
        Number of delivery attempts made (original send + retransmits).
    waited_s:
        Total time spent in retransmission backoff before giving up.
    """

    def __init__(
        self, message: str, link: str = "", attempts: int = 0, waited_s: float = 0.0
    ) -> None:
        super().__init__(message)
        self.link = link
        self.attempts = attempts
        self.waited_s = waited_s


class ClockError(ReproError):
    """Clock-model or synchronization failure."""


class MeasurementError(ClockError):
    """An offset measurement could not be carried out."""


class TraceError(ReproError):
    """Trace data is malformed or inconsistent."""


class EncodingError(TraceError):
    """A trace byte stream could not be encoded or decoded."""


class ArchiveError(TraceError):
    """Experiment-archive layout or manifest problem."""


class FileSystemError(ReproError):
    """Simulated file-system failure (path not visible, already exists, ...)."""


class ArchiveCreationAborted(FileSystemError):
    """The runtime archive-management protocol aborted the measurement.

    Raised when, after the hierarchical creation protocol (including any
    retries), at least one process still cannot see an archive directory
    (paper, Section 4, *Runtime archive management*: "otherwise the
    application is aborted").

    Attributes
    ----------
    failing_ranks:
        Global ranks that could not see (or create) the archive directory.
    failing_machines:
        Names of the metahosts those ranks run on.
    path:
        The archive path that could not be provided.
    """

    def __init__(
        self,
        message: str,
        failing_ranks: tuple = (),
        failing_machines: tuple = (),
        path: str = "",
    ) -> None:
        super().__init__(message)
        self.failing_ranks = tuple(failing_ranks)
        self.failing_machines = tuple(failing_machines)
        self.path = path


class PartialTraceWarning(UserWarning):
    """A trace file was truncated or corrupt and only a prefix was salvaged.

    Emitted (via :func:`warnings.warn`) by degraded-mode replay when a
    rank's event stream could not be decoded completely; the analysis then
    proceeds on the intersection of fully decoded ranks.
    """


class AnalysisError(ReproError):
    """Replay analysis failed (unmatched message, malformed trace, ...)."""


class PatternError(AnalysisError):
    """A pattern definition is inconsistent (duplicate name, bad parent)."""


class ReportError(ReproError):
    """Report construction, rendering or algebra failure."""


class ExperimentError(ReproError):
    """An experiment driver was misconfigured."""


class ConfigurationError(ReproError):
    """Runtime configuration problem (missing metahost env vars, ...)."""


class CheckpointError(ReproError):
    """The checkpoint journal could not be read or written."""


class CheckpointLockError(CheckpointError):
    """Another writer already holds the journal's advisory lock.

    Two concurrent writers on one journal (two sweeps with ``--journal``,
    or a service and a CLI sharing one job store) would interleave their
    rewrite cycles and silently lose each other's cells; the advisory
    ``fcntl`` lock makes the second writer fail fast with this error
    instead.

    Attributes
    ----------
    path:
        The journal path whose lock could not be acquired.
    holder:
        Contents of the lock file (the holder's pid) when readable.
    """

    def __init__(self, message: str, path: str = "", holder: str = "") -> None:
        super().__init__(message)
        self.path = path
        self.holder = holder


class PoolShutdown(ReproError):
    """A supervised pool run was interrupted by a graceful shutdown.

    Raised out of :meth:`~repro.resilience.pool.SupervisedPool.run` when
    :meth:`~repro.resilience.pool.SupervisedPool.request_shutdown` was
    called (directly, or by the pool's SIGTERM/SIGINT handler) before all
    tasks settled.  In-flight workers were drained or killed and reaped
    first — nothing is left orphaned.

    Attributes
    ----------
    reason:
        Why the shutdown was requested (e.g. ``"signal 15 (SIGTERM)"``).
    results:
        Results of the tasks that completed before the drain ended, keyed
        by task index.
    report:
        The final :class:`~repro.resilience.pool.ExecutionReport`, with a
        ``cancelled`` failure entry for every task that did not settle.
    """

    def __init__(self, reason: str, results=None, report=None) -> None:
        super().__init__(f"pool shut down before all tasks settled: {reason}")
        self.reason = reason
        self.results = dict(results or {})
        self.report = report


class TimeBudgetExceeded(ReproError):
    """An end-to-end deadline expired (or was cancelled) before work finished.

    Raised by deadline-aware layers — the streaming analyzer's pump, the
    supervised pool's dispatch loop, the service executor — when the
    :class:`~repro.resilience.deadline.Deadline` attached to the request
    runs out or a client cancels it.  Whatever partial progress exists at
    that point travels on the exception so callers can salvage it.

    Attributes
    ----------
    reason:
        Why the budget ended (``"deadline of 2.0s exceeded"`` or a
        cancellation reason such as ``"cancelled by client"``).
    results:
        Partial results keyed by task index, when a pool run was cut
        short (mirrors :class:`PoolShutdown`).
    report:
        The :class:`~repro.resilience.pool.ExecutionReport` for the cut
        run, when one exists.
    """

    def __init__(self, reason: str, results=None, report=None) -> None:
        super().__init__(f"time budget exhausted: {reason}")
        self.reason = reason
        self.results = dict(results or {})
        self.report = report


class ServiceError(ReproError):
    """The analysis service rejected or could not process a request."""


class JobValidationError(ServiceError):
    """A submitted job specification is malformed or names unknown work."""


class JobRejected(ServiceError):
    """Admission control rejected a job (queue full / service draining).

    Attributes
    ----------
    retry_after_s:
        Suggested client backoff before resubmitting.
    status:
        HTTP status the transport should use, or ``None`` to let it pick
        (draining → 503, queue pressure → 429).  The circuit breaker sets
        503 explicitly: an open breaker is server trouble, not client load.
    """

    def __init__(
        self,
        message: str,
        retry_after_s: float = 1.0,
        status: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.status = status
