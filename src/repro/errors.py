"""Exception hierarchy for the :mod:`repro` toolkit.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch toolkit failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all toolkit errors."""


class TopologyError(ReproError):
    """Invalid metacomputer topology (unknown metahost, missing link, ...)."""


class RoutingError(TopologyError):
    """No route exists between two locations."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All simulated processes are blocked and no event is pending."""


class MPIUsageError(SimulationError):
    """A simulated MPI call was used incorrectly (bad rank, bad comm, ...)."""


class CommunicationTimeoutError(SimulationError):
    """A message could not be delivered within the retransmission budget.

    Raised by the transport layer when every retransmission attempt of a
    message fell into a link outage (or was lost) and the retry policy's
    attempt/timeout budget is exhausted — the simulated equivalent of a
    permanently dead external link.

    Attributes
    ----------
    link:
        Name of the link the message could not cross.
    attempts:
        Number of delivery attempts made (original send + retransmits).
    waited_s:
        Total time spent in retransmission backoff before giving up.
    """

    def __init__(
        self, message: str, link: str = "", attempts: int = 0, waited_s: float = 0.0
    ) -> None:
        super().__init__(message)
        self.link = link
        self.attempts = attempts
        self.waited_s = waited_s


class ClockError(ReproError):
    """Clock-model or synchronization failure."""


class MeasurementError(ClockError):
    """An offset measurement could not be carried out."""


class TraceError(ReproError):
    """Trace data is malformed or inconsistent."""


class EncodingError(TraceError):
    """A trace byte stream could not be encoded or decoded."""


class ArchiveError(TraceError):
    """Experiment-archive layout or manifest problem."""


class FileSystemError(ReproError):
    """Simulated file-system failure (path not visible, already exists, ...)."""


class ArchiveCreationAborted(FileSystemError):
    """The runtime archive-management protocol aborted the measurement.

    Raised when, after the hierarchical creation protocol (including any
    retries), at least one process still cannot see an archive directory
    (paper, Section 4, *Runtime archive management*: "otherwise the
    application is aborted").

    Attributes
    ----------
    failing_ranks:
        Global ranks that could not see (or create) the archive directory.
    failing_machines:
        Names of the metahosts those ranks run on.
    path:
        The archive path that could not be provided.
    """

    def __init__(
        self,
        message: str,
        failing_ranks: tuple = (),
        failing_machines: tuple = (),
        path: str = "",
    ) -> None:
        super().__init__(message)
        self.failing_ranks = tuple(failing_ranks)
        self.failing_machines = tuple(failing_machines)
        self.path = path


class PartialTraceWarning(UserWarning):
    """A trace file was truncated or corrupt and only a prefix was salvaged.

    Emitted (via :func:`warnings.warn`) by degraded-mode replay when a
    rank's event stream could not be decoded completely; the analysis then
    proceeds on the intersection of fully decoded ranks.
    """


class AnalysisError(ReproError):
    """Replay analysis failed (unmatched message, malformed trace, ...)."""


class PatternError(AnalysisError):
    """A pattern definition is inconsistent (duplicate name, bad parent)."""


class ReportError(ReproError):
    """Report construction, rendering or algebra failure."""


class ExperimentError(ReproError):
    """An experiment driver was misconfigured."""


class ConfigurationError(ReproError):
    """Runtime configuration problem (missing metahost env vars, ...)."""


class CheckpointError(ReproError):
    """The checkpoint journal could not be read or written."""
