"""Clock substrate and time-stamp synchronization.

Implements the paper's clock model (Figure 1: node-local clocks with both
initial offset and different constant drifts), the remote-clock-reading
offset measurement of Cristian, and the three synchronization schemes
compared in Table 2:

* single flat offset (no drift compensation),
* two flat offsets + linear interpolation (KOJAK's previous method),
* two *hierarchical* offsets + linear interpolation (this paper's method).
"""

from repro.clocks.clock import LinearClock, ClockEnsemble, perfect_clock
from repro.clocks.measurement import (
    OffsetMeasurement,
    measure_offset,
    OffsetMeasurementConfig,
)
from repro.clocks.sync import (
    LinearConverter,
    SyncData,
    NodeSyncRecord,
    SyncScheme,
    FlatSingleOffset,
    FlatInterpolation,
    HierarchicalInterpolation,
    SCHEMES,
)
from repro.clocks.condition import (
    ClockConditionChecker,
    count_violations,
    MessageStamp,
)

__all__ = [
    "LinearClock",
    "ClockEnsemble",
    "perfect_clock",
    "OffsetMeasurement",
    "measure_offset",
    "OffsetMeasurementConfig",
    "LinearConverter",
    "SyncData",
    "NodeSyncRecord",
    "SyncScheme",
    "FlatSingleOffset",
    "FlatInterpolation",
    "HierarchicalInterpolation",
    "SCHEMES",
    "ClockConditionChecker",
    "count_violations",
    "MessageStamp",
]
