"""Clock-condition checking.

The *clock condition* (paper Section 3) is the causal order of communication
events: a message must be received after it was sent.  After synchronization
maps all time stamps to master time, any matched send/receive pair with
``recv_time < send_time`` violates the condition.  The parallel analyzer of
the paper "has been extended to report violations of the clock condition";
Table 2 counts them for the three synchronization schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, NamedTuple

from repro.ids import NodeId


class MessageStamp(NamedTuple):
    """One matched message with synchronized (master-time) stamps.

    ``send_time_s`` is the stamp of the SEND event on the sender,
    ``recv_time_s`` the stamp of the RECV event on the receiver, both
    already converted to master time.  A ``NamedTuple`` because the replay
    creates one per matched pair.
    """

    sender_node: NodeId
    receiver_node: NodeId
    send_time_s: float
    recv_time_s: float

    @property
    def violates(self) -> bool:
        """True when the message appears to arrive before it was sent."""
        return self.recv_time_s < self.send_time_s

    @property
    def slack_s(self) -> float:
        """Synchronized receive-minus-send gap; negative iff violating."""
        return self.recv_time_s - self.send_time_s

    @property
    def crosses_nodes(self) -> bool:
        return self.sender_node != self.receiver_node


def count_violations(stamps: Iterable[MessageStamp]) -> int:
    """Number of clock-condition violations in *stamps* (the Table 2 metric)."""
    return sum(1 for s in stamps if s.violates)


@dataclass
class ClockConditionChecker:
    """Accumulates matched messages and summarizes violations.

    Used by the replay analyzer: every matched point-to-point pair is fed in
    with synchronized stamps; the summary separates internal (same-metahost)
    from external (cross-metahost) violations, which is the breakdown that
    explains *why* the flat scheme fails (its violations concentrate on
    internal links of non-master metahosts).
    """

    stamps: List[MessageStamp] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.stamps is None:
            self.stamps = []

    def add(self, stamp: MessageStamp) -> None:
        self.stamps.append(stamp)

    @property
    def total(self) -> int:
        return len(self.stamps)

    @property
    def violations(self) -> int:
        return count_violations(self.stamps)

    @property
    def internal_violations(self) -> int:
        """Violations on messages whose endpoints share a metahost."""
        return sum(
            1
            for s in self.stamps
            if s.violates and s.sender_node.machine == s.receiver_node.machine
        )

    @property
    def external_violations(self) -> int:
        """Violations on messages crossing metahost boundaries."""
        return self.violations - self.internal_violations

    def worst_slack_s(self) -> float:
        """Most negative synchronized gap (0 when nothing violates)."""
        worst = min((s.slack_s for s in self.stamps), default=0.0)
        return min(worst, 0.0)

    def summary(self) -> dict:
        return {
            "messages": self.total,
            "violations": self.violations,
            "internal_violations": self.internal_violations,
            "external_violations": self.external_violations,
            "worst_slack_s": self.worst_slack_s(),
        }
