"""Time-stamp synchronization schemes.

Post-mortem trace analysis needs all event time stamps expressed in one
global time base — conventionally the clock of the node hosting rank zero
("master time").  Three schemes are implemented, matching the three rows of
the paper's Table 2:

``FlatSingleOffset``
    One offset measurement per node against the master at program start;
    no drift compensation.

``FlatInterpolation``
    Two offset measurements (program start and end) per node against the
    master; linear interpolation removes constant drift.  This is KOJAK's
    previous, *flat* method: every slave contacts the master directly, so
    slaves of a remote metahost inherit the (large) external-link
    measurement error — and their offsets *relative to each other* can be
    wrong at the scale of that error, which exceeds internal latencies.

``HierarchicalInterpolation``
    The paper's contribution.  Each metahost appoints a local master; one
    metamaster is chosen among the local masters.  Local masters measure
    against the metamaster (external link, larger error), slaves measure
    against their local master (internal link, small error), and the two
    linear corrections compose.  Slaves of one metahost share the same
    inter-metahost correction, so their *relative* offsets only carry
    internal-link error.  If a metahost has a hardware global clock the
    slave step is skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.clocks.clock import ClockEnsemble
from repro.clocks.measurement import (
    OffsetMeasurement,
    OffsetMeasurementConfig,
    measure_offset,
)
from repro.errors import ClockError, MeasurementError
from repro.ids import Location, NodeId
from repro.topology.metacomputer import Metacomputer


#: Minimum anchor separation for drift interpolation, in units of the
#: winning exchange's round-trip time.  Below this the offset difference
#: between the two anchors is dominated by measurement error (≤ RTT/2 of
#: latency asymmetry each), so a fitted gradient is noise and the
#: interpolating converter degrades to the single-offset form instead.
#: Normal runs sit far above this (figure6's worst pair is ~2200 RTTs);
#: only very short runs, whose start/end measurement rounds overlap in
#: time, fall below it.
MIN_DRIFT_BASELINE_RTTS = 100.0


@dataclass(frozen=True)
class LinearConverter:
    """Affine map from one clock's local time to another's: ``out = slope*t + intercept``."""

    slope: float = 1.0
    intercept: float = 0.0

    def convert(self, local: float) -> float:
        return self.slope * local + self.intercept

    def then(self, outer: "LinearConverter") -> "LinearConverter":
        """Composition ``outer(self(t))``."""
        return LinearConverter(
            slope=outer.slope * self.slope,
            intercept=outer.slope * self.intercept + outer.intercept,
        )

    @staticmethod
    def identity() -> "LinearConverter":
        return LinearConverter(1.0, 0.0)

    @staticmethod
    def from_single_offset(measurement: OffsetMeasurement) -> "LinearConverter":
        """Reference time ≈ local − offset, with unit slope (no drift model)."""
        return LinearConverter(1.0, -measurement.offset_s)

    @staticmethod
    def from_interpolation(
        start: OffsetMeasurement, end: OffsetMeasurement
    ) -> "LinearConverter":
        """Linear interpolation between two offset measurements.

        With offsets ``o1`` at slave-local ``s1`` and ``o2`` at ``s2``::

            ref(s) = s - [ o1 + (o2 - o1) * (s - s1) / (s2 - s1) ]

        which is affine in ``s``.  Falls back to the single-offset form when
        the anchors are too close for a drift estimate: each offset carries
        up to half its exchange's latency asymmetry as error, so a baseline
        within :data:`MIN_DRIFT_BASELINE_RTTS` round-trip times makes the
        gradient noise-dominated — extrapolating it would amplify the
        measurement error far beyond what a plain offset correction incurs.
        (Very short runs can even land the two rounds' winning exchanges at
        nearly the same instant.)
        """
        s1, s2 = start.slave_local_s, end.slave_local_s
        baseline = abs(s2 - s1)
        if baseline <= MIN_DRIFT_BASELINE_RTTS * max(start.rtt_s, end.rtt_s):
            return LinearConverter.from_single_offset(start)
        gradient = (end.offset_s - start.offset_s) / (s2 - s1)
        # ref(s) = s - o1 - gradient*(s - s1) = (1 - gradient)*s + (gradient*s1 - o1)
        return LinearConverter(1.0 - gradient, gradient * s1 - start.offset_s)


@dataclass
class NodeSyncRecord:
    """All offset measurements collected for one node.

    ``flat_*`` entries are against the global master (used by the flat
    schemes); ``local_*`` against the node's local master and ``meta_*``
    (local masters only) against the metamaster (used by the hierarchical
    scheme).
    """

    node: NodeId
    machine: int
    flat_start: Optional[OffsetMeasurement] = None
    flat_end: Optional[OffsetMeasurement] = None
    local_start: Optional[OffsetMeasurement] = None
    local_end: Optional[OffsetMeasurement] = None
    meta_start: Optional[OffsetMeasurement] = None
    meta_end: Optional[OffsetMeasurement] = None


@dataclass
class SyncData:
    """Everything a synchronization scheme may consume.

    Attributes
    ----------
    master_node:
        Node hosting the process with rank zero; its clock defines master
        time.  It is also the metamaster of the hierarchical scheme.
    records:
        Per-node measurement records.
    local_masters:
        Mapping machine index → node acting as that metahost's local master.
    global_clock_machines:
        Machines whose nodes share a hardware-synchronized clock; the
        hierarchical scheme skips the slave step there.
    failures:
        Human-readable descriptions of offset measurements that could not
        be carried out (all probes lost under fault injection).  The
        corresponding record fields stay ``None``; non-strict schemes fall
        back around them.
    """

    master_node: NodeId
    records: Dict[NodeId, NodeSyncRecord] = field(default_factory=dict)
    local_masters: Dict[int, NodeId] = field(default_factory=dict)
    global_clock_machines: frozenset = frozenset()
    failures: List[str] = field(default_factory=list)

    def record(self, node: NodeId) -> NodeSyncRecord:
        try:
            return self.records[node]
        except KeyError:
            raise ClockError(f"no synchronization record for node {node}") from None

    def nodes(self) -> List[NodeId]:
        return sorted(self.records)


def _interp_or_single(
    start: Optional[OffsetMeasurement], end: Optional[OffsetMeasurement]
) -> Optional[LinearConverter]:
    """Best converter obtainable from whatever measurements survived.

    Interpolation with both anchors, single-offset with one, ``None`` with
    neither — the degradation ladder non-strict schemes walk down.
    """
    if start is not None and end is not None:
        return LinearConverter.from_interpolation(start, end)
    if start is not None:
        return LinearConverter.from_single_offset(start)
    if end is not None:
        return LinearConverter.from_single_offset(end)
    return None


class SyncScheme:
    """Base class: turns :class:`SyncData` into per-node converters.

    ``strict`` (the default) raises :class:`~repro.errors.ClockError` on
    missing measurements.  With ``strict=False`` each scheme degrades
    instead: interpolation falls back to a single offset, the hierarchical
    scheme falls back to flat measurements for a metahost whose local
    master is unreachable, and as a last resort a node converts through the
    identity — degraded-mode replay prefers an imprecise time base over no
    analysis at all.
    """

    #: Short identifier used by experiment drivers and Table 2 rows.
    name: str = "abstract"

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict

    def converters(self, data: SyncData) -> Dict[NodeId, LinearConverter]:
        raise NotImplementedError

    def convert_all(self, data: SyncData) -> "SynchronizedTime":
        return SynchronizedTime(self.converters(data))

    def _missing(self, message: str) -> LinearConverter:
        """Strict: raise; non-strict: last-resort identity conversion."""
        if self.strict:
            raise ClockError(message)
        return LinearConverter.identity()


@dataclass
class SynchronizedTime:
    """Per-node converters bundled with a convenience lookup."""

    converters: Dict[NodeId, LinearConverter]

    def to_master(self, node: NodeId, local: float) -> float:
        try:
            return self.converters[node].convert(local)
        except KeyError:
            raise ClockError(f"no converter for node {node}") from None


class FlatSingleOffset(SyncScheme):
    """One start-of-run offset per node, no drift compensation (Table 2 row 1)."""

    name = "single-flat-offset"

    def converters(self, data: SyncData) -> Dict[NodeId, LinearConverter]:
        out: Dict[NodeId, LinearConverter] = {}
        for node, rec in data.records.items():
            if node == data.master_node:
                out[node] = LinearConverter.identity()
                continue
            if rec.flat_start is None:
                fallback = None if self.strict else _interp_or_single(None, rec.flat_end)
                if fallback is None:
                    fallback = self._missing(
                        f"node {node} lacks a flat start measurement"
                    )
                out[node] = fallback
                continue
            out[node] = LinearConverter.from_single_offset(rec.flat_start)
        return out


class FlatInterpolation(SyncScheme):
    """Two flat offsets + linear interpolation (Table 2 row 2, KOJAK's method)."""

    name = "two-flat-offsets"

    def converters(self, data: SyncData) -> Dict[NodeId, LinearConverter]:
        out: Dict[NodeId, LinearConverter] = {}
        for node, rec in data.records.items():
            if node == data.master_node:
                out[node] = LinearConverter.identity()
                continue
            if rec.flat_start is None or rec.flat_end is None:
                fallback = (
                    None
                    if self.strict
                    else _interp_or_single(rec.flat_start, rec.flat_end)
                )
                if fallback is None:
                    fallback = self._missing(
                        f"node {node} lacks flat start/end measurements"
                    )
                out[node] = fallback
                continue
            out[node] = LinearConverter.from_interpolation(rec.flat_start, rec.flat_end)
        return out


class HierarchicalInterpolation(SyncScheme):
    """Two hierarchical offsets + linear interpolation (Table 2 row 3, this paper)."""

    name = "two-hierarchical-offsets"

    def converters(self, data: SyncData) -> Dict[NodeId, LinearConverter]:
        # First build local-master -> metamaster converters.
        meta_conv: Dict[int, LinearConverter] = {}
        for machine, local_master in data.local_masters.items():
            if local_master == data.master_node:
                meta_conv[machine] = LinearConverter.identity()
                continue
            rec = data.record(local_master)
            if rec.meta_start is None or rec.meta_end is None:
                if self.strict:
                    raise ClockError(
                        f"local master {local_master} lacks metamaster measurements"
                    )
                # Unreachable local master: degrade the whole metahost to
                # whatever survived — partial metamaster measurements, then
                # the local master's flat measurements, then identity.
                converter = _interp_or_single(rec.meta_start, rec.meta_end)
                if converter is None:
                    converter = _interp_or_single(rec.flat_start, rec.flat_end)
                meta_conv[machine] = (
                    converter if converter is not None else LinearConverter.identity()
                )
                continue
            meta_conv[machine] = LinearConverter.from_interpolation(
                rec.meta_start, rec.meta_end
            )

        out: Dict[NodeId, LinearConverter] = {}
        for node, rec in data.records.items():
            machine_converter = meta_conv.get(rec.machine)
            if machine_converter is None:
                if self.strict:
                    raise ClockError(f"machine {rec.machine} has no local master")
                machine_converter = LinearConverter.identity()
            if (
                node == data.local_masters.get(rec.machine)
                or rec.machine in data.global_clock_machines
            ):
                # Local masters (and every node of a globally-clocked
                # metahost) convert straight to metamaster time.
                out[node] = machine_converter
                continue
            if rec.local_start is None or rec.local_end is None:
                if self.strict:
                    raise ClockError(f"node {node} lacks local-master measurements")
                # Fall back from the hierarchy to this node's own flat
                # measurements (the pre-paper scheme), then to the
                # metahost-level converter alone.
                local = _interp_or_single(rec.local_start, rec.local_end)
                if local is not None:
                    out[node] = local.then(machine_converter)
                else:
                    flat = _interp_or_single(rec.flat_start, rec.flat_end)
                    out[node] = flat if flat is not None else machine_converter
                continue
            to_local_master = LinearConverter.from_interpolation(
                rec.local_start, rec.local_end
            )
            out[node] = to_local_master.then(machine_converter)
        return out


#: Registry used by experiment drivers (Table 2 rows, in paper order).
SCHEMES: Tuple[SyncScheme, ...] = (
    FlatSingleOffset(),
    FlatInterpolation(),
    HierarchicalInterpolation(),
)


def collect_sync_data(
    metacomputer: Metacomputer,
    machine_nodes: Mapping[int, List[NodeId]],
    clocks: ClockEnsemble,
    master_node: NodeId,
    run_start_s: float,
    run_end_s: float,
    rng: np.random.Generator,
    config: OffsetMeasurementConfig = OffsetMeasurementConfig(),
    injector: Any = None,
) -> SyncData:
    """Carry out all offset measurements of a run (start and end rounds).

    Parameters
    ----------
    machine_nodes:
        Machine index → ordered list of nodes in use; the *first* node of
        each machine becomes its local master.  The machine hosting
        *master_node* must list it first so the metamaster is rank zero's
        node, matching the paper's convention.
    run_start_s / run_end_s:
        True times of the two measurement rounds ("taken at program start
        and repeated at program end").
    injector:
        Optional fault injector; dropped pings are re-pinged inside
        :func:`~repro.clocks.measurement.measure_offset`, and measurements
        whose every probe is lost are recorded in ``SyncData.failures``
        (their record fields stay ``None``) instead of raising.
    """
    if run_end_s < run_start_s:
        raise ClockError(
            f"run end {run_end_s} precedes run start {run_start_s}"
        )
    local_masters = {}
    for machine, nodes in machine_nodes.items():
        if not nodes:
            raise ClockError(f"machine {machine} has no nodes in use")
        local_masters[machine] = nodes[0]
    master_machine = master_node.machine
    if local_masters.get(master_machine) != master_node:
        raise ClockError(
            "master node must be the first node of its machine "
            f"(got {local_masters.get(master_machine)}, expected {master_node})"
        )

    global_clock_machines = frozenset(
        machine
        for machine in machine_nodes
        if metacomputer.metahost(machine).has_global_clock
    )

    data = SyncData(
        master_node=master_node,
        local_masters=local_masters,
        global_clock_machines=global_clock_machines,
    )

    def link_model(a: NodeId, b: NodeId):
        loc_a = Location(a.machine, a.node, 0, 0)
        loc_b = Location(b.machine, b.node, 0, 0)
        return metacomputer.latency_model(metacomputer.link_between(loc_a, loc_b))

    master_clock = clocks.clock(master_node)

    for machine, nodes in machine_nodes.items():
        for node in nodes:
            data.records[node] = NodeSyncRecord(node=node, machine=machine)

    def attempt(kind: str, round_name: str, *args) -> Optional[OffsetMeasurement]:
        """One measurement; lost-measurement failures recorded, not raised."""
        try:
            return measure_offset(*args, rng, config, injector=injector)
        except MeasurementError as exc:
            data.failures.append(f"{kind}@{round_name}: {exc}")
            return None

    for round_index, t0 in enumerate((run_start_s, run_end_s)):
        round_name = "start" if round_index == 0 else "end"
        # Offset measurements are ping-pongs carried out one after another;
        # a small stagger keeps their simulated instants distinct.
        stagger = 0.0
        for machine, nodes in sorted(machine_nodes.items()):
            local_master = local_masters[machine]
            lm_clock = clocks.clock(local_master)
            for node in nodes:
                rec = data.records[node]
                node_clock = clocks.clock(node)
                if node != master_node:
                    flat = attempt(
                        "flat",
                        round_name,
                        node,
                        master_node,
                        node_clock,
                        master_clock,
                        link_model(node, master_node),
                        t0 + stagger,
                    )
                    stagger += config.exchanges * 2.5e-3
                    if round_index == 0:
                        rec.flat_start = flat
                    else:
                        rec.flat_end = flat
                if node != local_master and machine not in global_clock_machines:
                    local = attempt(
                        "local",
                        round_name,
                        node,
                        local_master,
                        node_clock,
                        lm_clock,
                        link_model(node, local_master),
                        t0 + stagger,
                    )
                    stagger += config.exchanges * 1e-4
                    if round_index == 0:
                        rec.local_start = local
                    else:
                        rec.local_end = local
            if local_master != master_node:
                meta = attempt(
                    "meta",
                    round_name,
                    local_master,
                    master_node,
                    lm_clock,
                    master_clock,
                    link_model(local_master, master_node),
                    t0 + stagger,
                )
                stagger += config.exchanges * 2.5e-3
                rec = data.records[local_master]
                if round_index == 0:
                    rec.meta_start = meta
                else:
                    rec.meta_end = meta
    return data


def true_master_time(
    clocks: ClockEnsemble, master_node: NodeId, node: NodeId, local: float
) -> float:
    """Ground-truth conversion of a local stamp to master time (tests only)."""
    true_t = clocks.clock(node).true_time(local)
    return clocks.clock(master_node).local_time(true_t)
