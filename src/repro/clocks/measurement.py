"""Remote clock reading: ping-pong offset measurements.

Implements the measurement primitive both synchronization generations rely
on (paper Section 3: "carried out according to the remote clock reading
technique [Cristian]"): the master sends a request, the slave answers with
its current clock value, and the master brackets the reply between two of
its own readings::

    m1 ---- d_fwd ----> s ---- d_bwd ----> m2

The slave-minus-master offset estimate is ``s - (m1 + m2) / 2``; its error
is ``(d_bwd - d_fwd) / 2``, i.e. half the latency *asymmetry* of that
particular exchange.  Repeating the exchange and keeping the reply with the
smallest round-trip time bounds the error by half the observed RTT spread —
which is why offset measurements across a high-jitter external link are
fundamentally less precise than across an internal link, the observation
motivating the paper's hierarchical scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.clocks.clock import LinearClock
from repro.errors import MeasurementError
from repro.ids import NodeId
from repro.topology.network import LatencyModel


@dataclass(frozen=True)
class OffsetMeasurementConfig:
    """Tunables of one offset measurement.

    Parameters
    ----------
    exchanges:
        Number of successful ping-pongs collected; the minimum-RTT exchange
        is kept.  KOJAK-era tools used a handful of exchanges to keep
        startup cost low.
    payload_bytes:
        Size of the probe messages (clock value + header).
    rtt_cap_s:
        Optional outlier rejection: exchanges whose round-trip time exceeds
        this cap are not eligible as the winning exchange (they still cost
        time).  If *every* exchange exceeds the cap the best one is used
        anyway — a degraded measurement beats none.  ``None`` (default)
        disables the filter.
    reping_factor:
        Upper bound on probe attempts, as a multiple of ``exchanges``; only
        consulted when fault injection drops pings.  Each dropped ping costs
        a timeout before the re-ping.
    """

    exchanges: int = 8
    payload_bytes: int = 64
    rtt_cap_s: Optional[float] = None
    reping_factor: int = 3

    def __post_init__(self) -> None:
        if self.exchanges < 1:
            raise MeasurementError(f"need at least one exchange: {self.exchanges}")
        if self.payload_bytes < 0:
            raise MeasurementError(f"payload must be non-negative: {self.payload_bytes}")
        if self.rtt_cap_s is not None and self.rtt_cap_s <= 0:
            raise MeasurementError(f"RTT cap must be positive: {self.rtt_cap_s}")
        if self.reping_factor < 1:
            raise MeasurementError(f"re-ping factor must be >= 1: {self.reping_factor}")


@dataclass(frozen=True)
class OffsetMeasurement:
    """Result of one remote clock reading between two nodes.

    Attributes
    ----------
    node / reference:
        The measured (slave) node and the reference (master) node.
    offset_s:
        Estimated offset *slave_local − reference_local* at the measurement
        instant.
    reference_local_s:
        Reference-clock local time at the midpoint of the winning exchange.
        Interpolation anchors offsets at these times.
    slave_local_s:
        Slave-clock reading of the winning exchange.
    rtt_s:
        Round-trip time of the winning exchange (reference clock units).
    true_offset_s:
        Ground-truth offset at the same instant (available only in
        simulation; used to validate schemes, never used by them).
    true_time_s:
        True (simulation) time of the winning exchange's midpoint.
    """

    node: NodeId
    reference: NodeId
    offset_s: float
    reference_local_s: float
    slave_local_s: float
    rtt_s: float
    true_offset_s: float
    true_time_s: float

    @property
    def error_s(self) -> float:
        """Signed measurement error (estimate − truth)."""
        return self.offset_s - self.true_offset_s


def measure_offset(
    node: NodeId,
    reference: NodeId,
    slave_clock: LinearClock,
    reference_clock: LinearClock,
    link: LatencyModel,
    start_true_time: float,
    rng: np.random.Generator,
    config: OffsetMeasurementConfig = OffsetMeasurementConfig(),
    injector: Any = None,
) -> OffsetMeasurement:
    """Simulate one remote clock reading over *link* starting at *start_true_time*.

    Returns the minimum-RTT exchange (subject to ``config.rtt_cap_s``
    outlier rejection).  Exchanges are carried out back to back; the
    function also works for ``node == reference`` (it then returns a zero
    offset with zero error, which the hierarchical scheme relies on for the
    metamaster's own metahost).

    With a fault *injector*, individual exchanges may be dropped (the
    master times out and re-pings, up to ``exchanges * reping_factor``
    attempts) or their return leg delayed by an injected asymmetry.  Raises
    :class:`~repro.errors.MeasurementError` if every attempt is lost.
    """
    if node == reference:
        local = reference_clock.local_time(start_true_time)
        return OffsetMeasurement(
            node=node,
            reference=reference,
            offset_s=0.0,
            reference_local_s=local,
            slave_local_s=local,
            rtt_s=0.0,
            true_offset_s=0.0,
            true_time_s=start_true_time,
        )

    best: OffsetMeasurement | None = None  # winner under the RTT cap
    fallback: OffsetMeasurement | None = None  # winner ignoring the cap
    t = start_true_time
    fwd_direction = f"{reference}->{node}"
    bwd_direction = f"{node}->{reference}"
    faulty = injector is not None and injector.touches_measurement
    max_attempts = config.exchanges * (config.reping_factor if faulty else 1)
    # Master-side timeout before re-pinging a lost probe (deterministic, no
    # random draw: the retry schedule must not disturb the latency stream).
    drop_penalty = 4.0 * link.mean_transfer_time(config.payload_bytes)
    successes = 0
    for _ in range(max_attempts):
        if successes >= config.exchanges:
            break
        if faulty and injector.ping_dropped(link.spec):
            injector.counters.pings_reissued += 1
            t += drop_penalty
            continue
        d_fwd = link.transfer_time(
            config.payload_bytes, rng, when=t, direction=fwd_direction
        )
        d_bwd = link.transfer_time(
            config.payload_bytes, rng, when=t + d_fwd, direction=bwd_direction
        )
        if faulty:
            d_bwd += injector.ping_asymmetry_s(link.spec)
        m1 = reference_clock.read(t, rng)
        slave_at = t + d_fwd
        s = slave_clock.read(slave_at, rng)
        m2 = reference_clock.read(t + d_fwd + d_bwd, rng)
        rtt = m2 - m1
        candidate = None
        within_cap = config.rtt_cap_s is None or rtt <= config.rtt_cap_s
        if within_cap:
            if best is None or rtt < best.rtt_s:
                candidate = "best"
        elif best is None and (fallback is None or rtt < fallback.rtt_s):
            candidate = "fallback"
        if candidate is not None:
            mid_local = 0.5 * (m1 + m2)
            mid_true = t + 0.5 * (d_fwd + d_bwd)
            measurement = OffsetMeasurement(
                node=node,
                reference=reference,
                offset_s=s - mid_local,
                reference_local_s=mid_local,
                slave_local_s=s,
                rtt_s=rtt,
                true_offset_s=slave_clock.offset_to(reference_clock, slave_at),
                true_time_s=mid_true,
            )
            if candidate == "best":
                best = measurement
            else:
                fallback = measurement
        t += d_fwd + d_bwd
        successes += 1
    if best is None:
        best = fallback
    if best is None:
        raise MeasurementError(
            f"offset measurement {reference} -> {node}: all {max_attempts} "
            "probe attempts were lost"
        )
    return best
