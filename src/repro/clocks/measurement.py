"""Remote clock reading: ping-pong offset measurements.

Implements the measurement primitive both synchronization generations rely
on (paper Section 3: "carried out according to the remote clock reading
technique [Cristian]"): the master sends a request, the slave answers with
its current clock value, and the master brackets the reply between two of
its own readings::

    m1 ---- d_fwd ----> s ---- d_bwd ----> m2

The slave-minus-master offset estimate is ``s - (m1 + m2) / 2``; its error
is ``(d_bwd - d_fwd) / 2``, i.e. half the latency *asymmetry* of that
particular exchange.  Repeating the exchange and keeping the reply with the
smallest round-trip time bounds the error by half the observed RTT spread —
which is why offset measurements across a high-jitter external link are
fundamentally less precise than across an internal link, the observation
motivating the paper's hierarchical scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clocks.clock import LinearClock
from repro.errors import MeasurementError
from repro.ids import NodeId
from repro.topology.network import LatencyModel


@dataclass(frozen=True)
class OffsetMeasurementConfig:
    """Tunables of one offset measurement.

    Parameters
    ----------
    exchanges:
        Number of ping-pongs; the minimum-RTT exchange is kept.  KOJAK-era
        tools used a handful of exchanges to keep startup cost low.
    payload_bytes:
        Size of the probe messages (clock value + header).
    """

    exchanges: int = 8
    payload_bytes: int = 64

    def __post_init__(self) -> None:
        if self.exchanges < 1:
            raise MeasurementError(f"need at least one exchange: {self.exchanges}")
        if self.payload_bytes < 0:
            raise MeasurementError(f"payload must be non-negative: {self.payload_bytes}")


@dataclass(frozen=True)
class OffsetMeasurement:
    """Result of one remote clock reading between two nodes.

    Attributes
    ----------
    node / reference:
        The measured (slave) node and the reference (master) node.
    offset_s:
        Estimated offset *slave_local − reference_local* at the measurement
        instant.
    reference_local_s:
        Reference-clock local time at the midpoint of the winning exchange.
        Interpolation anchors offsets at these times.
    slave_local_s:
        Slave-clock reading of the winning exchange.
    rtt_s:
        Round-trip time of the winning exchange (reference clock units).
    true_offset_s:
        Ground-truth offset at the same instant (available only in
        simulation; used to validate schemes, never used by them).
    true_time_s:
        True (simulation) time of the winning exchange's midpoint.
    """

    node: NodeId
    reference: NodeId
    offset_s: float
    reference_local_s: float
    slave_local_s: float
    rtt_s: float
    true_offset_s: float
    true_time_s: float

    @property
    def error_s(self) -> float:
        """Signed measurement error (estimate − truth)."""
        return self.offset_s - self.true_offset_s


def measure_offset(
    node: NodeId,
    reference: NodeId,
    slave_clock: LinearClock,
    reference_clock: LinearClock,
    link: LatencyModel,
    start_true_time: float,
    rng: np.random.Generator,
    config: OffsetMeasurementConfig = OffsetMeasurementConfig(),
) -> OffsetMeasurement:
    """Simulate one remote clock reading over *link* starting at *start_true_time*.

    Returns the minimum-RTT exchange.  Exchanges are carried out back to
    back; the function also works for ``node == reference`` (it then returns
    a zero offset with zero error, which the hierarchical scheme relies on
    for the metamaster's own metahost).
    """
    if node == reference:
        local = reference_clock.local_time(start_true_time)
        return OffsetMeasurement(
            node=node,
            reference=reference,
            offset_s=0.0,
            reference_local_s=local,
            slave_local_s=local,
            rtt_s=0.0,
            true_offset_s=0.0,
            true_time_s=start_true_time,
        )

    best: OffsetMeasurement | None = None
    t = start_true_time
    fwd_direction = f"{reference}->{node}"
    bwd_direction = f"{node}->{reference}"
    for _ in range(config.exchanges):
        d_fwd = link.transfer_time(
            config.payload_bytes, rng, when=t, direction=fwd_direction
        )
        d_bwd = link.transfer_time(
            config.payload_bytes, rng, when=t + d_fwd, direction=bwd_direction
        )
        m1 = reference_clock.read(t, rng)
        slave_at = t + d_fwd
        s = slave_clock.read(slave_at, rng)
        m2 = reference_clock.read(t + d_fwd + d_bwd, rng)
        rtt = m2 - m1
        if best is None or rtt < best.rtt_s:
            mid_local = 0.5 * (m1 + m2)
            mid_true = t + 0.5 * (d_fwd + d_bwd)
            best = OffsetMeasurement(
                node=node,
                reference=reference,
                offset_s=s - mid_local,
                reference_local_s=mid_local,
                slave_local_s=s,
                rtt_s=rtt,
                true_offset_s=slave_clock.offset_to(reference_clock, slave_at),
                true_time_s=mid_true,
            )
        t += d_fwd + d_bwd
    assert best is not None  # exchanges >= 1
    return best
