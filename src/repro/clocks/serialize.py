"""JSON (de)serialization of synchronization data.

Offset measurements are part of an experiment's archive — analysis runs
post mortem, possibly in a different session, so the measurement records
collected at run time must round-trip through the archive.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.clocks.measurement import OffsetMeasurement
from repro.clocks.sync import NodeSyncRecord, SyncData
from repro.errors import ClockError
from repro.ids import NodeId


def _node_to_list(node: NodeId) -> list:
    return [node.machine, node.node]


def _node_from_list(raw: Any) -> NodeId:
    if not isinstance(raw, (list, tuple)) or len(raw) != 2:
        raise ClockError(f"malformed node id {raw!r}")
    return NodeId(int(raw[0]), int(raw[1]))


def measurement_to_dict(m: Optional[OffsetMeasurement]) -> Optional[Dict[str, Any]]:
    if m is None:
        return None
    return {
        "node": _node_to_list(m.node),
        "reference": _node_to_list(m.reference),
        "offset_s": m.offset_s,
        "reference_local_s": m.reference_local_s,
        "slave_local_s": m.slave_local_s,
        "rtt_s": m.rtt_s,
        "true_offset_s": m.true_offset_s,
        "true_time_s": m.true_time_s,
    }


def measurement_from_dict(raw: Optional[Dict[str, Any]]) -> Optional[OffsetMeasurement]:
    if raw is None:
        return None
    try:
        return OffsetMeasurement(
            node=_node_from_list(raw["node"]),
            reference=_node_from_list(raw["reference"]),
            offset_s=float(raw["offset_s"]),
            reference_local_s=float(raw["reference_local_s"]),
            slave_local_s=float(raw["slave_local_s"]),
            rtt_s=float(raw["rtt_s"]),
            true_offset_s=float(raw["true_offset_s"]),
            true_time_s=float(raw["true_time_s"]),
        )
    except KeyError as exc:
        raise ClockError(f"measurement dict missing key {exc}") from exc


def sync_data_to_dict(data: SyncData) -> Dict[str, Any]:
    out = {
        "master_node": _node_to_list(data.master_node),
        "local_masters": {
            str(machine): _node_to_list(node)
            for machine, node in data.local_masters.items()
        },
        "global_clock_machines": sorted(data.global_clock_machines),
        "records": [
            {
                "node": _node_to_list(rec.node),
                "machine": rec.machine,
                "flat_start": measurement_to_dict(rec.flat_start),
                "flat_end": measurement_to_dict(rec.flat_end),
                "local_start": measurement_to_dict(rec.local_start),
                "local_end": measurement_to_dict(rec.local_end),
                "meta_start": measurement_to_dict(rec.meta_start),
                "meta_end": measurement_to_dict(rec.meta_end),
            }
            for rec in data.records.values()
        ],
    }
    # Only emitted when present so fault-free archives keep their exact
    # pre-fault-injection byte layout.
    if data.failures:
        out["failures"] = list(data.failures)
    return out


def sync_data_from_dict(raw: Dict[str, Any]) -> SyncData:
    try:
        data = SyncData(
            master_node=_node_from_list(raw["master_node"]),
            local_masters={
                int(machine): _node_from_list(node)
                for machine, node in raw["local_masters"].items()
            },
            global_clock_machines=frozenset(
                int(m) for m in raw.get("global_clock_machines", [])
            ),
            failures=[str(f) for f in raw.get("failures", [])],
        )
        for entry in raw["records"]:
            rec = NodeSyncRecord(
                node=_node_from_list(entry["node"]),
                machine=int(entry["machine"]),
                flat_start=measurement_from_dict(entry.get("flat_start")),
                flat_end=measurement_from_dict(entry.get("flat_end")),
                local_start=measurement_from_dict(entry.get("local_start")),
                local_end=measurement_from_dict(entry.get("local_end")),
                meta_start=measurement_from_dict(entry.get("meta_start")),
                meta_end=measurement_from_dict(entry.get("meta_end")),
            )
            data.records[rec.node] = rec
    except KeyError as exc:
        raise ClockError(f"sync data dict missing key {exc}") from exc
    return data
