"""Linear clock models.

The paper assumes "all clocks have a constant drift and can be described in
terms of a linear function, based on an initial offset and a constant slope"
(Section 3).  :class:`LinearClock` is exactly that function::

    local(t) = offset + (1 + drift) * t        [+ reading noise]

where *t* is true (simulation) time.  A drift of ``1e-6`` means the clock
gains one microsecond per second.  Reading noise models the granularity and
jitter of the timer register and is small compared to network latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from repro.errors import ClockError
from repro.ids import NodeId


@dataclass(frozen=True)
class LinearClock:
    """A node-local clock with constant offset and drift.

    Parameters
    ----------
    offset_s:
        Clock value at true time zero, in seconds.
    drift:
        Relative rate deviation; the clock advances ``1 + drift`` seconds
        per true second.  Typical quartz oscillators stay within ±50 ppm
        (±5e-5); the defaults used by :class:`ClockEnsemble` draw a few ppm.
    noise_s:
        Standard deviation of per-reading Gaussian noise.  Zero by default
        so that a clock read is a pure function of true time.
    """

    offset_s: float = 0.0
    drift: float = 0.0
    noise_s: float = 0.0

    def __post_init__(self) -> None:
        if self.drift <= -1.0:
            raise ClockError(f"drift must be > -1 (clock must advance): {self.drift}")
        if self.noise_s < 0.0:
            raise ClockError(f"noise must be non-negative: {self.noise_s}")

    def local_time(self, true_time: float) -> float:
        """Deterministic local clock value at *true_time*."""
        return self.offset_s + (1.0 + self.drift) * true_time

    def read(self, true_time: float, rng: Optional[np.random.Generator] = None) -> float:
        """Read the clock, adding reading noise when an *rng* is supplied."""
        value = self.local_time(true_time)
        if rng is not None and self.noise_s > 0.0:
            value += rng.normal(0.0, self.noise_s)
        return value

    def true_time(self, local: float) -> float:
        """Invert the deterministic clock function (ground truth only).

        Real tools never have this; it exists so tests can compare a
        synchronization scheme's output against the truth.
        """
        return (local - self.offset_s) / (1.0 + self.drift)

    def offset_to(self, other: "LinearClock", true_time: float) -> float:
        """True instantaneous offset ``self - other`` at *true_time*."""
        return self.local_time(true_time) - other.local_time(true_time)


def perfect_clock() -> LinearClock:
    """A clock identical to true time (used for single-node references)."""
    return LinearClock(0.0, 0.0, 0.0)


class ClockEnsemble:
    """The set of node clocks of a metacomputer run.

    All CPUs of one node share a clock ("we assume that time stamps taken on
    the same node are already synchronized"), so the ensemble is keyed by
    :class:`~repro.ids.NodeId`.
    """

    def __init__(self, clocks: Dict[NodeId, LinearClock]) -> None:
        if not clocks:
            raise ClockError("clock ensemble must contain at least one clock")
        self._clocks = dict(clocks)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._clocks

    def __len__(self) -> int:
        return len(self._clocks)

    def nodes(self) -> Iterable[NodeId]:
        return self._clocks.keys()

    def clock(self, node: NodeId) -> LinearClock:
        try:
            return self._clocks[node]
        except KeyError:
            raise ClockError(f"no clock for node {node}") from None

    def local_time(self, node: NodeId, true_time: float) -> float:
        return self.clock(node).local_time(true_time)

    @classmethod
    def random(
        cls,
        nodes: Iterable[NodeId],
        rng: np.random.Generator,
        offset_scale_s: float = 5e-3,
        drift_scale: float = 2e-6,
        noise_s: float = 0.0,
    ) -> "ClockEnsemble":
        """Draw independent offsets and drifts for every node.

        Offsets are uniform in ``±offset_scale_s`` and drifts uniform in
        ``±drift_scale``; both defaults match commodity clusters without
        hardware synchronization.
        """
        clocks = {
            node: LinearClock(
                offset_s=float(rng.uniform(-offset_scale_s, offset_scale_s)),
                drift=float(rng.uniform(-drift_scale, drift_scale)),
                noise_s=noise_s,
            )
            for node in nodes
        }
        return cls(clocks)

    @classmethod
    def synchronized(cls, nodes: Iterable[NodeId]) -> "ClockEnsemble":
        """An ensemble where every node has a perfect clock (global clock)."""
        return cls({node: perfect_clock() for node in nodes})
