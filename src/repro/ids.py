"""Typed identifiers and the event-location model.

The paper (Section 3, *Event location*) specifies the location of an event
as a tuple ``(machine, node, process, thread)``.  The *machine* component is
what identifies a metahost in a metacomputing run; there is exactly one
machine unless the application runs on a metacomputer.

We follow that model literally: :class:`Location` is an immutable 4-tuple
with named fields, ordered first by machine, then node, then process, then
thread, so that system trees sort hierarchically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

#: Sentinel rank constants mirroring MPI semantics.
ANY_SOURCE: int = -1
ANY_TAG: int = -1

#: Rank of the process conventionally chosen as global master
#: ("without loss of generality the node hosting the process with rank
#: zero", paper Section 3).
MASTER_RANK: int = 0


@dataclass(frozen=True, order=True)
class Location:
    """Location of an event: ``(machine, node, process, thread)``.

    Parameters
    ----------
    machine:
        Index of the metahost (machine) within the metacomputer.
    node:
        Index of the SMP node within the metahost.
    process:
        Global MPI rank of the process.
    thread:
        Thread identifier within the process (``0`` for pure-MPI codes,
        which is all that MPI-1 metacomputing applications in the paper
        use).
    """

    machine: int
    node: int
    process: int
    thread: int = 0

    def as_tuple(self) -> Tuple[int, int, int, int]:
        """Return the plain tuple form ``(machine, node, process, thread)``."""
        return (self.machine, self.node, self.process, self.thread)

    def same_machine(self, other: "Location") -> bool:
        """True when both locations live on the same metahost.

        This is the predicate the grid patterns are built on: a wait state
        is *grid* (metacomputing-specific) exactly when the waiting and the
        causing location differ in their machine component.
        """
        return self.machine == other.machine

    def same_node(self, other: "Location") -> bool:
        """True when both locations live on the same node of the same machine."""
        return self.machine == other.machine and self.node == other.node

    def __iter__(self) -> Iterator[int]:
        return iter(self.as_tuple())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"m{self.machine}.n{self.node}.p{self.process}.t{self.thread}"


@dataclass(frozen=True, order=True)
class NodeId:
    """Identifier of an SMP node: ``(machine, node)``.

    Clocks live at node granularity — the paper assumes "time stamps taken
    on the same node are already synchronized" — so clock models and offset
    measurements are keyed by :class:`NodeId`.
    """

    machine: int
    node: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"m{self.machine}.n{self.node}"


def node_of(location: Location) -> NodeId:
    """Return the :class:`NodeId` hosting *location*."""
    return NodeId(location.machine, location.node)
