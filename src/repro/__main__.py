"""``python -m repro`` — the package's command-line entry point.

Delegates to :func:`repro.cli.main`, so ``python -m repro figure6 --seed 1
--jobs 4`` and ``python -m repro.cli figure6 --seed 1 --jobs 4`` are the
same command.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
