"""Text rendering of analysis results.

The graphical browser of the paper shows three linked panels (Figure 6):

* **left** — the metric (pattern) hierarchy; "the numbers left of the
  pattern names indicate the total execution time penalty in percent";
* **middle** — the distribution of the selected pattern across the call
  tree;
* **right** — the distribution of the selected pattern at the selected
  call path across the hierarchy of metahosts, nodes, and processes.

These functions produce the same information as indented text trees.
Values are shown exclusively (a node's own share, children subtracted) for
the metric panel — matching the browser — and inclusively elsewhere.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.patterns import metric_tree
from repro.analysis.replay import AnalysisResult
from repro.errors import ReportError


def _severity_mark(pct: float) -> str:
    """Visual severity clue standing in for the browser's colored square."""
    if pct >= 10.0:
        return "###"
    if pct >= 1.0:
        return "##."
    if pct > 0.0:
        return "#.."
    return "..."


def render_metric_tree(result: AnalysisResult, min_pct: float = 0.0) -> str:
    """Left panel: the metric hierarchy with percent-of-total-time numbers."""
    total = result.metric_total("time")
    lines: List[str] = []
    metrics = metric_tree()
    children: Dict[Optional[str], List] = {}
    for metric in metrics:
        children.setdefault(metric.parent, []).append(metric)

    def emit(metric, depth: int) -> None:
        inclusive = result.metric_total(metric.name)
        exclusive = result.exclusive_total(metric.name)
        pct = 100.0 * inclusive / total if total > 0 else 0.0
        if pct < min_pct and depth > 0:
            return
        lines.append(
            f"{_severity_mark(pct)} {pct:6.2f}%  "
            f"{'  ' * depth}{metric.display}"
            f"  [incl {inclusive * 1e3:.3f} ms / excl {exclusive * 1e3:.3f} ms]"
        )
        for child in children.get(metric.name, []):
            emit(child, depth + 1)

    for root in children.get(None, []):
        emit(root, 0)
    return "\n".join(lines)


def render_call_tree(result: AnalysisResult, metric: str, min_pct: float = 0.0) -> str:
    """Middle panel: distribution of *metric* across the call tree."""
    by_callpath = result.cube.by_callpath(metric)
    total = result.metric_total(metric)
    if total <= 0.0:
        return f"(no severity recorded for metric {metric!r})"
    callpaths = result.callpaths
    regions = result.definitions.regions

    # Inclusive value per call path (own + descendants).
    inclusive: Dict[int, float] = {}

    def inclusive_value(cpid: int) -> float:
        if cpid in inclusive:
            return inclusive[cpid]
        value = by_callpath.get(cpid, 0.0) + sum(
            inclusive_value(child) for child in callpaths.children(cpid)
        )
        inclusive[cpid] = value
        return value

    lines: List[str] = [f"call tree for metric {metric!r}:"]

    def emit(cpid: int, depth: int) -> None:
        value = inclusive_value(cpid)
        pct = 100.0 * value / total
        if pct < min_pct:
            return
        name = regions.name_of(callpaths.path(cpid).region)
        own = by_callpath.get(cpid, 0.0)
        lines.append(
            f"{_severity_mark(pct)} {pct:6.2f}%  {'  ' * depth}{name}"
            f"  [incl {value * 1e3:.3f} ms / here {own * 1e3:.3f} ms]"
        )
        for child in sorted(
            callpaths.children(cpid), key=inclusive_value, reverse=True
        ):
            emit(child, depth + 1)

    for root in sorted(callpaths.roots(), key=inclusive_value, reverse=True):
        emit(root, 1)
    return "\n".join(lines)


def render_system_tree(
    result: AnalysisResult, metric: str, cpid: Optional[int] = None
) -> str:
    """Right panel: metric distribution across metahosts / nodes / processes.

    With *cpid* the distribution is restricted to one call path, matching
    the browser's linked-panel behavior.
    """
    if cpid is None:
        by_rank = result.cube.by_rank(metric)
    else:
        by_rank = result.cube.at(metric, cpid)
    total = sum(by_rank.values())
    definitions = result.definitions
    lines: List[str] = [
        f"system tree for metric {metric!r}"
        + (f" at call path {cpid}" if cpid is not None else "")
        + ":"
    ]
    if total <= 0.0:
        lines.append("(no severity recorded)")
        return "\n".join(lines)

    tree: Dict[int, Dict[int, Dict[int, float]]] = {}
    for rank, value in by_rank.items():
        loc = definitions.locations[rank]
        tree.setdefault(loc.machine, {}).setdefault(loc.node, {})[rank] = value

    for machine in sorted(tree):
        m_total = sum(v for node in tree[machine].values() for v in node.values())
        pct = 100.0 * m_total / total
        name = definitions.machine_names[machine]
        lines.append(
            f"{_severity_mark(pct)} {pct:6.2f}%  {name}  [{m_total * 1e3:.3f} ms]"
        )
        for node in sorted(tree[machine]):
            n_total = sum(tree[machine][node].values())
            n_pct = 100.0 * n_total / total
            lines.append(
                f"{_severity_mark(n_pct)} {n_pct:6.2f}%    node {node}"
                f"  [{n_total * 1e3:.3f} ms]"
            )
            for rank in sorted(tree[machine][node]):
                r_value = tree[machine][node][rank]
                r_pct = 100.0 * r_value / total
                lines.append(
                    f"{_severity_mark(r_pct)} {r_pct:6.2f}%      process {rank}"
                    f"  [{r_value * 1e3:.3f} ms]"
                )
    return "\n".join(lines)


def render_analysis(
    result: AnalysisResult,
    metric: Optional[str] = None,
    min_pct: float = 0.0,
) -> str:
    """Full three-panel report (the textual equivalent of Figure 6)."""
    if metric is not None:
        known = {m.name for m in metric_tree()}
        if metric not in known:
            raise ReportError(f"unknown metric {metric!r}")
    sections = [
        "=" * 72,
        f"analysis report (synchronization: {result.scheme_name})",
        f"total time: {result.total_time:.6f} s, "
        f"clock-condition violations: {result.violations.violations}",
        "=" * 72,
        render_metric_tree(result, min_pct=min_pct),
    ]
    if metric is not None:
        sections += [
            "-" * 72,
            render_call_tree(result, metric, min_pct=min_pct),
            "-" * 72,
            render_system_tree(result, metric),
        ]
    return "\n".join(sections)
