"""Cross-experiment performance algebra (Song et al., ICPP 2004).

The paper concludes that "this type of comparative analysis could be
effectively supported by the algebra utilities developed by Song et al.,
which we plan to make available in a version compatible to the parallel
analyzer" — exactly the comparison performed in Section 5 between the
three-metahost and the one-metahost experiment.  This module provides that
compatibility layer: analysis results are *canonicalized* into a
structure-independent cell map keyed by ``(metric, call-path names, rank)``
so that experiments with different call-path numbering (or even different
call trees) can be subtracted, merged, and averaged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.replay import AnalysisResult
from repro.errors import ReportError

#: Canonical cell key: (metric name, call-path region names, rank).
CellKey = Tuple[str, Tuple[str, ...], int]


@dataclass
class ExperimentData:
    """Structure-independent view of one (or a derived) experiment."""

    name: str
    cells: Dict[CellKey, float] = field(default_factory=dict)
    total_time: float = 0.0
    machine_names: List[str] = field(default_factory=list)
    machine_of_rank: Dict[int, int] = field(default_factory=dict)

    # -- aggregations -------------------------------------------------------

    def metric_total(self, metric: str) -> float:
        return sum(v for (m, _, _), v in self.cells.items() if m == metric)

    def pct(self, metric: str) -> float:
        if self.total_time <= 0.0:
            return 0.0
        return 100.0 * self.metric_total(metric) / self.total_time

    def by_path(self, metric: str) -> Dict[Tuple[str, ...], float]:
        out: Dict[Tuple[str, ...], float] = {}
        for (m, path, _), v in self.cells.items():
            if m == metric:
                out[path] = out.get(path, 0.0) + v
        return out

    def by_rank(self, metric: str) -> Dict[int, float]:
        out: Dict[int, float] = {}
        for (m, _, rank), v in self.cells.items():
            if m == metric:
                out[rank] = out.get(rank, 0.0) + v
        return out

    def by_machine(self, metric: str) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for rank, value in self.by_rank(metric).items():
            machine = self.machine_of_rank.get(rank)
            name = (
                self.machine_names[machine]
                if machine is not None and machine < len(self.machine_names)
                else f"machine{machine}"
            )
            out[name] = out.get(name, 0.0) + value
        return out

    def metrics(self) -> List[str]:
        return sorted({m for (m, _, _) in self.cells})

    def value_in_region(self, metric: str, region: str) -> float:
        """Metric total over cells whose innermost frame is *region*."""
        return sum(
            v
            for (m, path, _), v in self.cells.items()
            if m == metric and path and path[-1] == region
        )


def canonicalize(result: AnalysisResult, name: str) -> ExperimentData:
    """Convert an :class:`AnalysisResult` into algebra-ready form."""
    data = ExperimentData(
        name=name,
        total_time=result.total_time,
        machine_names=list(result.definitions.machine_names),
        machine_of_rank={
            rank: loc.machine for rank, loc in result.definitions.locations.items()
        },
    )
    regions = result.definitions.regions
    for metric in result.cube.metrics():
        for cpid, rank, value in result.cube.cells(metric):
            path = tuple(
                regions.name_of(r) for r in result.callpaths.frames(cpid)
            )
            key = (metric, path, rank)
            data.cells[key] = data.cells.get(key, 0.0) + value
    return data


def _check_comparable(a: ExperimentData, b: ExperimentData) -> None:
    if not a.cells and not b.cells:
        raise ReportError("cannot combine two empty experiments")


def diff(a: ExperimentData, b: ExperimentData) -> ExperimentData:
    """Cell-wise ``a − b``; positive values mean *a* is more expensive.

    This is the algebra operation behind the paper's heterogeneous-vs-
    homogeneous comparison.  ``total_time`` is the difference of totals and
    can be negative.
    """
    _check_comparable(a, b)
    out = ExperimentData(
        name=f"({a.name} - {b.name})",
        total_time=a.total_time - b.total_time,
        machine_names=a.machine_names or b.machine_names,
        machine_of_rank={**b.machine_of_rank, **a.machine_of_rank},
    )
    for key in sorted(set(a.cells) | set(b.cells)):
        out.cells[key] = a.cells.get(key, 0.0) - b.cells.get(key, 0.0)
    return out


def merge(a: ExperimentData, b: ExperimentData) -> ExperimentData:
    """Cell-wise union/sum, the algebra's *merge* operation."""
    _check_comparable(a, b)
    out = ExperimentData(
        name=f"({a.name} + {b.name})",
        total_time=a.total_time + b.total_time,
        machine_names=a.machine_names or b.machine_names,
        machine_of_rank={**b.machine_of_rank, **a.machine_of_rank},
    )
    for key in sorted(set(a.cells) | set(b.cells)):
        out.cells[key] = a.cells.get(key, 0.0) + b.cells.get(key, 0.0)
    return out


def mean(experiments: Iterable[ExperimentData], name: Optional[str] = None) -> ExperimentData:
    """Cell-wise arithmetic mean over several experiments."""
    pool = list(experiments)
    if not pool:
        raise ReportError("mean of zero experiments")
    out = ExperimentData(
        name=name or f"mean({', '.join(e.name for e in pool)})",
        total_time=sum(e.total_time for e in pool) / len(pool),
        machine_names=pool[0].machine_names,
        machine_of_rank=dict(pool[0].machine_of_rank),
    )
    keys = set()
    for e in pool:
        keys |= set(e.cells)
    for key in sorted(keys):
        out.cells[key] = sum(e.cells.get(key, 0.0) for e in pool) / len(pool)
    return out


def render_comparison(
    a: ExperimentData,
    b: ExperimentData,
    metrics: Optional[List[str]] = None,
    top_paths: int = 3,
) -> str:
    """Side-by-side comparison table of two experiments plus their diff.

    The textual form of the paper's Section-5 methodology ("the value of
    our trace analysis is increased by the comparison with measurements on
    a homogeneous cluster").
    """
    delta = diff(a, b)
    pool = metrics if metrics is not None else sorted(
        set(a.metrics()) | set(b.metrics())
    )
    name_a = a.name[:16]
    name_b = b.name[:16]
    lines = [
        f"comparison: {a.name} vs {b.name}",
        "",
        f"{'metric':28s} {name_a:>16s} {name_b:>16s} {'delta [s]':>12s}",
        f"{'total time':28s} {a.total_time:16.3f} {b.total_time:16.3f} "
        f"{delta.total_time:+12.3f}",
    ]
    for metric in pool:
        va, vb = a.metric_total(metric), b.metric_total(metric)
        if va == 0.0 and vb == 0.0:
            continue
        lines.append(
            f"{metric:28s} {va:16.3f} {vb:16.3f} {va - vb:+12.3f}"
        )
    # Largest movers by call path (absolute delta across all metrics).
    movers: Dict[Tuple[str, Tuple[str, ...]], float] = {}
    for (metric, path, _rank), value in delta.cells.items():
        key = (metric, path)
        movers[key] = movers.get(key, 0.0) + value
    ranked = sorted(movers.items(), key=lambda kv: abs(kv[1]), reverse=True)
    if ranked:
        lines.append("")
        lines.append(f"largest movers (positive: {a.name} spends more):")
        for (metric, path), value in ranked[:top_paths]:
            lines.append(f"  {value:+10.3f} s  {metric}  @ {'/'.join(path)}")
    return "\n".join(lines)
