"""ASCII timeline rendering (a minimal VAMPIR-style time-line display).

The related work the paper builds on (VAMPIR, Paraver — Section 3) centers
on "a zoomable time-line display that allows the fine-grained investigation
of parallel performance behavior".  This module renders one: each rank is a
row; time is quantized into character cells; each cell shows the innermost
region active for the majority of the cell (user regions by initial, MPI
waits highlighted).  It operates on analyzer timelines, so the stamps are
already synchronized — rendering a raw (unsynchronized) trace would smear
the picture, which is in itself a useful demonstration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.instances import ProcessTimeline
from repro.analysis.patterns.base import classify_region
from repro.errors import ReportError
from repro.trace.regions import RegionRegistry

#: Cell glyphs for MPI activity classes.
GLYPH_P2P = "m"
GLYPH_COLLECTIVE = "C"
GLYPH_SYNC = "B"
GLYPH_IDLE = "."


@dataclass
class TimelineView:
    """One rendered timeline: rows of cells plus a legend."""

    start: float
    end: float
    columns: int
    rows: Dict[int, str]
    legend: Dict[str, str]

    def render(self) -> str:
        span_ms = (self.end - self.start) * 1e3
        lines = [
            f"timeline {self.start:.3f}s .. {self.end:.3f}s "
            f"({span_ms:.1f} ms, {self.columns} cells)"
        ]
        for rank in sorted(self.rows):
            lines.append(f"rank {rank:3d} |{self.rows[rank]}|")
        if self.legend:
            lines.append("legend: " + ", ".join(
                f"{glyph}={name}" for glyph, name in sorted(self.legend.items())
            ))
        lines.append(
            f"        ({GLYPH_P2P}=p2p MPI, {GLYPH_COLLECTIVE}=collective, "
            f"{GLYPH_SYNC}=barrier, {GLYPH_IDLE}=outside regions)"
        )
        return "\n".join(lines)


def _interval_cells(
    spans: List[Tuple[float, float, str]],
    start: float,
    cell: float,
    columns: int,
) -> str:
    """Majority glyph per cell from (begin, end, glyph) spans."""
    weights: List[Dict[str, float]] = [dict() for _ in range(columns)]
    for begin, end, glyph in spans:
        if end <= start:
            continue
        first = max(0, int((begin - start) / cell))
        last = min(columns - 1, int((end - start) / cell))
        for index in range(first, last + 1):
            cell_begin = start + index * cell
            cell_end = cell_begin + cell
            overlap = min(end, cell_end) - max(begin, cell_begin)
            if overlap > 0:
                weights[index][glyph] = weights[index].get(glyph, 0.0) + overlap
    out = []
    for cell_weights in weights:
        if not cell_weights:
            out.append(GLYPH_IDLE)
        else:
            out.append(max(cell_weights, key=cell_weights.get))  # type: ignore[arg-type]
    return "".join(out)


def render_timeline(
    timelines: Dict[int, ProcessTimeline],
    regions: RegionRegistry,
    callpaths,
    columns: int = 72,
    start: Optional[float] = None,
    end: Optional[float] = None,
    ranks: Optional[List[int]] = None,
) -> TimelineView:
    """Render the given ranks' activity between *start* and *end*.

    MPI calls render as class glyphs (p2p / collective / barrier); user
    regions render as their name's first letter, with a legend.  Requires
    timelines built by the analyzer (synchronized stamps).
    """
    if not timelines:
        raise ReportError("no timelines to render")
    if columns < 8:
        raise ReportError(f"need at least 8 columns, got {columns}")
    pool = sorted(timelines) if ranks is None else list(ranks)
    for rank in pool:
        if rank not in timelines:
            raise ReportError(f"no timeline for rank {rank}")
    t0 = min(timelines[r].first_time for r in pool) if start is None else start
    t1 = max(timelines[r].last_time for r in pool) if end is None else end
    if t1 <= t0:
        raise ReportError(f"empty time window [{t0}, {t1}]")
    cell = (t1 - t0) / columns

    legend: Dict[str, str] = {}
    rows: Dict[int, str] = {}
    for rank in pool:
        timeline = timelines[rank]
        spans: List[Tuple[float, float, str]] = []
        # MPI ops are explicit instances.
        for op in timeline.mpi_ops:
            leaf = classify_region(op.op_name)
            if leaf == "mpi-point-to-point":
                glyph = GLYPH_P2P
            elif leaf == "mpi-collective":
                glyph = GLYPH_COLLECTIVE
            elif leaf == "mpi-synchronization":
                glyph = GLYPH_SYNC
            else:
                glyph = GLYPH_P2P
            spans.append((op.enter, op.exit, glyph))
        # User regions: approximate by the innermost frame of each call
        # path with exclusive time, spread over the rank's whole window —
        # exact intervals would require keeping raw events; instead mark
        # the deepest user region per op gap via callpath lookups.  For a
        # faithful picture we reconstruct user spans from op boundaries:
        user_name = _dominant_user_region(timeline, regions, callpaths)
        if user_name:
            glyph = user_name[0].lower()
            if glyph in (GLYPH_P2P, GLYPH_COLLECTIVE, GLYPH_SYNC, GLYPH_IDLE):
                glyph = glyph.upper() if glyph.upper() not in ("C", "B") else "u"
            legend.setdefault(glyph, user_name)
            # Fill gaps between MPI ops with the dominant user region.
            cursor = timeline.first_time
            for op in sorted(timeline.mpi_ops, key=lambda o: o.enter):
                if op.enter > cursor:
                    spans.append((cursor, op.enter, glyph))
                cursor = max(cursor, op.exit)
            if timeline.last_time > cursor:
                spans.append((cursor, timeline.last_time, glyph))
        rows[rank] = _interval_cells(spans, t0, cell, columns)
    return TimelineView(start=t0, end=t1, columns=columns, rows=rows, legend=legend)


def _dominant_user_region(
    timeline: ProcessTimeline, regions: RegionRegistry, callpaths
) -> Optional[str]:
    """Name of the user region with the most exclusive time on this rank."""
    best_name = None
    best_value = 0.0
    for cpid, value in timeline.exclusive_time.items():
        name = regions.name_of(callpaths.path(cpid).region)
        if classify_region(name) is None and value > best_value:
            best_name = name
            best_value = value
    return best_name


def render_result_timeline(result, **kwargs) -> str:
    """Convenience: timeline straight from an :class:`AnalysisResult`."""
    view = render_timeline(
        result.timelines, result.definitions.regions, result.callpaths, **kwargs
    )
    return view.render()


# -- time-resolved severity -----------------------------------------------------

#: Sparkline glyphs, blank to full block, indexed by eighths of the peak.
_SPARK = " ▁▂▃▄▅▆▇█"


def render_severity_timeline(timeline, metric: Optional[str] = None,
                             width: int = 60) -> str:
    """Text rendering of a :class:`~repro.analysis.severity_timeline.SeverityTimeline`.

    One row per metric: the rolling-window series as a sparkline scaled to
    its own peak, with the peak window called out — enough to spot *when*
    a transient episode (say, a WAN congestion burst) concentrates its
    severity.  ``metric`` restricts the rendering to one metric; the
    series is max-pooled down to ``width`` columns when longer.
    """
    header = (
        f"Time-resolved severity (window {timeline.window_s:g} s, "
        f"stride {timeline.stride_s:g} s)"
    )
    lines = [header, ""]
    names = [metric] if metric is not None else timeline.metrics()
    for name in names:
        series = timeline.series(name)
        if not series:
            lines.append(f"{name:24s} (no contributions)")
            continue
        peak_t, peak_v = timeline.peak_window(name)
        values = [value for _, value in series]
        if len(values) > width:
            # Max-pool: a narrow spike must survive downsampling.
            chunk = len(values) / width
            values = [
                max(values[int(i * chunk): max(int((i + 1) * chunk), int(i * chunk) + 1)])
                for i in range(width)
            ]
        scale = peak_v or 1.0
        bars = "".join(
            _SPARK[min(8, int(8 * value / scale + 0.5))] for value in values
        )
        t0 = series[0][0]
        t1 = series[-1][0]
        lines.append(
            f"{name:24s} peak {peak_v * 1e3:10.3f} ms in window at t={peak_t:.2f} s"
        )
        lines.append(f"  t={t0:8.2f}s |{bars}| t={t1:.2f}s")
    return "\n".join(lines)
