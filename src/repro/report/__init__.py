"""Result presentation and cross-experiment algebra.

Renders the three panels of the paper's Figure 6 as text trees — metric
hierarchy, call tree, system (metahost / node / process) tree — and
implements the cross-experiment algebra (difference / merge / mean) of
Song et al. that the paper names as planned future work for the parallel
analyzer (Section 6).
"""

from repro.report.render import (
    render_metric_tree,
    render_call_tree,
    render_system_tree,
    render_analysis,
)
from repro.report.algebra import (
    ExperimentData,
    canonicalize,
    diff,
    merge,
    mean,
    render_comparison,
)
from repro.report.serialize import result_to_dict, experiment_to_dict, experiment_from_dict
from repro.report.timeline import (
    render_timeline,
    render_result_timeline,
    render_severity_timeline,
    TimelineView,
)

__all__ = [
    "render_metric_tree",
    "render_call_tree",
    "render_system_tree",
    "render_analysis",
    "ExperimentData",
    "canonicalize",
    "diff",
    "merge",
    "mean",
    "render_comparison",
    "result_to_dict",
    "experiment_to_dict",
    "experiment_from_dict",
    "render_timeline",
    "render_result_timeline",
    "render_severity_timeline",
    "TimelineView",
]
