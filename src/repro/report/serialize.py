"""JSON round-trip of analysis results and experiment data."""

from __future__ import annotations

from typing import Any, Dict

from repro.analysis.replay import AnalysisResult
from repro.errors import ReportError
from repro.report.algebra import ExperimentData, canonicalize


def result_to_dict(result: AnalysisResult, name: str = "experiment") -> Dict[str, Any]:
    """Serializable summary of an analysis (canonical cells + metadata)."""
    return experiment_to_dict(canonicalize(result, name)) | {
        "scheme": result.scheme_name,
        "violations": result.violations.summary(),
        "traffic": {
            "replay_metadata_bytes": result.traffic.replay_metadata_bytes,
            "merged_copy_bytes": result.traffic.merged_copy_bytes,
            "trace_bytes_total": result.traffic.trace_bytes_total,
        },
    }


def experiment_to_dict(data: ExperimentData) -> Dict[str, Any]:
    return {
        "name": data.name,
        "total_time": data.total_time,
        "machine_names": list(data.machine_names),
        "machine_of_rank": {str(r): m for r, m in data.machine_of_rank.items()},
        "cells": [
            {"metric": metric, "path": list(path), "rank": rank, "value": value}
            for (metric, path, rank), value in sorted(data.cells.items())
        ],
    }


def experiment_from_dict(raw: Dict[str, Any]) -> ExperimentData:
    try:
        data = ExperimentData(
            name=str(raw["name"]),
            total_time=float(raw["total_time"]),
            machine_names=list(raw["machine_names"]),
            machine_of_rank={
                int(r): int(m) for r, m in raw["machine_of_rank"].items()
            },
        )
        for cell in raw["cells"]:
            key = (
                str(cell["metric"]),
                tuple(str(p) for p in cell["path"]),
                int(cell["rank"]),
            )
            data.cells[key] = float(cell["value"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ReportError(f"malformed experiment document: {exc}") from exc
    return data
