"""Trace data substrate: event records, region registry, encoding, archives.

Local trace files are per-process streams of fixed-layout binary event
records (EPILOG-like), referencing a per-archive definitions document that
holds the region table and the system tree (machine / node / process
locations, paper Section 3 *Event location*).
"""

from repro.trace.events import (
    EventKind,
    Event,
    EnterEvent,
    ExitEvent,
    SendEvent,
    RecvEvent,
    CollExitEvent,
)
from repro.trace.regions import RegionRegistry
from repro.trace.buffer import TraceBuffer
from repro.trace.encoding import encode_events, decode_events
from repro.trace.archive import (
    Definitions,
    ArchiveWriter,
    ArchiveReader,
    trace_filename,
    DEFINITIONS_FILE,
    SYNC_FILE,
)

__all__ = [
    "EventKind",
    "Event",
    "EnterEvent",
    "ExitEvent",
    "SendEvent",
    "RecvEvent",
    "CollExitEvent",
    "RegionRegistry",
    "TraceBuffer",
    "encode_events",
    "decode_events",
    "Definitions",
    "ArchiveWriter",
    "ArchiveReader",
    "trace_filename",
    "DEFINITIONS_FILE",
    "SYNC_FILE",
]
