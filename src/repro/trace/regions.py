"""Region (source-code function) registry.

Region identifiers are small integers shared by all processes of one run —
the instrumentation registers regions at first use and the table travels in
the archive's definitions document.  MPI operations use their standard
names (``MPI_Send`` …) and are flagged so analysis can tell communication
regions from user code.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.errors import TraceError

#: Names treated as MPI regions by the analysis.
MPI_REGION_PREFIX = "MPI_"

#: MPI regions in which a process can complete a blocking receive
#: (the regions where the Late Sender pattern may materialize).
RECEIVE_REGIONS = frozenset(
    {"MPI_Recv", "MPI_Wait", "MPI_Waitall", "MPI_Sendrecv"}
)

#: MPI regions in which a blocking (rendezvous) send can stall
#: (Late Receiver).
SEND_REGIONS = frozenset(
    {"MPI_Send", "MPI_Ssend", "MPI_Wait", "MPI_Waitall", "MPI_Sendrecv"}
)


def is_mpi_region(name: str) -> bool:
    return name.startswith(MPI_REGION_PREFIX)


class RegionRegistry:
    """Bidirectional name ↔ id table with stable, dense ids."""

    def __init__(self) -> None:
        self._id_of: Dict[str, int] = {}
        self._name_of: List[str] = []

    def __len__(self) -> int:
        return len(self._name_of)

    def __contains__(self, name: str) -> bool:
        return name in self._id_of

    def register(self, name: str) -> int:
        """Return the id of *name*, creating it on first use."""
        if not name:
            raise TraceError("region name must be non-empty")
        rid = self._id_of.get(name)
        if rid is None:
            rid = len(self._name_of)
            self._id_of[name] = rid
            self._name_of.append(name)
        return rid

    def id_of(self, name: str) -> int:
        try:
            return self._id_of[name]
        except KeyError:
            raise TraceError(f"unknown region {name!r}") from None

    def name_of(self, rid: int) -> str:
        if not 0 <= rid < len(self._name_of):
            raise TraceError(f"unknown region id {rid}")
        return self._name_of[rid]

    def names(self) -> List[str]:
        return list(self._name_of)

    def items(self) -> Iterable[Tuple[str, int]]:
        return self._id_of.items()

    def to_list(self) -> List[str]:
        """Serializable form: index == id."""
        return list(self._name_of)

    @classmethod
    def from_list(cls, names: Iterable[str]) -> "RegionRegistry":
        registry = cls()
        for name in names:
            registry.register(name)
        return registry
