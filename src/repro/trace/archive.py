"""Experiment archives.

All files of one experiment live in a single archive directory (paper
Section 3, *Trace file organization*).  On a metacomputer the archive may
be *partial* — replicated per metahost on whatever storage that metahost
can reach (Section 4, *Runtime archive management*); each partial archive
holds the definitions document, the synchronization measurements, and the
local trace files of the ranks running on that metahost.

Layout inside an archive directory::

    <path>/definitions.json     region table, system tree, communicators
    <path>/sync.json            offset-measurement records
    <path>/trace.<rank>.dat     binary event stream of one rank
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.clocks.serialize import sync_data_from_dict, sync_data_to_dict
from repro.clocks.sync import SyncData
from repro.errors import ArchiveError
from repro.fs.filesystem import MountNamespace
from repro.ids import Location
from repro.trace.encoding import encode_events, iter_events
from repro.trace.events import Event
from repro.trace.regions import RegionRegistry

DEFINITIONS_FILE = "definitions.json"
SYNC_FILE = "sync.json"


def trace_filename(rank: int) -> str:
    return f"trace.{rank}.dat"


@dataclass
class Definitions:
    """Archive-wide metadata: system tree, regions, communicators."""

    machine_names: List[str]
    locations: Dict[int, Location]
    regions: RegionRegistry
    communicators: Dict[int, Tuple[str, Tuple[int, ...]]] = field(default_factory=dict)

    @property
    def world_size(self) -> int:
        return len(self.locations)

    def machine_of(self, rank: int) -> int:
        try:
            return self.locations[rank].machine
        except KeyError:
            raise ArchiveError(f"no location recorded for rank {rank}") from None

    def ranks_of_machine(self, machine: int) -> List[int]:
        return sorted(
            rank for rank, loc in self.locations.items() if loc.machine == machine
        )

    def to_json(self) -> str:
        payload: Dict[str, Any] = {
            "version": 1,
            "machine_names": self.machine_names,
            "locations": {
                str(rank): list(loc.as_tuple()) for rank, loc in self.locations.items()
            },
            "regions": self.regions.to_list(),
            "communicators": {
                str(cid): {"name": name, "ranks": list(ranks)}
                for cid, (name, ranks) in self.communicators.items()
            },
        }
        return json.dumps(payload, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Definitions":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ArchiveError(f"malformed definitions document: {exc}") from exc
        try:
            locations = {
                int(rank): Location(*map(int, loc))
                for rank, loc in payload["locations"].items()
            }
            communicators = {
                int(cid): (entry["name"], tuple(int(r) for r in entry["ranks"]))
                for cid, entry in payload.get("communicators", {}).items()
            }
            return cls(
                machine_names=list(payload["machine_names"]),
                locations=locations,
                regions=RegionRegistry.from_list(payload["regions"]),
                communicators=communicators,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArchiveError(f"malformed definitions document: {exc}") from exc


@dataclass
class TraceShard:
    """A picklable snapshot of one shard's raw trace files.

    This is the unit of work shipped to a parallel analysis worker: plain
    bytes keyed by rank, detached from any mount namespace, so it crosses a
    ``multiprocessing`` boundary under both fork and spawn without dragging
    the simulated file system along.  Ranks whose trace is absent are
    recorded in ``missing`` with the same reason string the serial
    degraded-mode analyzer uses.
    """

    ranks: Tuple[int, ...]
    blobs: Dict[int, bytes] = field(default_factory=dict)
    missing: Dict[int, str] = field(default_factory=dict)


class ArchiveWriter:
    """Writes one metahost's partial archive through its mount namespace."""

    def __init__(self, namespace: MountNamespace, path: str) -> None:
        self.namespace = namespace
        self.path = path.rstrip("/")
        if not namespace.is_dir(self.path):
            raise ArchiveError(
                f"archive directory {self.path} does not exist; run the "
                "archive-management protocol first"
            )

    def _file(self, name: str) -> str:
        return f"{self.path}/{name}"

    def write_definitions(self, definitions: Definitions) -> None:
        self.namespace.write_file(
            self._file(DEFINITIONS_FILE),
            definitions.to_json().encode("utf-8"),
            overwrite=True,
        )

    def write_sync_data(self, sync_data: SyncData) -> None:
        self.namespace.write_file(
            self._file(SYNC_FILE),
            json.dumps(sync_data_to_dict(sync_data), sort_keys=True).encode("utf-8"),
            overwrite=True,
        )

    def write_trace(self, rank: int, events: Sequence[Event]) -> int:
        """Write one rank's local trace; returns the encoded byte count."""
        return self.write_trace_blob(rank, encode_events(rank, events))

    def write_trace_blob(self, rank: int, blob: bytes) -> int:
        """Write pre-encoded (possibly fault-mangled) trace bytes for *rank*."""
        self.namespace.write_file(self._file(trace_filename(rank)), blob, overwrite=True)
        return len(blob)


class ArchiveReader:
    """Reads a (partial) archive through one metahost's namespace.

    The defining constraint of the paper's parallel analysis holds here:
    a reader can only deliver trace files that are physically present on
    the file system its namespace resolves the archive path to.
    """

    def __init__(self, namespace: MountNamespace, path: str) -> None:
        self.namespace = namespace
        self.path = path.rstrip("/")
        if not namespace.is_dir(self.path):
            raise ArchiveError(f"no archive directory at {self.path}")
        self._definitions: Optional[Definitions] = None

    def _file(self, name: str) -> str:
        return f"{self.path}/{name}"

    def definitions(self) -> Definitions:
        if self._definitions is None:
            blob = self.namespace.read_file(self._file(DEFINITIONS_FILE))
            self._definitions = Definitions.from_json(blob.decode("utf-8"))
        return self._definitions

    def sync_data(self) -> SyncData:
        blob = self.namespace.read_file(self._file(SYNC_FILE))
        return sync_data_from_dict(json.loads(blob.decode("utf-8")))

    def has_trace(self, rank: int) -> bool:
        return self.namespace.is_file(self._file(trace_filename(rank)))

    def read_trace(self, rank: int) -> List[Event]:
        _size, records = self.stream_trace(rank)
        return list(records)

    def read_trace_blob(self, rank: int) -> bytes:
        """One rank's trace file as raw bytes (header included, undecoded).

        For consumers that drive the codec themselves — the pipeline
        benchmark times :func:`~repro.trace.encoding.decode_events` against
        exactly these bytes.
        """
        return self.namespace.read_file(self._file(trace_filename(rank)))

    def stream_trace(self, rank: int) -> Tuple[int, Iterator[Event]]:
        """One rank's trace as ``(file byte count, lazy event iterator)``.

        The streaming form lets the replay walk a trace exactly once without
        ever materializing the full event list (or re-reading the file just
        to learn its size).
        """
        blob = self.namespace.read_file(self._file(trace_filename(rank)))
        file_rank, records = iter_events(blob)
        if file_rank != rank:
            raise ArchiveError(
                f"trace file {trace_filename(rank)} claims rank {file_rank}"
            )
        return len(blob), records

    def shard_snapshot(self, ranks: Sequence[int]) -> TraceShard:
        """Raw trace blobs for *ranks*, detached from the namespace.

        The shard-addressable read used by the parallel analyzer: the
        parent process snapshots each shard's bytes through the owning
        metahost's namespace, then ships the self-contained
        :class:`TraceShard` to a worker.
        """
        shard = TraceShard(ranks=tuple(ranks))
        for rank in shard.ranks:
            if self.has_trace(rank):
                shard.blobs[rank] = self.read_trace_blob(rank)
            else:
                shard.missing[rank] = (
                    f"{trace_filename(rank)} missing from its metahost's archive"
                )
        return shard

    def available_ranks(self) -> List[int]:
        ranks = []
        for name in self.namespace.list_dir(self.path):
            if name.startswith("trace.") and name.endswith(".dat"):
                middle = name[len("trace."):-len(".dat")]
                if middle.isdigit():
                    ranks.append(int(middle))
        return sorted(ranks)
