"""Experiment archives.

All files of one experiment live in a single archive directory (paper
Section 3, *Trace file organization*).  On a metacomputer the archive may
be *partial* — replicated per metahost on whatever storage that metahost
can reach (Section 4, *Runtime archive management*); each partial archive
holds the definitions document, the synchronization measurements, and the
local trace files of the ranks running on that metahost.

Layout inside an archive directory::

    <path>/definitions.json     region table, system tree, communicators
    <path>/sync.json            offset-measurement records
    <path>/trace.<rank>.dat     binary event stream of one rank
    <path>/manifest.json        per-rank sizes + record-block CRC32 checksums

Every file is written atomically (same-directory ``*.tmp`` then an atomic
replace), so an interrupted run never leaves a half-written file that a
later resume would trust.  The manifest carries record-aligned CRC32
block checksums of each trace as it left the encoder, which is what lets
:meth:`ArchiveReader.verify` localize on-storage corruption to a block
and lets degraded-mode replay distinguish a clean trace from one whose
damage happens to decode.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.clocks.serialize import sync_data_from_dict, sync_data_to_dict
from repro.clocks.sync import SyncData
from repro.errors import ArchiveError, FileSystemError
from repro.fs.filesystem import MountNamespace
from repro.ids import Location
from repro.trace.encoding import (
    SalvagedTrace,
    block_table,
    encode_events,
    iter_events,
    salvage_events,
)
from repro.trace.events import Event
from repro.trace.regions import RegionRegistry

DEFINITIONS_FILE = "definitions.json"
SYNC_FILE = "sync.json"
MANIFEST_FILE = "manifest.json"


def trace_filename(rank: int) -> str:
    return f"trace.{rank}.dat"


@dataclass
class Definitions:
    """Archive-wide metadata: system tree, regions, communicators."""

    machine_names: List[str]
    locations: Dict[int, Location]
    regions: RegionRegistry
    communicators: Dict[int, Tuple[str, Tuple[int, ...]]] = field(default_factory=dict)

    @property
    def world_size(self) -> int:
        return len(self.locations)

    def machine_of(self, rank: int) -> int:
        try:
            return self.locations[rank].machine
        except KeyError:
            raise ArchiveError(f"no location recorded for rank {rank}") from None

    def ranks_of_machine(self, machine: int) -> List[int]:
        return sorted(
            rank for rank, loc in self.locations.items() if loc.machine == machine
        )

    def to_json(self) -> str:
        payload: Dict[str, Any] = {
            "version": 1,
            "machine_names": self.machine_names,
            "locations": {
                str(rank): list(loc.as_tuple()) for rank, loc in self.locations.items()
            },
            "regions": self.regions.to_list(),
            "communicators": {
                str(cid): {"name": name, "ranks": list(ranks)}
                for cid, (name, ranks) in self.communicators.items()
            },
        }
        return json.dumps(payload, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Definitions":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ArchiveError(f"malformed definitions document: {exc}") from exc
        try:
            locations = {
                int(rank): Location(*map(int, loc))
                for rank, loc in payload["locations"].items()
            }
            communicators = {
                int(cid): (entry["name"], tuple(int(r) for r in entry["ranks"]))
                for cid, entry in payload.get("communicators", {}).items()
            }
            return cls(
                machine_names=list(payload["machine_names"]),
                locations=locations,
                regions=RegionRegistry.from_list(payload["regions"]),
                communicators=communicators,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArchiveError(f"malformed definitions document: {exc}") from exc


@dataclass(frozen=True)
class TraceManifestEntry:
    """Integrity metadata of one rank's trace as it left the encoder.

    ``blocks`` is the record-aligned checksum table of
    :func:`~repro.trace.encoding.block_table`: ``(offset, length, crc32)``
    triples covering every byte of the pristine file exactly once.
    """

    rank: int
    size: int
    blocks: Tuple[Tuple[int, int, int], ...]

    @classmethod
    def for_blob(cls, rank: int, blob: bytes) -> "TraceManifestEntry":
        return cls(
            rank=rank,
            size=len(blob),
            blocks=tuple(block_table(blob)),
        )


@dataclass
class ArchiveManifest:
    """The per-archive integrity manifest: rank → trace checksums."""

    entries: Dict[int, TraceManifestEntry] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {
            "version": 1,
            "traces": {
                str(rank): {
                    "size": entry.size,
                    "blocks": [list(block) for block in entry.blocks],
                }
                for rank, entry in sorted(self.entries.items())
            },
        }
        return json.dumps(payload, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ArchiveManifest":
        try:
            payload = json.loads(text)
            entries = {
                int(rank): TraceManifestEntry(
                    rank=int(rank),
                    size=int(doc["size"]),
                    blocks=tuple(
                        (int(o), int(n), int(c)) for o, n, c in doc["blocks"]
                    ),
                )
                for rank, doc in payload["traces"].items()
            }
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ArchiveError(f"malformed archive manifest: {exc}") from exc
        return cls(entries=entries)


@dataclass(frozen=True)
class BlockCorruption:
    """One checksum block of one trace that failed verification."""

    rank: int
    #: Index of the block in the manifest's table.
    block: int
    offset: int
    length: int
    expected_crc32: int
    #: CRC of the bytes actually on storage; ``None`` when they are absent
    #: (truncation) rather than altered.
    actual_crc32: Optional[int]
    reason: str


@dataclass
class TraceVerification:
    """Verification verdict of one rank's trace against its manifest entry."""

    rank: int
    size_expected: int
    size_actual: int
    corruptions: Tuple[BlockCorruption, ...] = ()
    #: Set when the trace could not be checked at all (file missing).
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.corruptions and not self.error

    @property
    def trusted_prefix(self) -> int:
        """Bytes from offset 0 known good: up to the first failed block."""
        if self.error:
            return 0
        if not self.corruptions:
            return min(self.size_expected, self.size_actual)
        return min(c.offset for c in self.corruptions)


@dataclass
class ArchiveVerification:
    """Typed corruption report for one (partial) archive directory."""

    path: str
    traces: Dict[int, TraceVerification] = field(default_factory=dict)
    #: Ranks with a trace file but no manifest entry (unverifiable).
    unverified: Tuple[int, ...] = ()
    #: The archive predates integrity manifests; nothing could be checked.
    missing_manifest: bool = False
    #: The manifest itself was unreadable.
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error and all(t.ok for t in self.traces.values())

    @property
    def corruptions(self) -> List[BlockCorruption]:
        return [c for t in sorted(self.traces) for c in self.traces[t].corruptions]

    def summary(self) -> str:
        if self.missing_manifest:
            return f"{self.path}: no manifest (archive predates integrity checks)"
        if self.error:
            return f"{self.path}: manifest unreadable: {self.error}"
        bad = [t for t in sorted(self.traces) if not self.traces[t].ok]
        if not bad:
            return f"{self.path}: {len(self.traces)} trace(s) verified OK"
        return (
            f"{self.path}: {len(bad)} of {len(self.traces)} trace(s) damaged "
            f"(ranks {', '.join(map(str, bad))}; "
            f"{len(self.corruptions)} bad block(s))"
        )


@dataclass
class RunVerification:
    """Integrity verdict across every partial archive of a run."""

    archives: List[ArchiveVerification] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(a.ok for a in self.archives)

    @property
    def corruptions(self) -> List[BlockCorruption]:
        return [c for a in self.archives for c in a.corruptions]

    def text(self) -> str:
        lines = [a.summary() for a in self.archives]
        verdict = "OK" if self.ok else "CORRUPTION DETECTED"
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


def verify_trace_blob(blob: bytes, entry: TraceManifestEntry) -> TraceVerification:
    """Check *blob* against its manifest entry, localizing damage to blocks."""
    corruptions: List[BlockCorruption] = []
    size_actual = len(blob)
    for index, (offset, length, expected) in enumerate(entry.blocks):
        chunk = blob[offset : offset + length]
        if len(chunk) < length:
            corruptions.append(
                BlockCorruption(
                    rank=entry.rank,
                    block=index,
                    offset=offset,
                    length=length,
                    expected_crc32=expected,
                    actual_crc32=None,
                    reason=(
                        f"block truncated: {len(chunk)} of {length} bytes present"
                    ),
                )
            )
            continue
        actual = zlib.crc32(chunk)
        if actual != expected:
            corruptions.append(
                BlockCorruption(
                    rank=entry.rank,
                    block=index,
                    offset=offset,
                    length=length,
                    expected_crc32=expected,
                    actual_crc32=actual,
                    reason="checksum mismatch",
                )
            )
    if size_actual > entry.size:
        corruptions.append(
            BlockCorruption(
                rank=entry.rank,
                block=len(entry.blocks),
                offset=entry.size,
                length=size_actual - entry.size,
                expected_crc32=0,
                actual_crc32=zlib.crc32(blob[entry.size :]),
                reason=f"{size_actual - entry.size} trailing byte(s) beyond "
                "the manifest's coverage",
            )
        )
    return TraceVerification(
        rank=entry.rank,
        size_expected=entry.size,
        size_actual=size_actual,
        corruptions=tuple(corruptions),
    )


def salvage_checked(
    blob: bytes, entry: Optional[TraceManifestEntry], count_only: bool = False
) -> SalvagedTrace:
    """Checksum-aware salvage: grammar salvage plus manifest evidence.

    Augments :func:`~repro.trace.encoding.salvage_events` — it never
    decodes fewer events — with what only the manifest can know:

    * ``bytes_total`` becomes the *original* encoded size, so the
      completeness fraction of a truncated trace reflects what was lost
      rather than pretending the shrunken file is the whole story;
    * damage that the grammar cannot see (a record-boundary truncation, a
      byte flip that still parses) flips ``complete`` to False with a
      checksum diagnosis, so degraded-mode replay treats the rank as
      partial instead of silently analyzing corrupt data.

    With no manifest entry (``entry is None``) this is exactly
    ``salvage_events(blob)``.  ``count_only`` is passed through: the
    streaming prepass scans without materializing events.
    """
    salvaged = salvage_events(blob, count_only=count_only)
    if entry is None:
        return salvaged
    salvaged.bytes_total = max(salvaged.bytes_total, entry.size)
    verification = verify_trace_blob(blob, entry)
    if not verification.ok and salvaged.complete and salvaged.balanced:
        first = verification.corruptions[0]
        salvaged.complete = False
        salvaged.error = (
            f"checksum: block {first.block} at offset {first.offset} "
            f"({first.reason})"
        )
        salvaged.bytes_decoded = min(
            salvaged.bytes_decoded, verification.trusted_prefix
        )
    return salvaged


@dataclass
class TraceShard:
    """A picklable snapshot of one shard's raw trace files.

    This is the unit of work shipped to a parallel analysis worker: plain
    bytes keyed by rank, detached from any mount namespace, so it crosses a
    ``multiprocessing`` boundary under both fork and spawn without dragging
    the simulated file system along.  Ranks whose trace is absent are
    recorded in ``missing`` with the same reason string the serial
    degraded-mode analyzer uses.
    """

    ranks: Tuple[int, ...]
    blobs: Dict[int, bytes] = field(default_factory=dict)
    missing: Dict[int, str] = field(default_factory=dict)
    #: Manifest entries for the snapshotted ranks, when the archive has a
    #: manifest — workers use them for checksum-aware degraded salvage.
    manifests: Dict[int, TraceManifestEntry] = field(default_factory=dict)


class ArchiveWriter:
    """Writes one metahost's partial archive through its mount namespace.

    Every file goes through an atomic same-directory temp-file + replace,
    and each trace write accumulates a manifest entry;
    :meth:`write_manifest` seals the archive with the integrity manifest
    once all local traces are down.
    """

    def __init__(self, namespace: MountNamespace, path: str) -> None:
        self.namespace = namespace
        self.path = path.rstrip("/")
        if not namespace.is_dir(self.path):
            raise ArchiveError(
                f"archive directory {self.path} does not exist; run the "
                "archive-management protocol first"
            )
        self._manifest = ArchiveManifest()

    def _file(self, name: str) -> str:
        return f"{self.path}/{name}"

    def _write_atomic(self, name: str, data: bytes) -> None:
        self.namespace.write_file_atomic(self._file(name), data)

    def write_definitions(self, definitions: Definitions) -> None:
        self._write_atomic(DEFINITIONS_FILE, definitions.to_json().encode("utf-8"))

    def write_sync_data(self, sync_data: SyncData) -> None:
        self._write_atomic(
            SYNC_FILE,
            json.dumps(sync_data_to_dict(sync_data), sort_keys=True).encode("utf-8"),
        )

    def write_trace(self, rank: int, events: Sequence[Event]) -> int:
        """Write one rank's local trace; returns the encoded byte count."""
        return self.write_trace_blob(rank, encode_events(rank, events))

    def write_trace_stream(
        self,
        rank: int,
        chunks: Iterable[bytes],
        checksums_of: Optional[bytes] = None,
    ) -> int:
        """Write a trace from pre-encoded byte chunks (streaming emit path).

        The simulator's buffers encode records incrementally during the
        run; this entry point accepts that stream (header chunk first)
        without a decode/re-encode round trip.  Namespace writes are
        atomic whole-file operations, so the chunks are joined here — the
        memory bound is one rank's encoded trace, never event objects.
        """
        return self.write_trace_blob(rank, b"".join(chunks), checksums_of=checksums_of)

    def write_trace_blob(
        self, rank: int, blob: bytes, checksums_of: Optional[bytes] = None
    ) -> int:
        """Write pre-encoded trace bytes for *rank* and record its checksums.

        ``checksums_of`` lets the caller checksum *different* bytes than it
        stores: fault injection models storage corrupting a trace *after*
        the encoder checksummed it, so the manifest carries the pristine
        bytes' CRCs while the damaged bytes hit the (simulated) disk —
        exactly the situation :meth:`ArchiveReader.verify` exists to catch.
        """
        self._manifest.entries[rank] = TraceManifestEntry.for_blob(
            rank, blob if checksums_of is None else checksums_of
        )
        self._write_atomic(trace_filename(rank), blob)
        return len(blob)

    def write_manifest(self) -> int:
        """Seal the archive: persist the accumulated integrity manifest."""
        data = self._manifest.to_json().encode("utf-8")
        self._write_atomic(MANIFEST_FILE, data)
        return len(self._manifest.entries)


class ArchiveReader:
    """Reads a (partial) archive through one metahost's namespace.

    The defining constraint of the paper's parallel analysis holds here:
    a reader can only deliver trace files that are physically present on
    the file system its namespace resolves the archive path to.
    """

    def __init__(self, namespace: MountNamespace, path: str) -> None:
        self.namespace = namespace
        self.path = path.rstrip("/")
        if not namespace.is_dir(self.path):
            raise ArchiveError(f"no archive directory at {self.path}")
        self._definitions: Optional[Definitions] = None
        self._manifest_loaded = False
        self._manifest: Optional[ArchiveManifest] = None

    def _file(self, name: str) -> str:
        return f"{self.path}/{name}"

    def definitions(self) -> Definitions:
        if self._definitions is None:
            blob = self.namespace.read_file(self._file(DEFINITIONS_FILE))
            self._definitions = Definitions.from_json(blob.decode("utf-8"))
        return self._definitions

    def sync_data(self) -> SyncData:
        blob = self.namespace.read_file(self._file(SYNC_FILE))
        return sync_data_from_dict(json.loads(blob.decode("utf-8")))

    def manifest(self) -> Optional[ArchiveManifest]:
        """The archive's integrity manifest, or ``None`` when it has none.

        A malformed manifest raises :class:`~repro.errors.ArchiveError`
        (the file exists but cannot be trusted); a manifest-less archive —
        one written before integrity checks existed — is simply
        unverifiable, not broken.
        """
        if not self._manifest_loaded:
            self._manifest_loaded = True
            try:
                blob = self.namespace.read_file(self._file(MANIFEST_FILE))
            except FileSystemError:
                self._manifest = None
            else:
                self._manifest = ArchiveManifest.from_json(blob.decode("utf-8"))
        return self._manifest

    def manifest_entry(self, rank: int) -> Optional[TraceManifestEntry]:
        """Best-effort manifest entry for *rank* (``None`` when unavailable)."""
        try:
            manifest = self.manifest()
        except ArchiveError:
            return None
        if manifest is None:
            return None
        return manifest.entries.get(rank)

    def verify(self) -> ArchiveVerification:
        """Check every manifest-covered trace; localize damage to blocks."""
        result = ArchiveVerification(path=self.path)
        try:
            manifest = self.manifest()
        except ArchiveError as exc:
            result.error = str(exc)
            return result
        if manifest is None:
            result.missing_manifest = True
            return result
        present = set(self.available_ranks())
        for rank, entry in sorted(manifest.entries.items()):
            if rank not in present:
                result.traces[rank] = TraceVerification(
                    rank=rank,
                    size_expected=entry.size,
                    size_actual=0,
                    error=f"{trace_filename(rank)} missing from the archive",
                )
                continue
            result.traces[rank] = verify_trace_blob(
                self.read_trace_blob(rank), entry
            )
        result.unverified = tuple(sorted(present - set(manifest.entries)))
        return result

    def has_trace(self, rank: int) -> bool:
        return self.namespace.is_file(self._file(trace_filename(rank)))

    def read_trace(self, rank: int) -> List[Event]:
        _size, records = self.stream_trace(rank)
        return list(records)

    def read_trace_blob(self, rank: int) -> bytes:
        """One rank's trace file as raw bytes (header included, undecoded).

        For consumers that drive the codec themselves — the pipeline
        benchmark times :func:`~repro.trace.encoding.decode_events` against
        exactly these bytes.
        """
        return self.namespace.read_file(self._file(trace_filename(rank)))

    def stream_trace(self, rank: int) -> Tuple[int, Iterator[Event]]:
        """One rank's trace as ``(file byte count, lazy event iterator)``.

        The streaming form lets the replay walk a trace exactly once without
        ever materializing the full event list (or re-reading the file just
        to learn its size).
        """
        blob = self.namespace.read_file(self._file(trace_filename(rank)))
        file_rank, records = iter_events(blob)
        if file_rank != rank:
            raise ArchiveError(
                f"trace file {trace_filename(rank)} claims rank {file_rank}"
            )
        return len(blob), records

    def shard_snapshot(self, ranks: Sequence[int]) -> TraceShard:
        """Raw trace blobs for *ranks*, detached from the namespace.

        The shard-addressable read used by the parallel analyzer: the
        parent process snapshots each shard's bytes through the owning
        metahost's namespace, then ships the self-contained
        :class:`TraceShard` to a worker.
        """
        shard = TraceShard(ranks=tuple(ranks))
        for rank in shard.ranks:
            if self.has_trace(rank):
                shard.blobs[rank] = self.read_trace_blob(rank)
                entry = self.manifest_entry(rank)
                if entry is not None:
                    shard.manifests[rank] = entry
            else:
                shard.missing[rank] = (
                    f"{trace_filename(rank)} missing from its metahost's archive"
                )
        return shard

    def available_ranks(self) -> List[int]:
        ranks = []
        for name in self.namespace.list_dir(self.path):
            if name.startswith("trace.") and name.endswith(".dat"):
                middle = name[len("trace."):-len(".dat")]
                if middle.isdigit():
                    ranks.append(int(middle))
        return sorted(ranks)
