"""Per-process trace buffers.

The tracing backend appends events as they happen; the buffer enforces the
per-process invariants trace consumers rely on: non-decreasing local time
stamps and balanced ENTER/EXIT nesting (checked on finalize).

Events are *encoded as they arrive*: each hook packs its record straight
into the binary trace format (:mod:`repro.trace.encoding`) and appends it
to one growing ``bytearray``.  Memory per buffered event is therefore the
encoded record size (13–37 bytes) instead of a Python event object
(~100+ bytes), which is what bounds simulator memory at 1024 ranks, and
end-of-run archive writing is a plain byte copy instead of a second
whole-trace encode pass.  :attr:`events` decodes on demand for consumers
that want event objects (tests, diagnostics); the encoded and decoded
views are byte-equivalent by construction since both run through the same
record structs.
"""

from __future__ import annotations

import struct
from typing import Iterator, List

from repro.errors import EncodingError, TraceError
from repro.trace.encoding import (
    decode_events,
    encode_header,
    pack_coll_exit,
    pack_enter,
    pack_exit,
    pack_omp_region,
    pack_recv,
    pack_send,
)
from repro.trace.events import Event


class TraceBuffer:
    """Append-only event log of one process, encoded on the fly."""

    __slots__ = ("rank", "_buf", "_count", "_last_time", "_depth", "_finalized")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._buf = bytearray()
        self._count = 0
        self._last_time = float("-inf")
        self._depth = 0
        self._finalized = False

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    @property
    def events(self) -> List[Event]:
        """Decoded event objects (materialized on each access)."""
        return decode_events(self.encoded())[1]

    def encoded(self) -> bytes:
        """The trace-file bytes (header + records) encoded so far.

        Identical to ``encode_events(rank, events)`` over the same event
        sequence; the archive writer stores this directly.
        """
        return encode_header(self.rank) + bytes(self._buf)

    def encoded_chunks(self) -> Iterator[bytes]:
        """Byte chunks forming :meth:`encoded` (header first), copy-free.

        Feed this to :meth:`~repro.trace.archive.ArchiveWriter.write_trace_stream`
        to emit the trace without materializing event objects.
        """
        yield encode_header(self.rank)
        yield memoryview(self._buf)

    def _check(self, time: float) -> None:
        if self._finalized:
            raise TraceError(f"trace buffer of rank {self.rank} already finalized")
        if time < self._last_time:
            raise TraceError(
                f"rank {self.rank}: non-monotonic local time stamp "
                f"{time} after {self._last_time}"
            )

    def _commit(self, time: float, record: bytes) -> None:
        self._last_time = time
        self._count += 1
        self._buf += record

    def enter(self, time: float, region: int) -> None:
        self._check(time)
        try:
            record = pack_enter(1, time, region)
        except struct.error as exc:
            raise EncodingError(
                f"rank {self.rank}: cannot encode ENTER event: {exc}"
            ) from exc
        self._depth += 1
        self._commit(time, record)

    def exit(self, time: float, region: int) -> None:
        if self._depth <= 0:
            raise TraceError(f"rank {self.rank}: EXIT without matching ENTER")
        self._check(time)
        try:
            record = pack_exit(2, time, region)
        except struct.error as exc:
            raise EncodingError(
                f"rank {self.rank}: cannot encode EXIT event: {exc}"
            ) from exc
        self._depth -= 1
        self._commit(time, record)

    def send(self, time: float, dest: int, tag: int, comm: int, size: int) -> None:
        self._check(time)
        try:
            record = pack_send(3, time, dest, tag, comm, size)
        except struct.error as exc:
            raise EncodingError(
                f"rank {self.rank}: cannot encode SEND event: {exc}"
            ) from exc
        self._commit(time, record)

    def recv(self, time: float, source: int, tag: int, comm: int, size: int) -> None:
        self._check(time)
        try:
            record = pack_recv(4, time, source, tag, comm, size)
        except struct.error as exc:
            raise EncodingError(
                f"rank {self.rank}: cannot encode RECV event: {exc}"
            ) from exc
        self._commit(time, record)

    def omp_region(
        self, time: float, region: int, nthreads: int, busy_sum: float, busy_max: float
    ) -> None:
        if nthreads < 1:
            raise TraceError(f"rank {self.rank}: team size must be positive")
        if busy_sum < 0 or busy_max < 0:
            raise TraceError(f"rank {self.rank}: negative thread busy time")
        self._check(time)
        try:
            record = pack_omp_region(6, time, region, nthreads, busy_sum, busy_max)
        except struct.error as exc:
            raise EncodingError(
                f"rank {self.rank}: cannot encode OMPREGION event: {exc}"
            ) from exc
        self._commit(time, record)

    def coll_exit(
        self, time: float, region: int, comm: int, root: int, sent: int, recvd: int
    ) -> None:
        self._check(time)
        try:
            record = pack_coll_exit(5, time, region, comm, root, sent, recvd)
        except struct.error as exc:
            raise EncodingError(
                f"rank {self.rank}: cannot encode COLLEXIT event: {exc}"
            ) from exc
        self._commit(time, record)

    def finalize(self) -> None:
        """Close the buffer, verifying ENTER/EXIT balance."""
        if self._depth != 0:
            raise TraceError(
                f"rank {self.rank}: {self._depth} unclosed regions at trace end"
            )
        self._finalized = True

    @property
    def finalized(self) -> bool:
        return self._finalized
