"""Per-process trace buffers.

The tracing backend appends events as they happen; the buffer enforces the
per-process invariants trace consumers rely on: non-decreasing local time
stamps and balanced ENTER/EXIT nesting (checked on finalize).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import TraceError
from repro.trace.events import (
    CollExitEvent,
    OmpRegionEvent,
    EnterEvent,
    Event,
    ExitEvent,
    RecvEvent,
    SendEvent,
)


class TraceBuffer:
    """Append-only event log of one process."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._events: List[Event] = []
        self._last_time = float("-inf")
        self._depth = 0
        self._finalized = False

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def events(self) -> List[Event]:
        return self._events

    def _append(self, event: Event) -> None:
        if self._finalized:
            raise TraceError(f"trace buffer of rank {self.rank} already finalized")
        if event.time < self._last_time:
            raise TraceError(
                f"rank {self.rank}: non-monotonic local time stamp "
                f"{event.time} after {self._last_time}"
            )
        self._last_time = event.time
        self._events.append(event)

    def enter(self, time: float, region: int) -> None:
        self._depth += 1
        self._append(EnterEvent(time, region))

    def exit(self, time: float, region: int) -> None:
        if self._depth <= 0:
            raise TraceError(f"rank {self.rank}: EXIT without matching ENTER")
        self._depth -= 1
        self._append(ExitEvent(time, region))

    def send(self, time: float, dest: int, tag: int, comm: int, size: int) -> None:
        self._append(SendEvent(time, dest, tag, comm, size))

    def recv(self, time: float, source: int, tag: int, comm: int, size: int) -> None:
        self._append(RecvEvent(time, source, tag, comm, size))

    def omp_region(
        self, time: float, region: int, nthreads: int, busy_sum: float, busy_max: float
    ) -> None:
        if nthreads < 1:
            raise TraceError(f"rank {self.rank}: team size must be positive")
        if busy_sum < 0 or busy_max < 0:
            raise TraceError(f"rank {self.rank}: negative thread busy time")
        self._append(OmpRegionEvent(time, region, nthreads, busy_sum, busy_max))

    def coll_exit(
        self, time: float, region: int, comm: int, root: int, sent: int, recvd: int
    ) -> None:
        self._append(CollExitEvent(time, region, comm, root, sent, recvd))

    def finalize(self) -> None:
        """Close the buffer, verifying ENTER/EXIT balance."""
        if self._depth != 0:
            raise TraceError(
                f"rank {self.rank}: {self._depth} unclosed regions at trace end"
            )
        self._finalized = True

    @property
    def finalized(self) -> bool:
        return self._finalized
