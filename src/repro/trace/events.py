"""Event record types.

Five record kinds cover MPI-1 tracing (paper Section 3; the toolset's
single-machine pattern catalogue is built entirely on them):

``ENTER`` / ``EXIT``
    Region boundaries — both user functions (``cgiteration``) and MPI calls
    (``MPI_Recv``).
``SEND`` / ``RECV``
    Point-to-point transfer records.  ``SEND`` is written on the sender
    inside the sending call, ``RECV`` on the receiver inside the completing
    call; they reference the *global* peer rank, the tag and communicator.
``COLLEXIT``
    Collective-operation completion, carrying the communicator, the root
    and the byte volumes moved — enough for the collective wait-state
    patterns after the replay gathers all enter times.

Times are node-local clock stamps in seconds; synchronization to master
time happens post mortem.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class EventKind(enum.IntEnum):
    ENTER = 1
    EXIT = 2
    SEND = 3
    RECV = 4
    COLLEXIT = 5
    OMPREGION = 6


@dataclass(frozen=True)
class EnterEvent:
    time: float
    region: int

    kind = EventKind.ENTER


@dataclass(frozen=True)
class ExitEvent:
    time: float
    region: int

    kind = EventKind.EXIT


@dataclass(frozen=True)
class SendEvent:
    time: float
    dest: int  # global rank of the receiver
    tag: int
    comm: int
    size: int

    kind = EventKind.SEND


@dataclass(frozen=True)
class RecvEvent:
    time: float
    source: int  # global rank of the sender
    tag: int
    comm: int
    size: int

    kind = EventKind.RECV


@dataclass(frozen=True)
class CollExitEvent:
    time: float
    region: int
    comm: int
    root: int  # global rank of the root (rank 0 of the comm for barriers)
    sent: int
    recvd: int

    kind = EventKind.COLLEXIT


@dataclass(frozen=True)
class OmpRegionEvent:
    """Summary record of one fork-join parallel region (hybrid codes).

    Written just before the region's EXIT: the team size and the total and
    maximum per-thread busy time.  Region wall time equals ``busy_max`` (the
    slowest thread), so per-region thread idleness is
    ``nthreads · busy_max − busy_sum``.
    """

    time: float
    region: int
    nthreads: int
    busy_sum: float
    busy_max: float

    kind = EventKind.OMPREGION


Event = Union[
    EnterEvent, ExitEvent, SendEvent, RecvEvent, CollExitEvent, OmpRegionEvent
]
