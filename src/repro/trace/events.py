"""Event record types.

Five record kinds cover MPI-1 tracing (paper Section 3; the toolset's
single-machine pattern catalogue is built entirely on them):

``ENTER`` / ``EXIT``
    Region boundaries — both user functions (``cgiteration``) and MPI calls
    (``MPI_Recv``).
``SEND`` / ``RECV``
    Point-to-point transfer records.  ``SEND`` is written on the sender
    inside the sending call, ``RECV`` on the receiver inside the completing
    call; they reference the *global* peer rank, the tag and communicator.
``COLLEXIT``
    Collective-operation completion, carrying the communicator, the root
    and the byte volumes moved — enough for the collective wait-state
    patterns after the replay gathers all enter times.

Times are node-local clock stamps in seconds; synchronization to master
time happens post mortem.

Records are ``NamedTuple`` subclasses rather than frozen dataclasses:
millions of them are constructed on the trace→decode→replay hot path, and
tuple construction is several times cheaper than frozen-dataclass
``__init__`` (which pays one ``object.__setattr__`` per field).  They stay
immutable and field-named; equality additionally requires the same record
type, so an ENTER never compares equal to an equal-valued EXIT.
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Union


class EventKind(enum.IntEnum):
    ENTER = 1
    EXIT = 2
    SEND = 3
    RECV = 4
    COLLEXIT = 5
    OMPREGION = 6


def _typed_eq(self, other):
    return type(self) is type(other) and tuple.__eq__(self, other)


def _typed_ne(self, other):
    return not _typed_eq(self, other)


class EnterEvent(NamedTuple):
    time: float
    region: int

    kind = EventKind.ENTER
    __eq__ = _typed_eq
    __ne__ = _typed_ne
    __hash__ = tuple.__hash__


class ExitEvent(NamedTuple):
    time: float
    region: int

    kind = EventKind.EXIT
    __eq__ = _typed_eq
    __ne__ = _typed_ne
    __hash__ = tuple.__hash__


class SendEvent(NamedTuple):
    time: float
    dest: int  # global rank of the receiver
    tag: int
    comm: int
    size: int

    kind = EventKind.SEND
    __eq__ = _typed_eq
    __ne__ = _typed_ne
    __hash__ = tuple.__hash__


class RecvEvent(NamedTuple):
    time: float
    source: int  # global rank of the sender
    tag: int
    comm: int
    size: int

    kind = EventKind.RECV
    __eq__ = _typed_eq
    __ne__ = _typed_ne
    __hash__ = tuple.__hash__


class CollExitEvent(NamedTuple):
    time: float
    region: int
    comm: int
    root: int  # global rank of the root (rank 0 of the comm for barriers)
    sent: int
    recvd: int

    kind = EventKind.COLLEXIT
    __eq__ = _typed_eq
    __ne__ = _typed_ne
    __hash__ = tuple.__hash__


class OmpRegionEvent(NamedTuple):
    """Summary record of one fork-join parallel region (hybrid codes).

    Written just before the region's EXIT: the team size and the total and
    maximum per-thread busy time.  Region wall time equals ``busy_max`` (the
    slowest thread), so per-region thread idleness is
    ``nthreads · busy_max − busy_sum``.
    """

    time: float
    region: int
    nthreads: int
    busy_sum: float
    busy_max: float

    kind = EventKind.OMPREGION
    __eq__ = _typed_eq
    __ne__ = _typed_ne
    __hash__ = tuple.__hash__


Event = Union[
    EnterEvent, ExitEvent, SendEvent, RecvEvent, CollExitEvent, OmpRegionEvent
]
