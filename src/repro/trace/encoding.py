"""Binary encoding of local trace files.

Fixed-layout little-endian records, one per event, each introduced by a
one-byte kind tag (see :class:`~repro.trace.events.EventKind`):

====  ==========================================  =======
kind  payload                                     bytes
====  ==========================================  =======
1     ENTER     f64 time, u32 region              13
2     EXIT      f64 time, u32 region              13
3     SEND      f64 time, i32 dest, i32 tag,      29
                u32 comm, u64 size
4     RECV      f64 time, i32 src,  i32 tag,      29
                u32 comm, u64 size
5     COLLEXIT  f64 time, u32 region, u32 comm,   37
                i32 root, u64 sent, u64 recvd
6     OMPREGION f64 time, u32 region, u32 team,   33
                f64 busy_sum, f64 busy_max
====  ==========================================  =======

A short magic header (``RPRT`` + format version + rank) makes stray files
detectable.  The codec is strict both ways: out-of-range field values on
encode, and unknown kinds or truncated records on decode, all raise
:class:`~repro.errors.EncodingError` (offsets in decode diagnostics always
point at the record's kind tag, i.e. the start of the offending record).

Both directions run through per-kind dispatch tables.  The decoder exposes
a streaming :func:`iter_events` so consumers never have to materialize a
full event list, and batches runs of same-kind records — the common case,
since tight loops emit long ENTER/EXIT/SEND trains — through a single
:meth:`struct.Struct.iter_unpack` call over a :class:`memoryview` slice
instead of one ``unpack_from`` per record.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from itertools import chain
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import EncodingError
from repro.trace.events import (
    CollExitEvent,
    EnterEvent,
    Event,
    EventKind,
    ExitEvent,
    OmpRegionEvent,
    RecvEvent,
    SendEvent,
)

MAGIC = b"RPRT"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<4sHI")  # magic, version, rank

#: Byte length of the file header (fault injection cuts traces below this).
HEADER_SIZE = _HEADER.size
_ENTER = struct.Struct("<dI")
_EXIT = _ENTER
_SEND = struct.Struct("<diiIQ")
_RECV = _SEND
_COLLEXIT = struct.Struct("<dIIiQQ")
_OMPREGION = struct.Struct("<dIIdd")

# Whole-record structs (kind byte + payload, still unaligned little-endian)
# shared by the encoder and the run-batched decoder fast path.
_ENTER_REC = struct.Struct("<BdI")
_EXIT_REC = _ENTER_REC
_SEND_REC = struct.Struct("<BdiiIQ")
_RECV_REC = _SEND_REC
_COLLEXIT_REC = struct.Struct("<BdIIiQQ")
_OMPREGION_REC = struct.Struct("<BdIIdd")

#: kind → function packing one event into its full record (kind byte included).
_ENCODERS: Dict[int, Callable[[Event], bytes]] = {
    EventKind.ENTER: lambda e, _p=_ENTER_REC.pack: _p(1, e.time, e.region),
    EventKind.EXIT: lambda e, _p=_EXIT_REC.pack: _p(2, e.time, e.region),
    EventKind.SEND: lambda e, _p=_SEND_REC.pack: _p(
        3, e.time, e.dest, e.tag, e.comm, e.size
    ),
    EventKind.RECV: lambda e, _p=_RECV_REC.pack: _p(
        4, e.time, e.source, e.tag, e.comm, e.size
    ),
    EventKind.COLLEXIT: lambda e, _p=_COLLEXIT_REC.pack: _p(
        5, e.time, e.region, e.comm, e.root, e.sent, e.recvd
    ),
    EventKind.OMPREGION: lambda e, _p=_OMPREGION_REC.pack: _p(
        6, e.time, e.region, e.nthreads, e.busy_sum, e.busy_max
    ),
}

def _factory(cls) -> Callable[[tuple], Event]:
    """Record tuple (kind byte included) → event, via C-level tuple.__new__.

    Events are NamedTuples, so ``tuple.__new__(cls, fields)`` builds them
    without entering the generated Python ``__new__`` — the decoder
    constructs millions of these.  Field arity is guaranteed by the fixed
    record structs.
    """
    return lambda f, _new=tuple.__new__, _cls=cls: _new(_cls, f[1:])


#: kind → (record stride, unpack_from, iter_unpack, record fields → event).
_DECODERS: Dict[int, Tuple[int, Callable, Callable, Callable[[tuple], Event]]] = {
    int(kind): (rec.size, rec.unpack_from, rec.iter_unpack, _factory(cls))
    for kind, rec, cls in (
        (EventKind.ENTER, _ENTER_REC, EnterEvent),
        (EventKind.EXIT, _EXIT_REC, ExitEvent),
        (EventKind.SEND, _SEND_REC, SendEvent),
        (EventKind.RECV, _RECV_REC, RecvEvent),
        (EventKind.COLLEXIT, _COLLEXIT_REC, CollExitEvent),
        (EventKind.OMPREGION, _OMPREGION_REC, OmpRegionEvent),
    )
}


def encode_header(rank: int) -> bytes:
    """Trace-file header bytes for *rank* (shared with the streaming buffer)."""
    try:
        return _HEADER.pack(MAGIC, FORMAT_VERSION, rank)
    except struct.error as exc:
        raise EncodingError(f"cannot encode rank {rank} in trace header: {exc}") from exc


#: Bound whole-record packers (kind byte first) for callers that encode
#: records as they are produced — the streaming
#: :class:`~repro.trace.buffer.TraceBuffer` — instead of going through
#: event objects and :func:`encode_events`.
pack_enter = _ENTER_REC.pack
pack_exit = _EXIT_REC.pack
pack_send = _SEND_REC.pack
pack_recv = _RECV_REC.pack
pack_coll_exit = _COLLEXIT_REC.pack
pack_omp_region = _OMPREGION_REC.pack


def encode_events(rank: int, events: Iterable[Event]) -> bytes:
    """Serialize *events* of one process to a trace-file byte string."""
    chunks: List[bytes] = [encode_header(rank)]
    append = chunks.append
    encoders = _ENCODERS
    for index, event in enumerate(events):
        encoder = encoders.get(event.kind)
        if encoder is None:
            raise EncodingError(f"cannot encode event kind {event.kind!r}")
        try:
            append(encoder(event))
        except struct.error as exc:
            raise EncodingError(
                f"cannot encode {EventKind(event.kind).name} event at index "
                f"{index}: {exc} ({event!r})"
            ) from exc
    return b"".join(chunks)


def _check_header(data: bytes) -> int:
    """Validate the file header; returns the recorded rank."""
    if len(data) < _HEADER.size:
        raise EncodingError("trace file shorter than its header")
    magic, version, rank = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise EncodingError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != FORMAT_VERSION:
        raise EncodingError(f"unsupported trace format version {version}")
    return rank


def _run_end(data: bytes, offset: int, kind: int, stride: int, size: int) -> int:
    """End offset of the run of complete *kind* records starting at *offset*.

    The first record is already known to be complete; extend while the next
    full record carries the same kind tag.
    """
    end = offset + stride
    while end + stride <= size and data[end] == kind:
        end += stride
    return end


#: Records decoded per chunk on the streaming path — large enough to make the
#: per-chunk Python generator resume negligible, small enough that memory
#: stays O(chunk) rather than O(trace).
_CHUNK_RECORDS = 1024


def _chunk_iter(data: bytes, chunk: int = _CHUNK_RECORDS) -> Iterator[List[Event]]:
    """Decode records after a validated header, yielding lists of ~*chunk*.

    The single implementation of the record grammar: both the streaming
    (:func:`iter_events`) and the one-shot (:func:`decode_events`) decoders
    consume it.  Inside a chunk the loop is tight ``append``/``extend``;
    yielding whole lists keeps per-event generator-resume cost out of the
    hot path (the consumer iterates each chunk at C level).
    """
    view = memoryview(data)
    decoders = _DECODERS
    size = len(data)
    offset = _HEADER.size
    buf: List[Event] = []
    append = buf.append
    extend = buf.extend
    while offset < size:
        kind = data[offset]
        entry = decoders.get(kind)
        if entry is None:
            raise EncodingError(f"unknown record kind {kind} at offset {offset}")
        stride, unpack_from, iter_unpack, factory = entry
        end = offset + stride
        if end > size:
            raise EncodingError(
                f"truncated {EventKind(kind).name} record at offset {offset}"
            )
        if end < size and data[end] == kind:
            # Run of ≥ 2 same-kind records: one iter_unpack for the batch.
            end = _run_end(data, offset, kind, stride, size)
            extend(map(factory, iter_unpack(view[offset:end])))
        else:
            append(factory(unpack_from(data, offset)))
        offset = end
        if len(buf) >= chunk:
            yield buf
            buf = []
            append = buf.append
            extend = buf.extend
    if buf:
        yield buf


def iter_events(data: bytes) -> Tuple[int, Iterator[Event]]:
    """Streaming decoder: ``(rank, lazy event iterator)``.

    The header is validated eagerly; record decoding errors surface as
    :class:`~repro.errors.EncodingError` while iterating.  Memory use is
    bounded by the decode chunk size, never the whole trace.
    """
    return _check_header(data), chain.from_iterable(_chunk_iter(data))


def decode_events(data: bytes) -> Tuple[int, List[Event]]:
    """Parse a trace file; returns ``(rank, events)``."""
    rank = _check_header(data)
    events: List[Event] = []
    extend = events.extend
    for chunk in _chunk_iter(data):
        extend(chunk)
    return rank, events


#: Target checksum-block size.  Small enough that a flipped byte condemns
#: only a sliver of a large trace, large enough that the manifest stays a
#: few entries per kilobyte of trace.
CHECKSUM_BLOCK_BYTES = 4096


def block_table(
    data: bytes, block_bytes: int = CHECKSUM_BLOCK_BYTES
) -> List[Tuple[int, int, int]]:
    """Record-aligned checksum blocks of a trace file: ``(offset, length, crc32)``.

    Blocks are cut by walking the record grammar (like
    :func:`record_boundary`), never mid-record, so a failed checksum
    condemns whole records and the block boundary doubles as a salvage
    boundary.  The first block starts at offset 0 and includes the header;
    each block closes at the first record boundary at or past
    ``block_bytes``.  Bytes that do not parse as records (a damaged or
    foreign tail) are folded into the final block — every byte of the file
    is covered by exactly one block.
    """
    size = len(data)
    if size == 0:
        return []
    if block_bytes <= 0:
        raise ValueError(f"block_bytes must be positive, got {block_bytes}")
    decoders = _DECODERS
    table: List[Tuple[int, int, int]] = []
    start = 0
    offset = min(_HEADER.size, size)
    while offset < size:
        entry = decoders.get(data[offset])
        if entry is None or offset + entry[0] > size:
            # Unknown kind or truncated record: the grammar ends here; the
            # rest of the file belongs to the final block.
            offset = size
            break
        offset += entry[0]
        if offset - start >= block_bytes:
            table.append((start, offset - start, zlib.crc32(data[start:offset])))
            start = offset
    if start < size or not table:
        table.append((start, size - start, zlib.crc32(data[start:size])))
    return table


def record_boundary(data: bytes, target_offset: int) -> int:
    """Offset of the first record starting at or after *target_offset*.

    Walks the record grammar from the header without decoding payloads, so
    callers (fault injection, salvage diagnostics) can damage or cut a trace
    at a record boundary.  Stops early at an unknown kind byte; the returned
    offset never exceeds ``len(data)``.
    """
    size = len(data)
    offset = _HEADER.size
    decoders = _DECODERS
    while offset < size and offset < target_offset:
        entry = decoders.get(data[offset])
        if entry is None:
            break
        offset += entry[0]
    return min(offset, size)


@dataclass
class SalvagedTrace:
    """Best-effort decode of a possibly truncated or corrupt trace file.

    ``events`` holds every record that decoded cleanly before the first
    defect; ``complete`` is True iff the whole byte stream decoded.  The
    strict decoders raise on the defects this type records — salvage never
    raises, it stops.
    """

    rank: Optional[int]
    events: List[Event] = field(default_factory=list)
    complete: bool = True
    error: str = ""
    bytes_decoded: int = 0
    bytes_total: int = 0
    #: Records decoded (or, for a count-only scan, counted without being
    #: materialized).  Equals ``len(events)`` whenever events were collected.
    event_count: int = 0
    #: ENTER records left unmatched by an EXIT at the end of the decoded
    #: prefix.  Negative when stray EXITs outnumber ENTERs (corruption that
    #: happened to decode as valid records).
    open_regions: int = 0

    @property
    def completeness(self) -> float:
        """Fraction of the file's bytes that decoded (1.0 for a clean file)."""
        if self.bytes_total <= 0:
            return 1.0 if self.complete else 0.0
        return self.bytes_decoded / self.bytes_total

    @property
    def balanced(self) -> bool:
        """True iff every decoded ENTER has its EXIT.

        A truncation that lands exactly on a record boundary yields a blob
        that decodes cleanly (``complete`` is True) — the only remaining
        evidence of damage is regions left open at the end of the event
        stream.  Analyzability requires ``complete and balanced``.
        """
        return self.open_regions == 0


def salvage_events(data: bytes, count_only: bool = False) -> SalvagedTrace:
    """Decode the longest clean prefix of *data*, never raising.

    Unlike :func:`decode_events`, a bad header, an unknown kind byte, or a
    truncated final record end the decode instead of raising
    :class:`~repro.errors.EncodingError`; everything before the defect is
    returned together with a description of it.  Degraded-mode replay is
    built on this.

    With ``count_only=True`` the walk makes the same decisions — same
    ``complete``/``balanced``/``error``/byte accounting — but records are
    counted (``event_count``) instead of materialized, so scanning an
    arbitrarily long damaged trace costs O(1) memory.  The streaming
    degraded prepass uses this; the actual events then flow through the
    chunked decoder only for ranks that pass the scan.
    """
    bytes_total = len(data)
    try:
        rank = _check_header(data)
    except EncodingError as exc:
        return SalvagedTrace(
            rank=None, complete=False, error=str(exc), bytes_total=bytes_total
        )
    events: List[Event] = []
    append = events.append
    decoders = _DECODERS
    size = bytes_total
    offset = _HEADER.size
    depth = 0
    count = 0
    while offset < size:
        kind = data[offset]
        entry = decoders.get(kind)
        if entry is None:
            return SalvagedTrace(
                rank,
                events,
                complete=False,
                error=f"unknown record kind {kind} at offset {offset}",
                bytes_decoded=offset,
                bytes_total=bytes_total,
                open_regions=depth,
                event_count=count,
            )
        stride, unpack_from, _iter_unpack, factory = entry
        if offset + stride > size:
            return SalvagedTrace(
                rank,
                events,
                complete=False,
                error=f"truncated {EventKind(kind).name} record at offset {offset}",
                bytes_decoded=offset,
                bytes_total=bytes_total,
                open_regions=depth,
                event_count=count,
            )
        if not count_only:
            append(factory(unpack_from(data, offset)))
        count += 1
        if kind == 1:
            depth += 1
        elif kind == 2:
            depth -= 1
        offset += stride
    return SalvagedTrace(
        rank,
        events,
        complete=True,
        bytes_decoded=offset,
        bytes_total=bytes_total,
        open_regions=depth,
        event_count=count,
    )
