"""Binary encoding of local trace files.

Fixed-layout little-endian records, one per event, each introduced by a
one-byte kind tag (see :class:`~repro.trace.events.EventKind`):

====  ==========================================  =======
kind  payload                                     bytes
====  ==========================================  =======
1     ENTER     f64 time, u32 region              13
2     EXIT      f64 time, u32 region              13
3     SEND      f64 time, i32 dest, i32 tag,      29
                u32 comm, u64 size
4     RECV      f64 time, i32 src,  i32 tag,      29
                u32 comm, u64 size
5     COLLEXIT  f64 time, u32 region, u32 comm,   37
                i32 root, u64 sent, u64 recvd
6     OMPREGION f64 time, u32 region, u32 team,   33
                f64 busy_sum, f64 busy_max
====  ==========================================  =======

A short magic header (``RPRT`` + format version + rank) makes stray files
detectable.  Decoding is strict: unknown kinds and truncated records raise
:class:`~repro.errors.EncodingError`.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Tuple

from repro.errors import EncodingError
from repro.trace.events import (
    CollExitEvent,
    OmpRegionEvent,
    EnterEvent,
    Event,
    EventKind,
    ExitEvent,
    RecvEvent,
    SendEvent,
)

MAGIC = b"RPRT"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<4sHI")  # magic, version, rank
_ENTER = struct.Struct("<dI")
_EXIT = _ENTER
_SEND = struct.Struct("<diiIQ")
_RECV = _SEND
_COLLEXIT = struct.Struct("<dIIiQQ")
_OMPREGION = struct.Struct("<dIIdd")


def encode_events(rank: int, events: Iterable[Event]) -> bytes:
    """Serialize *events* of one process to a trace-file byte string."""
    chunks: List[bytes] = [_HEADER.pack(MAGIC, FORMAT_VERSION, rank)]
    for event in events:
        kind = event.kind
        if kind == EventKind.ENTER:
            chunks.append(bytes([kind]) + _ENTER.pack(event.time, event.region))
        elif kind == EventKind.EXIT:
            chunks.append(bytes([kind]) + _EXIT.pack(event.time, event.region))
        elif kind == EventKind.SEND:
            chunks.append(
                bytes([kind])
                + _SEND.pack(event.time, event.dest, event.tag, event.comm, event.size)
            )
        elif kind == EventKind.RECV:
            chunks.append(
                bytes([kind])
                + _RECV.pack(event.time, event.source, event.tag, event.comm, event.size)
            )
        elif kind == EventKind.COLLEXIT:
            chunks.append(
                bytes([kind])
                + _COLLEXIT.pack(
                    event.time, event.region, event.comm, event.root, event.sent, event.recvd
                )
            )
        elif kind == EventKind.OMPREGION:
            chunks.append(
                bytes([kind])
                + _OMPREGION.pack(
                    event.time, event.region, event.nthreads,
                    event.busy_sum, event.busy_max,
                )
            )
        else:  # pragma: no cover - events enum is closed
            raise EncodingError(f"cannot encode event kind {kind!r}")
    return b"".join(chunks)


def decode_events(data: bytes) -> Tuple[int, List[Event]]:
    """Parse a trace file; returns ``(rank, events)``."""
    if len(data) < _HEADER.size:
        raise EncodingError("trace file shorter than its header")
    magic, version, rank = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise EncodingError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != FORMAT_VERSION:
        raise EncodingError(f"unsupported trace format version {version}")
    events: List[Event] = []
    offset = _HEADER.size
    size = len(data)
    while offset < size:
        kind = data[offset]
        offset += 1
        try:
            if kind == EventKind.ENTER:
                time, region = _ENTER.unpack_from(data, offset)
                offset += _ENTER.size
                events.append(EnterEvent(time, region))
            elif kind == EventKind.EXIT:
                time, region = _EXIT.unpack_from(data, offset)
                offset += _EXIT.size
                events.append(ExitEvent(time, region))
            elif kind == EventKind.SEND:
                time, dest, tag, comm, msg_size = _SEND.unpack_from(data, offset)
                offset += _SEND.size
                events.append(SendEvent(time, dest, tag, comm, msg_size))
            elif kind == EventKind.RECV:
                time, source, tag, comm, msg_size = _RECV.unpack_from(data, offset)
                offset += _RECV.size
                events.append(RecvEvent(time, source, tag, comm, msg_size))
            elif kind == EventKind.COLLEXIT:
                time, region, comm, root, sent, recvd = _COLLEXIT.unpack_from(data, offset)
                offset += _COLLEXIT.size
                events.append(CollExitEvent(time, region, comm, root, sent, recvd))
            elif kind == EventKind.OMPREGION:
                time, region, nthreads, busy_sum, busy_max = _OMPREGION.unpack_from(
                    data, offset
                )
                offset += _OMPREGION.size
                events.append(
                    OmpRegionEvent(time, region, nthreads, busy_sum, busy_max)
                )
            else:
                raise EncodingError(f"unknown record kind {kind} at offset {offset - 1}")
        except struct.error as exc:
            raise EncodingError(f"truncated record at offset {offset - 1}") from exc
    return rank, events
