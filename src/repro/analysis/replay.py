"""The parallel replay analyzer.

Mirrors SCALASCA's metacomputing-enabled analysis (paper Section 4):

* every rank's trace is read **through the mount namespace of its own
  metahost** — the analyzer never copies a trace file across machines;
* the replay exchanges only per-event metadata (matched-pair records and
  collective enter times), whose volume is tracked in
  :class:`ReplayTraffic` so it can be compared against the merged-trace
  baseline ("the amount of data transferred per process is significantly
  smaller than the entire trace file belonging to that process");
* while matching, the analyzer also "reports violations of the clock
  condition" — the Table 2 metric.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.callpath import CallPathRegistry
from repro.analysis.instances import ProcessTimeline, build_timeline, total_time_of
from repro.analysis.matching import MessageMatcher
from repro.analysis.patterns import (
    COLLECTIVE,
    COMMUNICATION,
    EXECUTION,
    IDLE_THREADS,
    MPI,
    P2P,
    SYNCHRONIZATION,
    TIME,
    default_collective_patterns,
    default_p2p_patterns,
    metric_tree,
)
from repro.analysis.patterns.base import classify_region
from repro.analysis.patterns.grid import (
    GridPairBreakdown,
    accumulate_collective,
    accumulate_p2p,
)
from repro.analysis.request import AnalysisRequest
from repro.analysis.severity import SeverityCube
from repro.analysis.severity_timeline import SeverityTimeline
from repro.clocks.condition import ClockConditionChecker, MessageStamp
from repro.clocks.sync import HierarchicalInterpolation, LinearConverter, SyncScheme
from repro.errors import AnalysisError, PartialTraceWarning
from repro.ids import node_of
from repro.resilience.pool import ExecutionReport
from repro.trace.archive import (
    ArchiveReader,
    Definitions,
    salvage_checked,
    trace_filename,
)


@dataclass(frozen=True)
class RankCompleteness:
    """Per-rank account of how much of a trace the analysis could use."""

    rank: int
    complete: bool
    completeness: float  # fraction of the trace file's bytes that decoded
    events: int  # events decoded (salvaged prefix included)
    analyzed: bool  # included in matching/pattern search
    error: str = ""  # why the trace is incomplete ("" when complete)


@dataclass
class ReplayTraffic:
    """Bytes moved by the replay vs. a merged-trace analysis."""

    replay_metadata_bytes: int = 0
    merged_copy_bytes: int = 0
    trace_bytes_total: int = 0

    @property
    def saving_factor(self) -> float:
        """How many times more data a merged analysis would have moved."""
        if self.replay_metadata_bytes == 0:
            return float("inf") if self.merged_copy_bytes > 0 else 1.0
        return self.merged_copy_bytes / self.replay_metadata_bytes


@dataclass
class AnalysisResult:
    """Severity cube plus everything needed to interpret it."""

    cube: SeverityCube
    callpaths: CallPathRegistry
    definitions: Definitions
    violations: ClockConditionChecker
    traffic: ReplayTraffic
    scheme_name: str
    total_time: float
    timelines: Dict[int, ProcessTimeline] = field(default_factory=dict)
    #: Fine-grained grid classification (paper §6 future work): grid
    #: severities per (causing metahost, waiting metahost) combination.
    grid_pairs: GridPairBreakdown = field(default_factory=GridPairBreakdown)
    #: True when the analysis ran in degraded mode (damaged traces are
    #: salvaged/excluded instead of raising).
    degraded: bool = False
    #: Per-rank completeness record (degraded mode; empty otherwise).
    completeness: Dict[int, RankCompleteness] = field(default_factory=dict)
    #: Time-resolved severity (rolling-window series), populated when the
    #: request asked for a timeline.  Diagnostic floats — deliberately
    #: outside the equality contract: only the aggregate cube promises
    #: bit-identity across execution models.
    severity_timeline: Optional[SeverityTimeline] = field(
        default=None, compare=False
    )
    #: Supervised-pool account of a parallel run (None for serial runs).
    #: Deliberately outside the equality contract of the result: the same
    #: analysis recovered after a worker crash is the same analysis.
    execution: Optional[ExecutionReport] = field(default=None, compare=False)
    #: Why the analysis was cut short (deadline expiry / cancellation), or
    #: None for a run that completed.  An interrupted result is *partial*:
    #: severity accumulated up to the cut, per-rank ``completeness``
    #: reporting exactly how far each rank got.
    interrupted: Optional[str] = field(default=None, compare=False)

    # Lazily built query indexes.  The cube and call-path registry are
    # frozen once analyze() returns, so caching is safe; before these,
    # every metric_in_region/metric_under_region call re-walked every call
    # path (and rebuilt the per-callpath marginal) per query.
    _by_callpath_cache: Dict[str, Dict[int, float]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _leaf_index: Optional[Dict[int, List[int]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _containment_index: Optional[Dict[int, List[int]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def _by_callpath(self, metric: str) -> Dict[int, float]:
        cached = self._by_callpath_cache.get(metric)
        if cached is None:
            cached = self.cube.by_callpath(metric)
            self._by_callpath_cache[metric] = cached
        return cached

    def _region_indexes(self) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]:
        """``(leaf index, containment index)``: region id → cpids.

        Built in one pass over the interned paths.  Parents are always
        interned before their children, so a path's region set is its
        parent's set plus its own leaf region.
        """
        if self._leaf_index is None or self._containment_index is None:
            leaf: Dict[int, List[int]] = {}
            containment: Dict[int, List[int]] = {}
            region_sets: Dict[int, frozenset] = {}
            for path in self.callpaths.all_paths():
                leaf.setdefault(path.region, []).append(path.cpid)
                parent_set = region_sets.get(path.parent, frozenset())
                regions = parent_set | {path.region}
                region_sets[path.cpid] = regions
                for rid in sorted(regions):
                    containment.setdefault(rid, []).append(path.cpid)
            self._leaf_index = leaf
            self._containment_index = containment
        return self._leaf_index, self._containment_index

    # -- metric access ----------------------------------------------------------

    def metric_total(self, metric: str) -> float:
        """Inclusive total of a metric over all call paths and ranks."""
        if metric == EXECUTION:
            # No measurement overhead is modeled, so Execution == Time.
            return self.cube.total(TIME)
        return self.cube.total(metric)

    def pct(self, metric: str) -> float:
        """Metric total as percent of total time (the Figure 6 numbers)."""
        total = self.metric_total(TIME)
        if total <= 0.0:
            return 0.0
        return 100.0 * self.metric_total(metric) / total

    def exclusive_total(self, metric: str) -> float:
        """Metric total minus its children's totals (browser display value).

        The Idle Threads child is measured in thread-seconds rather than
        process wall seconds, so it is never subtracted from its parent.
        """
        children = [
            m
            for m in metric_tree()
            if m.parent == metric and m.name != IDLE_THREADS
        ]
        value = self.metric_total(metric) - sum(
            self.metric_total(child.name) for child in children
        )
        return max(0.0, value)

    # -- distributions -------------------------------------------------------------

    def grid_pair_breakdown(self, metric: str) -> Dict[tuple, float]:
        """Grid severity per (causing, waiting) metahost name pair.

        Implements the paper's desired finer-grained classification of the
        grid patterns by metahost combination.
        """
        return self.grid_pairs.named(metric, self.definitions.machine_names)

    def machine_breakdown(self, metric: str) -> Dict[str, float]:
        """Metric total per metahost name (the right panel of Figure 6)."""
        out: Dict[str, float] = {}
        for rank, value in self.cube.by_rank(metric).items():
            machine = self.definitions.machine_of(rank)
            name = self.definitions.machine_names[machine]
            out[name] = out.get(name, 0.0) + value
        return out

    def rank_breakdown(self, metric: str) -> Dict[int, float]:
        return self.cube.by_rank(metric)

    def top_callpaths(
        self, metric: str, n: int = 5
    ) -> List[Tuple[str, float]]:
        """Largest call-path contributors, rendered as path strings."""
        return [
            (self.callpaths.render(cpid, self.definitions.regions), value)
            for cpid, value in self.cube.top_callpaths(metric, n)
        ]

    def callpath_value(self, metric: str, *names: str) -> float:
        """Metric value at the exact call path given by region names."""
        cpid = self.callpaths.find(self.definitions.regions, *names)
        if cpid is None:
            return 0.0
        return self._by_callpath(metric).get(cpid, 0.0)

    @property
    def analyzed_ranks(self) -> List[int]:
        """Ranks whose timelines entered the pattern search."""
        return sorted(self.timelines)

    @property
    def excluded_ranks(self) -> List[int]:
        """Ranks dropped by degraded mode (damaged or unreadable traces)."""
        return sorted(
            rank for rank, rec in self.completeness.items() if not rec.analyzed
        )

    def metric_in_region(self, metric: str, region_name: str) -> float:
        """Metric total over all call paths whose innermost frame is *region_name*."""
        regions = self.definitions.regions
        if region_name not in regions:
            return 0.0
        leaf_index, _ = self._region_indexes()
        by_callpath = self._by_callpath(metric)
        return sum(
            by_callpath.get(cpid, 0.0)
            for cpid in leaf_index.get(regions.id_of(region_name), ())
        )

    def metric_under_region(self, metric: str, region_name: str) -> float:
        """Metric total over call paths containing *region_name* anywhere."""
        regions = self.definitions.regions
        if region_name not in regions:
            return 0.0
        _, containment_index = self._region_indexes()
        by_callpath = self._by_callpath(metric)
        return sum(
            by_callpath.get(cpid, 0.0)
            for cpid in containment_index.get(regions.id_of(region_name), ())
        )


class ReplayAnalyzer:
    """Drives one analysis over a set of per-metahost archive readers.

    With ``degraded=True`` the analyzer survives damaged experiments: a
    truncated or corrupt trace is salvaged up to its first defect and the
    rank excluded, a missing trace or reader excludes the rank, missing
    sync measurements fall back through the non-strict scheme ladder, and
    receives whose sender was excluded are skipped.  Each exclusion emits a
    :class:`~repro.errors.PartialTraceWarning` and is recorded in
    ``AnalysisResult.completeness``; the pattern search then runs on the
    intersection of complete ranks.
    """

    def __init__(
        self,
        readers: Dict[int, ArchiveReader],
        scheme: Optional[SyncScheme] = None,
        degraded: bool = False,
    ) -> None:
        if not readers:
            raise AnalysisError("no archive readers supplied")
        self.readers = dict(readers)
        self.degraded = degraded
        if scheme is None:
            scheme = HierarchicalInterpolation(strict=not degraded)
        self.scheme = scheme

    def _load_degraded(
        self,
        rank: int,
        reader: Optional[ArchiveReader],
        completeness: Dict[int, RankCompleteness],
    ) -> Optional[Tuple[int, list]]:
        """Salvage one rank's trace; record and warn instead of raising.

        Returns ``(byte count, events)`` for a fully decoded trace, None
        for a rank that must be excluded from the analysis.
        """

        def exclude(reason: str, fraction: float = 0.0, events: int = 0) -> None:
            completeness[rank] = RankCompleteness(
                rank=rank,
                complete=False,
                completeness=fraction,
                events=events,
                analyzed=False,
                error=reason,
            )
            warnings.warn(
                f"rank {rank} excluded from replay: {reason}", PartialTraceWarning,
                stacklevel=4,
            )

        if reader is None:
            exclude("no archive reader for its metahost")
            return None
        if not reader.has_trace(rank):
            exclude(f"{trace_filename(rank)} missing from its metahost's archive")
            return None
        blob = reader.read_trace_blob(rank)
        salvaged = salvage_checked(blob, reader.manifest_entry(rank))
        if salvaged.rank is not None and salvaged.rank != rank:
            exclude(f"trace file claims rank {salvaged.rank}")
            return None
        if not salvaged.complete:
            exclude(
                salvaged.error,
                fraction=salvaged.completeness,
                events=len(salvaged.events),
            )
            return None
        if not salvaged.balanced:
            # A cut landing exactly on a record boundary decodes cleanly;
            # the only evidence of damage is regions left open at the end.
            exclude(
                f"trace decodes but leaves {salvaged.open_regions} region(s) "
                "open (truncated at a record boundary?)",
                fraction=salvaged.completeness,
                events=len(salvaged.events),
            )
            return None
        completeness[rank] = RankCompleteness(
            rank=rank,
            complete=True,
            completeness=1.0,
            events=len(salvaged.events),
            analyzed=True,
        )
        return len(blob), salvaged.events

    def analyze(self) -> AnalysisResult:
        first_reader = next(iter(self.readers.values()))
        definitions = first_reader.definitions()
        sync_data = first_reader.sync_data()
        synchronized = self.scheme.convert_all(sync_data)
        degraded = self.degraded

        callpaths = CallPathRegistry()
        timelines: Dict[int, ProcessTimeline] = {}
        trace_bytes: Dict[int, int] = {}
        completeness: Dict[int, RankCompleteness] = {}
        for rank in sorted(definitions.locations):
            location = definitions.locations[rank]
            reader = self.readers.get(location.machine)
            if degraded:
                loaded = self._load_degraded(rank, reader, completeness)
                if loaded is None:
                    continue
                trace_bytes[rank], events = loaded
            else:
                if reader is None:
                    raise AnalysisError(
                        f"no archive reader for machine {location.machine} "
                        f"(rank {rank} lives there)"
                    )
                if not reader.has_trace(rank):
                    raise AnalysisError(
                        f"rank {rank}'s trace is not visible on its own metahost "
                        f"({trace_filename(rank)} missing)"
                    )
                # Stream the trace: one file read, no materialized event list.
                trace_bytes[rank], events = reader.stream_trace(rank)
            converter = synchronized.converters.get(node_of(location))
            if converter is None:
                if not degraded:
                    raise AnalysisError(
                        f"no clock converter for node {node_of(location)}"
                    )
                warnings.warn(
                    f"rank {rank}: no clock converter for {node_of(location)}, "
                    "using local time unconverted",
                    PartialTraceWarning,
                    stacklevel=2,
                )
                converter = LinearConverter.identity()
            try:
                timelines[rank] = build_timeline(
                    rank, location, events, converter, callpaths, definitions.regions
                )
            except AnalysisError as exc:
                if not degraded:
                    raise
                # Backstop for damage that decodes as valid records (e.g.
                # corruption stamping bytes that happen to parse) but is
                # structurally inconsistent.
                trace_bytes.pop(rank, None)
                prior = completeness.get(rank)
                completeness[rank] = RankCompleteness(
                    rank=rank,
                    complete=False,
                    completeness=prior.completeness if prior else 0.0,
                    events=prior.events if prior else 0,
                    analyzed=False,
                    error=str(exc),
                )
                warnings.warn(
                    f"rank {rank} excluded from replay: {exc}",
                    PartialTraceWarning,
                    stacklevel=2,
                )

        if not timelines:
            raise AnalysisError("no rank produced a usable trace")

        cube = SeverityCube()
        self._base_metrics(cube, timelines)

        def comm_order(cid: int) -> Optional[Tuple[int, ...]]:
            entry = definitions.communicators.get(cid)
            return entry[1] if entry is not None else None

        matcher = MessageMatcher(
            timelines, comm_lookup=comm_order, allow_unmatched=degraded
        )
        checker = ClockConditionChecker()
        grid_pairs = GridPairBreakdown()
        p2p_patterns = default_p2p_patterns()
        # Hot loop over every matched pair: resolve each rank's node once,
        # bind per-pair callables out of the loop.
        nodes = {rank: node_of(tl.location) for rank, tl in timelines.items()}
        stamp_append = checker.stamps.append
        cube_add = cube.add
        contribution_fns = [p.contributions for p in p2p_patterns]
        for pair in matcher.matched_pairs():
            accumulate_p2p(grid_pairs, pair)
            stamp_append(
                MessageStamp(
                    nodes[pair.sender_rank],
                    nodes[pair.receiver_rank],
                    pair.send.time,
                    pair.recv.time,
                )
            )
            for contributions in contribution_fns:
                for hit in contributions(pair):
                    cube_add(hit.metric, hit.cpid, hit.rank, hit.value)

        coll_patterns = default_collective_patterns()
        for instance in matcher.collective_instances():
            accumulate_collective(grid_pairs, instance)
            for pattern in coll_patterns:
                for hit in pattern.contributions(instance):
                    cube.add(hit.metric, hit.cpid, hit.rank, hit.value)

        # Every analyzer (buffered, streaming, parallel merge) sorts stamps
        # at finalize, so stamp lists compare equal across execution models.
        checker.stamps.sort()

        master_machine = definitions.machine_of(0)
        merged_copy_bytes = sum(
            size
            for rank, size in trace_bytes.items()
            if definitions.machine_of(rank) != master_machine
        )
        traffic = ReplayTraffic(
            replay_metadata_bytes=matcher.stats.metadata_bytes,
            merged_copy_bytes=merged_copy_bytes,
            trace_bytes_total=sum(trace_bytes.values()),
        )

        return AnalysisResult(
            cube=cube,
            callpaths=callpaths,
            definitions=definitions,
            violations=checker,
            traffic=traffic,
            scheme_name=self.scheme.name,
            total_time=total_time_of(timelines),
            timelines=timelines,
            grid_pairs=grid_pairs,
            degraded=degraded,
            completeness=completeness,
        )

    @staticmethod
    def _base_metrics(cube: SeverityCube, timelines: Dict[int, ProcessTimeline]) -> None:
        """Accumulate structural metrics (time, MPI, communication classes)."""
        cube_add = cube.add
        leaf_of: Dict[str, Optional[str]] = {}
        for rank, timeline in timelines.items():
            for cpid, exclusive in timeline.exclusive_time.items():
                cube_add(TIME, cpid, rank, exclusive)
            for op in timeline.mpi_ops:
                duration = op.exit - op.enter
                if duration <= 0.0:
                    continue
                cpid = op.cpid
                cube_add(MPI, cpid, rank, duration)
                name = op.op_name
                try:
                    leaf = leaf_of[name]
                except KeyError:
                    leaf = leaf_of[name] = classify_region(name)
                if leaf == P2P:
                    cube_add(COMMUNICATION, cpid, rank, duration)
                    cube_add(P2P, cpid, rank, duration)
                elif leaf == COLLECTIVE:
                    cube_add(COMMUNICATION, cpid, rank, duration)
                    cube_add(COLLECTIVE, cpid, rank, duration)
                elif leaf == SYNCHRONIZATION:
                    cube_add(SYNCHRONIZATION, cpid, rank, duration)
            for omp in timeline.omp_regions:
                cube_add(IDLE_THREADS, omp.cpid, rank, omp.idle_thread_seconds)


#: Sentinel distinguishing "legacy keyword not passed" from any real value.
_UNSET = object()

#: The keyword sprawl the request object replaced (shimmed one release).
_LEGACY_ANALYZE_KWARGS = ("degraded", "jobs", "max_retries", "timeout")


def resolve_request(
    request: Optional[AnalysisRequest],
    legacy: Dict[str, object],
    caller: str,
) -> AnalysisRequest:
    """Fold a deprecated keyword call into an :class:`AnalysisRequest`.

    Shared by every shimmed entry point (``analyze_run``, ``api.analyze``,
    ``api.run_experiment``): *legacy* holds only the keywords the caller
    actually passed.  Mixing ``request=`` with legacy keywords is an error;
    legacy keywords alone warn and build the equivalent request.
    """
    if legacy:
        if request is not None:
            raise AnalysisError(
                f"{caller}: pass either request= or the deprecated keyword "
                "arguments, not both: " + ", ".join(sorted(legacy))
            )
        warnings.warn(
            f"{caller}: keyword arguments "
            + ", ".join(f"{name}=" for name in sorted(legacy))
            + " are deprecated; pass request=AnalysisRequest(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return AnalysisRequest(**legacy)
    return request if request is not None else AnalysisRequest()


def analyze_run(
    run_result,
    scheme: Optional[SyncScheme] = None,
    request: Optional[AnalysisRequest] = None,
    *,
    pool=None,
    deadline=None,
    degraded=_UNSET,
    jobs=_UNSET,
    timeout=_UNSET,
    max_retries=_UNSET,
) -> AnalysisResult:
    """Analyze a :class:`~repro.sim.runtime.RunResult` end to end.

    *request* (an :class:`~repro.analysis.request.AnalysisRequest`) selects
    everything about the analysis: ``jobs`` picks the execution model
    (``None``/``1`` the serial single-pass streaming replay, ``N >= 2``
    sharded across *N* workers, ``0`` one per core), ``degraded`` survives
    damaged traces, ``timeline`` adds time-resolved severity series,
    ``bounded`` caps serial memory at the matching window.  Every execution
    model produces a bit-identical severity cube.

    ``pool`` lends the analysis an externally owned
    :class:`~repro.resilience.pool.SupervisedPool` (task function
    :func:`~repro.analysis.parallel.analyze_shard`) instead of spawning a
    fresh one — long-lived owners such as the analysis service reuse one
    warm pool across many runs.

    ``deadline`` lends an externally owned
    :class:`~repro.resilience.deadline.Deadline` (the service does this so
    a client cancel reaches the running analysis); when None and the
    request carries ``deadline_s``, a fresh deadline starts here.

    The loose ``degraded=``/``jobs=``/``timeout=``/``max_retries=``
    keywords are deprecated: they warn and are folded into a request.
    """
    # Imported lazily: both modules import this one.
    from repro.analysis.parallel import ParallelReplayAnalyzer, resolve_jobs
    from repro.analysis.streaming import StreamingReplayAnalyzer
    from repro.resilience.deadline import Deadline

    legacy = {
        name: value
        for name, value in (
            ("degraded", degraded),
            ("jobs", jobs),
            ("timeout", timeout),
            ("max_retries", max_retries),
        )
        if value is not _UNSET
    }
    request = resolve_request(request, legacy, "analyze_run")
    if deadline is None and request.deadline_s is not None:
        deadline = Deadline(request.deadline_s)

    readers = {
        machine: run_result.reader(machine) for machine in run_result.machines_used
    }
    timeline = (
        SeverityTimeline(window_s=request.window_s, stride_s=request.stride_s)
        if request.timeline
        else None
    )
    effective = resolve_jobs(request.jobs)
    if effective <= 1:
        return StreamingReplayAnalyzer(
            readers,
            scheme=scheme,
            degraded=request.degraded,
            retain=not request.bounded,
            timeline=timeline,
            deadline=deadline,
        ).analyze()
    return ParallelReplayAnalyzer(
        readers,
        scheme=scheme,
        degraded=request.degraded,
        jobs=effective,
        pool=pool,
        timeout=request.timeout,
        max_retries=request.max_retries,
        timeline=timeline,
        deadline=deadline,
    ).analyze()
