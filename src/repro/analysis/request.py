"""The one way to describe an analysis: :class:`AnalysisRequest`.

``analyze_run``'s keyword surface (``jobs=``/``degraded=``/``timeout=``/
``max_retries=``/``verify_archive=``...) grew past what a flat signature
can carry.  This frozen dataclass replaces the sprawl: the public API, the
CLI, the parallel sharder, and the analysis service all describe an
analysis with one request object.  The old keywords survive one release as
a ``DeprecationWarning`` shim (see :func:`repro.analysis.replay.analyze_run`).

``to_config``/``from_config`` give the request a canonical plain-dict form
(defaults omitted) so the service job store content-addresses identical
requests to identical keys — a request carrying every default serializes
exactly like the empty config that pre-request job specs produced.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

from repro.errors import AnalysisError


@dataclass(frozen=True)
class AnalysisRequest:
    """Everything that selects *how* a run is analyzed.

    Parameters
    ----------
    degraded:
        Survive damaged traces: salvage/exclude instead of raising.
    jobs:
        Execution model: ``None``/``1`` serial, ``N >= 2`` sharded across
        *N* workers, ``0`` one worker per core.
    timeout:
        Per-shard deadline in seconds for the supervised pool (parallel
        runs only).
    max_retries:
        Re-dispatches allowed after a worker crash/hang (parallel only).
    verify_archive:
        Verify archive checksums before analyzing (experiment layer).
    timeline:
        Also accumulate a time-resolved :class:`SeverityTimeline` —
        rolling-window severity series per (metric, call path, rank).
    window_s / stride_s:
        Rolling-window width and bin stride of the timeline, in seconds.
    bounded:
        Bounded-memory streaming: drop per-op retention so memory stays
        O(open window) instead of O(trace).  The severity cube and every
        aggregate are bit-identical either way; only
        ``result.timelines[r].mpi_ops``/``omp_regions`` come back empty
        (so the per-rank Gantt rendering needs ``bounded=False``).
        Serial path only; sharded workers always retain.
    deadline_s:
        End-to-end wall-clock budget for the whole analysis.  Unlike
        ``timeout`` (which bounds one shard attempt), the deadline bounds
        the request: when it expires the analyzer stops cooperatively and
        returns a partial result with honest per-rank completeness and
        ``result.interrupted`` set, instead of raising or hanging.
    """

    degraded: bool = False
    jobs: Optional[int] = None
    timeout: Optional[float] = None
    max_retries: Optional[int] = None
    verify_archive: bool = False
    timeline: bool = False
    window_s: float = 1.0
    stride_s: float = 0.25
    bounded: bool = False
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.jobs is not None and self.jobs < 0:
            raise AnalysisError(f"jobs must be >= 0 or None, got {self.jobs}")
        if self.timeout is not None and self.timeout <= 0:
            raise AnalysisError(f"timeout must be positive, got {self.timeout}")
        if self.max_retries is not None and self.max_retries < 0:
            raise AnalysisError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if not self.window_s > 0:
            raise AnalysisError(f"window_s must be positive, got {self.window_s}")
        if not self.stride_s > 0:
            raise AnalysisError(f"stride_s must be positive, got {self.stride_s}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise AnalysisError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )

    def to_config(self) -> Dict[str, Any]:
        """Canonical plain-dict form with every default omitted.

        Omitting defaults keeps content addresses stable: a request that
        only sets defaults canonicalizes to ``{}``, the same spec config
        that pre-request callers submitted, so existing stored jobs keep
        deduplicating against new submissions.
        """
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_config(cls, config: Dict[str, Any], **overrides: Any) -> "AnalysisRequest":
        """Rebuild a request from :meth:`to_config` output (plus overrides)."""
        known = {f.name for f in fields(cls)}
        unknown = set(config) - known
        if unknown:
            raise AnalysisError(
                f"unknown analysis config keys: {sorted(unknown)}"
            )
        merged = {**config, **overrides}
        return cls(**merged)
