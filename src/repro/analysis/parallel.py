"""Process-parallel sharded replay analysis.

The paper's analyzer is *parallel by construction*: every analysis process
reads only the traces local to its own metahost and the replay exchanges
per-event metadata, never whole trace files.  This module reproduces that
execution model with ``multiprocessing`` workers:

* the world is partitioned into contiguous **shards** of ranks, aligned to
  metahost boundaries where possible (:func:`plan_shards`);
* each worker receives a picklable :class:`ShardTask` — raw trace blobs,
  the definitions document, and the clock converters for its shard — and
  performs the *local* phase: streaming decode, call-path interning,
  timeline construction, and per-communicator matching of messages whose
  two endpoints both live in the shard;
* the worker returns a picklable :class:`PartialAnalysis`; sends and
  receives crossing a shard boundary come back as per-channel metadata
  streams (the paper's "only per-event metadata is exchanged");
* a deterministic merge (:func:`merge_partials`) resolves the boundary
  channels, renumbers shard-local call paths into one registry, and
  replays every severity contribution **in the serial analyzer's exact
  accumulation order**, so the merged :class:`AnalysisResult` is
  bit-for-bit identical to :class:`~repro.analysis.replay.ReplayAnalyzer`'s
  — including float summation order inside the severity cube.

``jobs=1`` callers never reach this module; ``analyze_run(..., jobs=N)``
dispatches here for ``N != 1``.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, replace as _replace
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.analysis.callpath import ROOT_PATH, CallPathRegistry
from repro.analysis.instances import (
    ProcessTimeline,
    build_timeline,
    remap_timeline,
    total_time_of,
)
from repro.analysis.matching import (
    PAIR_METADATA_BYTES,
    MatchedPair,
    MessageMatcher,
)
from repro.analysis.patterns import default_collective_patterns, default_p2p_patterns
from repro.analysis.patterns.grid import (
    GridPairBreakdown,
    accumulate_collective,
    accumulate_p2p,
)
from repro.analysis.replay import (
    AnalysisResult,
    RankCompleteness,
    ReplayAnalyzer,
    ReplayTraffic,
)
from repro.analysis.severity import SeverityCube
from repro.analysis.severity_timeline import (
    SeverityTimeline,
    record_base_metrics,
    record_collective_hits,
    record_p2p_hits,
)
from repro.clocks.condition import ClockConditionChecker, MessageStamp
from repro.clocks.sync import HierarchicalInterpolation, LinearConverter, SyncScheme
from repro.errors import (
    AnalysisError,
    ArchiveError,
    PartialTraceWarning,
    TimeBudgetExceeded,
)
from repro.ids import NodeId, node_of
from repro.resilience.deadline import Deadline
from repro.resilience.pool import PoolConfig, SupervisedPool
from repro.trace.archive import (
    ArchiveReader,
    Definitions,
    TraceShard,
    salvage_checked,
    trace_filename,
)
from repro.trace.encoding import iter_events

#: A point-to-point channel: (sender rank, receiver rank, tag, communicator).
ChannelKey = Tuple[int, int, int, int]
#: Position of one SEND/RECV record: (index into mpi_ops, index within op).
RecordRef = Tuple[int, int]
#: One matched pair as positions into the merged timelines:
#: (receiver rank, recv op index, recv index, sender rank, send op index,
#: send index).  The first three fields are the serial yield-order key.
PairRef = Tuple[int, int, int, int, int, int]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` argument: None/1 → 1, 0 → all cores, N → N."""
    if jobs is None:
        return 1
    if jobs == 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise AnalysisError(f"jobs must be >= 0 or None, got {jobs}")
    return jobs


def plan_shards(
    ranks: Sequence[int], machine_of: Dict[int, int], jobs: int
) -> List[Tuple[int, ...]]:
    """Partition *ranks* (ascending) into ≤ *jobs* contiguous shards.

    Shards are contiguous slices of the ascending rank list — the property
    the deterministic call-path merge relies on — with interior cuts
    snapped to metahost boundaries when one is nearby, so a shard usually
    only needs trace files from a single metahost (the paper's locality
    constraint).
    """
    ordered = sorted(ranks)
    n = len(ordered)
    if jobs < 1:
        raise AnalysisError(f"shard count must be >= 1, got {jobs}")
    jobs = min(jobs, n)
    if jobs <= 1:
        return [tuple(ordered)] if ordered else []
    boundaries = [
        i
        for i in range(1, n)
        if machine_of.get(ordered[i]) != machine_of.get(ordered[i - 1])
    ]
    tolerance = max(1, n // (2 * jobs))
    cuts = [0]
    for k in range(1, jobs):
        ideal = round(k * n / jobs)
        snapped = ideal
        best = tolerance + 1
        for b in boundaries:
            if abs(b - ideal) < best and b > cuts[-1]:
                snapped, best = b, abs(b - ideal)
        if snapped <= cuts[-1]:
            snapped = ideal
        if snapped <= cuts[-1] or snapped >= n:
            continue
        cuts.append(snapped)
    cuts.append(n)
    return [tuple(ordered[a:b]) for a, b in zip(cuts, cuts[1:]) if a < b]


@dataclass
class ShardTask:
    """Everything one worker needs, picklable under fork *and* spawn."""

    index: int
    ranks: Tuple[int, ...]
    degraded: bool
    definitions: Definitions
    #: node → affine clock converter (None only in degraded mode).
    converters: Dict[NodeId, Optional[LinearConverter]]
    traces: TraceShard


@dataclass
class PartialAnalysis:
    """One shard's local analysis: picklable, mergeable."""

    index: int
    ranks: Tuple[int, ...]
    callpaths: CallPathRegistry = field(default_factory=CallPathRegistry)
    #: rank → timeline with *shard-local* call-path ids.
    timelines: Dict[int, ProcessTimeline] = field(default_factory=dict)
    trace_bytes: Dict[int, int] = field(default_factory=dict)
    completeness: Dict[int, RankCompleteness] = field(default_factory=dict)
    #: Warnings raised in the worker, re-emitted by the parent in order.
    warnings: List[Tuple[Type[Warning], str]] = field(default_factory=list)
    #: Pairs whose endpoints both live in this shard.
    local_pairs: List[PairRef] = field(default_factory=list)
    #: Cross-shard SEND metadata, per channel, in sender trace order.
    boundary_sends: Dict[ChannelKey, List[RecordRef]] = field(default_factory=dict)
    #: Cross-shard RECV metadata, per channel, in receiver trace order.
    boundary_recvs: Dict[ChannelKey, List[RecordRef]] = field(default_factory=dict)
    #: Unmatched receives on shard-local channels (degraded mode only).
    unmatched_recvs: int = 0
    #: Sends left in shard-local channels after matching.
    unmatched_sends: int = 0


def _load_rank_degraded(
    task: ShardTask, rank: int, partial: PartialAnalysis
) -> Optional[Tuple[int, list]]:
    """Worker-side mirror of :meth:`ReplayAnalyzer._load_degraded`."""

    def exclude(reason: str, fraction: float = 0.0, events: int = 0) -> None:
        partial.completeness[rank] = RankCompleteness(
            rank=rank,
            complete=False,
            completeness=fraction,
            events=events,
            analyzed=False,
            error=reason,
        )
        warnings.warn(
            f"rank {rank} excluded from replay: {reason}", PartialTraceWarning,
            stacklevel=3,
        )

    reason = task.traces.missing.get(rank)
    if reason is not None:
        exclude(reason)
        return None
    blob = task.traces.blobs[rank]
    salvaged = salvage_checked(blob, task.traces.manifests.get(rank))
    if salvaged.rank is not None and salvaged.rank != rank:
        exclude(f"trace file claims rank {salvaged.rank}")
        return None
    if not salvaged.complete:
        exclude(
            salvaged.error,
            fraction=salvaged.completeness,
            events=len(salvaged.events),
        )
        return None
    if not salvaged.balanced:
        exclude(
            f"trace decodes but leaves {salvaged.open_regions} region(s) "
            "open (truncated at a record boundary?)",
            fraction=salvaged.completeness,
            events=len(salvaged.events),
        )
        return None
    partial.completeness[rank] = RankCompleteness(
        rank=rank,
        complete=True,
        completeness=1.0,
        events=len(salvaged.events),
        analyzed=True,
    )
    return len(blob), salvaged.events


def analyze_shard(task: ShardTask) -> PartialAnalysis:
    """The worker: local decode, timelines, and shard-local matching.

    Runs in a subprocess; every warning is captured and carried back in the
    :class:`PartialAnalysis` so the parent can re-emit it (subprocess
    warnings are invisible to the caller's ``warnings`` machinery).
    """
    partial = PartialAnalysis(index=task.index, ranks=task.ranks)
    definitions = task.definitions
    degraded = task.degraded
    callpaths = partial.callpaths
    timelines = partial.timelines

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for rank in task.ranks:
            location = definitions.locations[rank]
            if degraded:
                loaded = _load_rank_degraded(task, rank, partial)
                if loaded is None:
                    continue
                partial.trace_bytes[rank], events = loaded
            else:
                blob = task.traces.blobs[rank]
                file_rank, events = iter_events(blob)
                if file_rank != rank:
                    raise ArchiveError(
                        f"trace file {trace_filename(rank)} claims rank {file_rank}"
                    )
                partial.trace_bytes[rank] = len(blob)
            converter = task.converters.get(node_of(location))
            if converter is None:
                if not degraded:
                    raise AnalysisError(
                        f"no clock converter for node {node_of(location)}"
                    )
                warnings.warn(
                    f"rank {rank}: no clock converter for {node_of(location)}, "
                    "using local time unconverted",
                    PartialTraceWarning,
                    stacklevel=1,
                )
                converter = LinearConverter.identity()
            try:
                timelines[rank] = build_timeline(
                    rank, location, events, converter, callpaths, definitions.regions
                )
            except AnalysisError as exc:
                if not degraded:
                    raise
                partial.trace_bytes.pop(rank, None)
                prior = partial.completeness.get(rank)
                partial.completeness[rank] = RankCompleteness(
                    rank=rank,
                    complete=False,
                    completeness=prior.completeness if prior else 0.0,
                    events=prior.events if prior else 0,
                    analyzed=False,
                    error=str(exc),
                )
                warnings.warn(
                    f"rank {rank} excluded from replay: {exc}",
                    PartialTraceWarning,
                    stacklevel=1,
                )
        _match_local(task, partial)
    partial.warnings = [(w.category, str(w.message)) for w in caught]
    return partial


def _match_local(task: ShardTask, partial: PartialAnalysis) -> None:
    """Shard-local FIFO matching; cross-shard records become boundary streams."""
    in_shard = set(task.ranks)
    timelines = partial.timelines
    degraded = task.degraded
    queues: Dict[ChannelKey, List[RecordRef]] = {}
    heads: Dict[ChannelKey, int] = {}
    boundary_sends = partial.boundary_sends
    for rank in sorted(timelines):
        for op_idx, op in enumerate(timelines[rank].mpi_ops):
            for send_idx, send in enumerate(op.sends):
                key = (rank, send.dest, send.tag, send.comm)
                target = queues if send.dest in in_shard else boundary_sends
                target.setdefault(key, []).append((op_idx, send_idx))

    local_pairs = partial.local_pairs
    boundary_recvs = partial.boundary_recvs
    for rank in sorted(timelines):
        for op_idx, op in enumerate(timelines[rank].mpi_ops):
            for recv_idx, recv in enumerate(op.recvs):
                source = recv.source
                key = (source, rank, recv.tag, recv.comm)
                if source not in in_shard:
                    boundary_recvs.setdefault(key, []).append((op_idx, recv_idx))
                    continue
                queue = queues.get(key)
                head = heads.get(key, 0)
                if queue is None or head >= len(queue):
                    partial.unmatched_recvs += 1
                    if degraded:
                        continue
                    raise AnalysisError(
                        f"rank {rank}: RECV from {source} "
                        f"(tag {recv.tag}, comm {recv.comm}) has no matching SEND"
                    )
                heads[key] = head + 1
                s_op_idx, s_send_idx = queue[head]
                local_pairs.append(
                    (rank, op_idx, recv_idx, source, s_op_idx, s_send_idx)
                )
    partial.unmatched_sends = sum(
        len(queue) - heads.get(key, 0) for key, queue in queues.items()
    )


def _first_unmatched(
    recvs: List[RecordRef], matched: int, key: ChannelKey
) -> Tuple[int, int, int, ChannelKey]:
    """Sort key of the first unmatched receive on one boundary channel."""
    op_idx, recv_idx = recvs[matched]
    return (key[1], op_idx, recv_idx, key)


def merge_partials(
    partials: List[PartialAnalysis],
    definitions: Definitions,
    scheme_name: str,
    degraded: bool,
    timeline: Optional[SeverityTimeline] = None,
) -> AnalysisResult:
    """Deterministically combine shard results into one analysis.

    Reproduces the serial analyzer exactly: call paths are renumbered in
    first-encounter-by-rank order, boundary channels are FIFO-matched, and
    every severity contribution is applied in the serial iteration order
    (receiver rank, op, receive) so float accumulation — and therefore the
    rendered output — is bit-identical to ``jobs=1``.

    *timeline*, when given, additionally accumulates the time-resolved
    severity series here in the merge (the only place the full matched
    pairs and collective instances exist again); call-path ids are already
    global at this point, so no remap is needed.
    """
    partials = sorted(partials, key=lambda p: p.index)
    for partial in partials:
        for category, message in partial.warnings:
            warnings.warn(message, category, stacklevel=2)

    # Call-path renumbering.  Shards are contiguous ascending rank slices,
    # so interning each shard's paths in local-creation order reproduces the
    # serial registry's first-encounter order exactly.
    callpaths = CallPathRegistry()
    timelines: Dict[int, ProcessTimeline] = {}
    trace_bytes: Dict[int, int] = {}
    completeness: Dict[int, RankCompleteness] = {}
    for partial in partials:
        remap = {ROOT_PATH: ROOT_PATH}
        for path in partial.callpaths.all_paths():
            remap[path.cpid] = callpaths.intern(remap[path.parent], path.region)
        for rank in sorted(partial.timelines):
            shard_timeline = partial.timelines[rank]
            remap_timeline(shard_timeline, remap)
            timelines[rank] = shard_timeline
        trace_bytes.update(sorted(partial.trace_bytes.items()))
        completeness.update(sorted(partial.completeness.items()))

    if not timelines:
        raise AnalysisError("no rank produced a usable trace")

    cube = SeverityCube()
    ReplayAnalyzer._base_metrics(cube, timelines)
    if timeline is not None:
        record_base_metrics(timeline, timelines)

    # Boundary exchange: FIFO-match the cross-shard channels.
    boundary_sends: Dict[ChannelKey, List[RecordRef]] = {}
    boundary_recvs: Dict[ChannelKey, List[RecordRef]] = {}
    for partial in partials:
        boundary_sends.update(partial.boundary_sends)
        boundary_recvs.update(partial.boundary_recvs)
    pairs: List[PairRef] = []
    unmatched_recvs = sum(p.unmatched_recvs for p in partials)
    unmatched_sends = sum(p.unmatched_sends for p in partials)
    starved: List[Tuple[int, int, int, ChannelKey]] = []
    for key, recvs in boundary_recvs.items():
        sender, receiver = key[0], key[1]
        sends = boundary_sends.get(key, [])
        matched = min(len(sends), len(recvs))
        for (r_op, r_recv), (s_op, s_send) in zip(recvs, sends):
            pairs.append((receiver, r_op, r_recv, sender, s_op, s_send))
        if len(recvs) > matched:
            unmatched_recvs += len(recvs) - matched
            starved.append(_first_unmatched(recvs, matched, key))
    if starved and not degraded:
        # Serial raises at the first unmatched receive in replay order.
        _rank, _op, _recv, key = min(starved)
        raise AnalysisError(
            f"rank {key[1]}: RECV from {key[0]} "
            f"(tag {key[2]}, comm {key[3]}) has no matching SEND"
        )
    for key, sends in boundary_sends.items():
        consumed = min(len(sends), len(boundary_recvs.get(key, ())))
        unmatched_sends += len(sends) - consumed
    for partial in partials:
        pairs.extend(partial.local_pairs)
    pairs.sort()

    # Severity replay in exact serial order.
    checker = ClockConditionChecker()
    grid_pairs = GridPairBreakdown()
    p2p_patterns = default_p2p_patterns()
    nodes = {rank: node_of(tl.location) for rank, tl in timelines.items()}
    stamp_append = checker.stamps.append
    cube_add = cube.add
    contribution_fns = [p.contributions for p in p2p_patterns]
    for receiver, r_op_idx, recv_idx, sender, s_op_idx, send_idx in pairs:
        recv_op = timelines[receiver].mpi_ops[r_op_idx]
        send_op = timelines[sender].mpi_ops[s_op_idx]
        pair = MatchedPair(
            sender,
            timelines[sender].location,
            send_op,
            send_op.sends[send_idx],
            receiver,
            timelines[receiver].location,
            recv_op,
            recv_op.recvs[recv_idx],
        )
        accumulate_p2p(grid_pairs, pair)
        stamp_append(
            MessageStamp(
                nodes[pair.sender_rank],
                nodes[pair.receiver_rank],
                pair.send.time,
                pair.recv.time,
            )
        )
        for contributions in contribution_fns:
            hits = contributions(pair)
            if timeline is not None:
                record_p2p_hits(timeline, pair, hits)
            for hit in hits:
                cube_add(hit.metric, hit.cpid, hit.rank, hit.value)

    # Collectives span shards by nature; group them over the merged
    # timelines exactly as the serial matcher does.
    def comm_order(cid: int) -> Optional[Tuple[int, ...]]:
        entry = definitions.communicators.get(cid)
        return entry[1] if entry is not None else None

    matcher = MessageMatcher(
        timelines, comm_lookup=comm_order, allow_unmatched=degraded
    )
    coll_patterns = default_collective_patterns()
    for instance in matcher.collective_instances():
        accumulate_collective(grid_pairs, instance)
        for pattern in coll_patterns:
            hits = pattern.contributions(instance)
            if timeline is not None:
                record_collective_hits(timeline, instance, hits)
            for hit in hits:
                cube.add(hit.metric, hit.cpid, hit.rank, hit.value)
    matcher.stats.matched = len(pairs)
    matcher.stats.unmatched_recvs = unmatched_recvs
    matcher.stats.unmatched_sends = unmatched_sends
    matcher.stats.metadata_bytes += len(pairs) * PAIR_METADATA_BYTES

    # Every analyzer (buffered, streaming, parallel merge) sorts stamps
    # at finalize, so stamp lists compare equal across execution models.
    checker.stamps.sort()

    master_machine = definitions.machine_of(0)
    merged_copy_bytes = sum(
        size
        for rank, size in trace_bytes.items()
        if definitions.machine_of(rank) != master_machine
    )
    traffic = ReplayTraffic(
        replay_metadata_bytes=matcher.stats.metadata_bytes,
        merged_copy_bytes=merged_copy_bytes,
        trace_bytes_total=sum(trace_bytes.values()),
    )

    return AnalysisResult(
        cube=cube,
        callpaths=callpaths,
        definitions=definitions,
        violations=checker,
        traffic=traffic,
        scheme_name=scheme_name,
        total_time=total_time_of(timelines),
        timelines=timelines,
        grid_pairs=grid_pairs,
        degraded=degraded,
        completeness=completeness,
        severity_timeline=timeline,
    )


class ParallelReplayAnalyzer:
    """Drives one sharded analysis over per-metahost archive readers.

    Mirrors :class:`~repro.analysis.replay.ReplayAnalyzer`'s constructor
    contract (readers keyed by machine, optional scheme, degraded flag)
    plus ``jobs``; ``analyze()`` returns a result bit-identical to the
    serial analyzer's.
    """

    def __init__(
        self,
        readers: Dict[int, ArchiveReader],
        scheme: Optional[SyncScheme] = None,
        degraded: bool = False,
        jobs: int = 2,
        pool_config: Optional[PoolConfig] = None,
        pool: Optional[SupervisedPool] = None,
        timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        timeline: Optional[SeverityTimeline] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        if not readers:
            raise AnalysisError("no archive readers supplied")
        if jobs < 1:
            raise AnalysisError(f"jobs must be >= 1, got {jobs}")
        self.readers = dict(readers)
        self.degraded = degraded
        if scheme is None:
            scheme = HierarchicalInterpolation(strict=not degraded)
        self.scheme = scheme
        self.jobs = jobs
        # ``pool`` is an externally owned (usually persistent) worker pool
        # shared across many analyses — the serving-layer configuration.
        # Its task function must be :func:`analyze_shard`.  ``timeout`` and
        # ``max_retries`` then travel as per-run overrides; without a shared
        # pool they are folded into this analyzer's own pool config.
        self.pool = pool
        self.timeout = timeout
        self.max_retries = max_retries
        # End-to-end budget: per-shard pool budgets derive from what is
        # left of it, and an expiry mid-run merges the settled shards into
        # a degraded-style partial result instead of raising.
        self.deadline = deadline
        # Filled by the merge (where the matched pairs exist again).
        self.timeline = timeline
        config = pool_config or PoolConfig()
        if pool is None:
            if timeout is not None:
                config = _replace(config, timeout_s=float(timeout))
            if max_retries is not None:
                config = _replace(config, max_retries=int(max_retries))
        self.pool_config = config

    # -- task construction -----------------------------------------------------

    def _precheck(
        self,
        definitions: Definitions,
        converters: Dict[NodeId, Optional[LinearConverter]],
    ) -> None:
        """Strict-mode per-rank checks, in the serial analyzer's exact order.

        Runs in the parent so a broken experiment fails with the very same
        error — same rank, same message — as ``jobs=1``, before any worker
        is spawned.
        """
        for rank in sorted(definitions.locations):
            location = definitions.locations[rank]
            reader = self.readers.get(location.machine)
            if reader is None:
                raise AnalysisError(
                    f"no archive reader for machine {location.machine} "
                    f"(rank {rank} lives there)"
                )
            if not reader.has_trace(rank):
                raise AnalysisError(
                    f"rank {rank}'s trace is not visible on its own metahost "
                    f"({trace_filename(rank)} missing)"
                )
            if converters.get(node_of(location)) is None:
                raise AnalysisError(
                    f"no clock converter for node {node_of(location)}"
                )

    def _shard_task(
        self,
        index: int,
        ranks: Tuple[int, ...],
        definitions: Definitions,
        converters: Dict[NodeId, Optional[LinearConverter]],
    ) -> ShardTask:
        """Collect one shard's blobs through its ranks' own metahost readers."""
        shard = TraceShard(ranks=ranks)
        by_machine: Dict[int, List[int]] = {}
        for rank in ranks:
            by_machine.setdefault(definitions.machine_of(rank), []).append(rank)
        for machine in sorted(by_machine):
            machine_ranks = by_machine[machine]
            reader = self.readers.get(machine)
            if reader is None:
                for rank in machine_ranks:
                    shard.missing[rank] = "no archive reader for its metahost"
                continue
            snapshot = reader.shard_snapshot(machine_ranks)
            shard.blobs.update(snapshot.blobs)
            shard.missing.update(snapshot.missing)
            shard.manifests.update(snapshot.manifests)
        shard_converters = {
            node: converters.get(node)
            for node in sorted({node_of(definitions.locations[rank]) for rank in ranks})
        }
        return ShardTask(
            index=index,
            ranks=ranks,
            degraded=self.degraded,
            definitions=definitions,
            converters=shard_converters,
            traces=shard,
        )

    # -- execution -------------------------------------------------------------

    def analyze(self) -> AnalysisResult:
        first_reader = next(iter(self.readers.values()))
        definitions = first_reader.definitions()
        sync_data = first_reader.sync_data()
        synchronized = self.scheme.convert_all(sync_data)
        if not self.degraded:
            self._precheck(definitions, synchronized.converters)

        ranks = sorted(definitions.locations)
        machine_of = {rank: loc.machine for rank, loc in definitions.locations.items()}
        shards = plan_shards(ranks, machine_of, self.jobs)
        tasks = [
            self._shard_task(index, shard, definitions, synchronized.converters)
            for index, shard in enumerate(shards)
        ]

        interrupted: Optional[str] = None
        execution = None
        if len(tasks) <= 1:
            partials = []
            for task in tasks:
                if self.deadline is not None:
                    interrupted = self.deadline.reason()
                    if interrupted is not None:
                        break
                partials.append(analyze_shard(task))
        elif self.pool is not None:
            # A shared (warm, externally owned) pool: the owner controls
            # worker count and lifetime; this run only overrides budgets.
            try:
                partials, execution = self.pool.run(
                    tasks,
                    timeout_s=self.timeout,
                    max_retries=self.max_retries,
                    deadline=self.deadline,
                )
            except TimeBudgetExceeded as exc:
                interrupted = exc.reason
                partials = [exc.results[i] for i in sorted(exc.results)]
                execution = exc.report
        else:
            # The supervised pool keeps the serial analyzer's semantics —
            # results in shard order, the lowest-ranked shard's exception
            # wins — while surviving worker crashes, hangs, and kills that
            # would deadlock a bare Pool.map forever.
            pool = SupervisedPool(
                analyze_shard,
                self.pool_config.with_workers(min(self.jobs, len(tasks))),
            )
            try:
                partials, execution = pool.run(tasks, deadline=self.deadline)
            except TimeBudgetExceeded as exc:
                interrupted = exc.reason
                partials = [exc.results[i] for i in sorted(exc.results)]
                execution = exc.report

        if interrupted is not None and not partials:
            # Nothing settled before the budget ran out: there is no
            # partial result to salvage, so the budget error stands.
            raise TimeBudgetExceeded(interrupted, report=execution)

        # An interrupted merge is degraded-style by construction: shards
        # that never settled look exactly like excluded ranks (boundary
        # receives must void, collectives tolerate missing members).
        result = merge_partials(
            partials,
            definitions,
            self.scheme.name,
            self.degraded or interrupted is not None,
            timeline=self.timeline,
        )
        if interrupted is not None:
            settled = {rank for partial in partials for rank in partial.ranks}
            for rank in ranks:
                if rank not in settled:
                    result.completeness[rank] = RankCompleteness(
                        rank=rank,
                        complete=False,
                        completeness=0.0,
                        events=0,
                        analyzed=False,
                        error=(
                            f"TimeBudgetExceeded: {interrupted} before its "
                            "shard finished"
                        ),
                    )
            result.interrupted = interrupted
        result.execution = execution
        return result
