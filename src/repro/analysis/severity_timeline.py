"""Time-resolved severity: rolling-window series over the run.

The severity cube aggregates wait-state cost over the whole run, which is
exactly what hides a transient WAN congestion episode — a few seconds of
Late Sender waiting disappears into a run-long total.  This module keeps
the *when*: every pattern hit (and every MPI base-class second) is spread
over the charged operation's ``[enter, exit]`` interval into fixed-stride
bins, and queries read the bins back as rolling-window series per
(metric, call path, rank).

Timelines are **diagnostic, not part of the bit-identity contract**: bins
are plain float sums (accumulation-order dependent in the last ulp), never
rendered into golden-compared report text, and excluded from
``AnalysisResult`` equality.  The exact order-free machinery stays in
:mod:`repro.analysis.severity` where bit-identity is promised.
"""

from __future__ import annotations

from math import floor
from typing import Any, Dict, List, Optional, Tuple

#: Bin key: (call-path id, rank).
CellKey = Tuple[int, int]


class SeverityTimeline:
    """Sparse binned severity: ``metric → (cpid, rank) → bin index → seconds``.

    Bins are ``stride_s`` wide, anchored at synchronized (master) time 0;
    an interval contribution is distributed over the bins it overlaps in
    proportion to the overlap.  ``series`` sums each bin with its
    ``window_s / stride_s - 1`` predecessors, so a window's value is the
    severity charged to any instant inside it.
    """

    def __init__(self, window_s: float = 1.0, stride_s: float = 0.25) -> None:
        if not window_s > 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if not stride_s > 0:
            raise ValueError(f"stride_s must be positive, got {stride_s}")
        self.window_s = window_s
        self.stride_s = stride_s
        self._bins: Dict[str, Dict[CellKey, Dict[int, float]]] = {}

    @property
    def window_bins(self) -> int:
        """Number of strides a rolling window spans (≥ 1)."""
        return max(1, round(self.window_s / self.stride_s))

    def add(
        self,
        metric: str,
        cpid: int,
        rank: int,
        start: float,
        end: float,
        value: float,
    ) -> None:
        """Charge *value* seconds to ``[start, end]``, overlap-weighted.

        A degenerate interval (``end <= start``) charges its single bin.
        """
        if value <= 0.0:
            return
        stride = self.stride_s
        cell = self._bins.setdefault(metric, {}).setdefault((cpid, rank), {})
        lo = floor(start / stride)
        if end <= start:
            cell[lo] = cell.get(lo, 0.0) + value
            return
        hi = floor(end / stride)
        if hi == lo:
            cell[lo] = cell.get(lo, 0.0) + value
            return
        span = end - start
        for b in range(lo, hi + 1):
            overlap = min(end, (b + 1) * stride) - max(start, b * stride)
            if overlap > 0.0:
                cell[b] = cell.get(b, 0.0) + value * overlap / span


    # -- queries ---------------------------------------------------------------

    def metrics(self) -> List[str]:
        return sorted(self._bins)

    def bins(
        self,
        metric: str,
        cpid: Optional[int] = None,
        rank: Optional[int] = None,
    ) -> Dict[int, float]:
        """Aggregated per-stride bins of one metric, optionally filtered."""
        out: Dict[int, float] = {}
        for (cell_cpid, cell_rank), cell in self._bins.get(metric, {}).items():
            if cpid is not None and cell_cpid != cpid:
                continue
            if rank is not None and cell_rank != rank:
                continue
            for b, value in cell.items():
                out[b] = out.get(b, 0.0) + value
        return out

    def series(
        self,
        metric: str,
        cpid: Optional[int] = None,
        rank: Optional[int] = None,
    ) -> List[Tuple[float, float]]:
        """Rolling-window series ``[(window start seconds, seconds), ...]``.

        One entry per stride from the first to the last populated bin;
        entry *i*'s value sums the window ending at that stride.
        """
        bins = self.bins(metric, cpid=cpid, rank=rank)
        if not bins:
            return []
        w = self.window_bins
        first, last = min(bins), max(bins)
        out: List[Tuple[float, float]] = []
        for i in range(first, last + 1):
            total = 0.0
            for j in range(i - w + 1, i + 1):
                total += bins.get(j, 0.0)
            out.append((i * self.stride_s, total))
        return out

    def peak_window(self, metric: str) -> Tuple[float, float]:
        """``(window start seconds, seconds)`` of the worst rolling window.

        This is the episode localizer: the window where the metric's
        severity concentrates (e.g. a transient WAN congestion burst).
        Returns ``(0.0, 0.0)`` when the metric has no contributions.
        """
        series = self.series(metric)
        if not series:
            return (0.0, 0.0)
        return max(series, key=lambda entry: entry[1])

    def ranks(self, metric: str) -> List[int]:
        return sorted({rank for _, rank in self._bins.get(metric, {})})

    # -- finalization ----------------------------------------------------------

    def remap_callpaths(self, mapping: Dict[int, Dict[int, int]]) -> None:
        """Rewrite per-rank local call-path ids to global ones, in place.

        *mapping* is ``rank → local cpid → global cpid`` (the streaming
        finalizer's renumbering).  Bins are plain floats, so colliding
        cells merge additively.
        """
        for metric, cells in self._bins.items():
            remapped: Dict[CellKey, Dict[int, float]] = {}
            for (cpid, rank), cell in cells.items():
                new_key = (mapping[rank][cpid], rank)
                existing = remapped.get(new_key)
                if existing is None:
                    remapped[new_key] = cell
                else:
                    for b, value in cell.items():
                        existing[b] = existing.get(b, 0.0) + value
            self._bins[metric] = remapped

    # -- service payload -------------------------------------------------------

    def to_payload(self, metric: Optional[str] = None) -> Dict[str, Any]:
        """JSON-safe form served by ``/jobs/<key>/severity/timeline``."""
        names = [metric] if metric is not None else self.metrics()
        metrics: Dict[str, Any] = {}
        for name in names:
            series = self.series(name)
            if not series and metric is None:
                continue
            peak = self.peak_window(name)
            metrics[name] = {
                "series": [[t, v] for t, v in series],
                "peak": [peak[0], peak[1]],
                "ranks": self.ranks(name),
                "by_rank": {
                    str(r): [[t, v] for t, v in self.series(name, rank=r)]
                    for r in self.ranks(name)
                },
            }
        return {
            "window_s": self.window_s,
            "stride_s": self.stride_s,
            "metrics": metrics,
        }


def record_p2p_hits(
    timeline: SeverityTimeline, pair, hits
) -> None:
    """Charge point-to-point pattern hits to the waiting op's interval.

    Used identically by the streaming pipeline and the parallel merge: a
    hit charged to the receiver spreads over the receive op, one charged
    to the sender over the send op.
    """
    for hit in hits:
        op = pair.recv_op if hit.rank == pair.receiver_rank else pair.send_op
        timeline.add(hit.metric, hit.cpid, hit.rank, op.enter, op.exit, hit.value)


def record_collective_hits(timeline: SeverityTimeline, instance, hits) -> None:
    """Charge collective pattern hits to each member's own op interval."""
    for hit in hits:
        op = instance.members[hit.rank][0]
        timeline.add(hit.metric, hit.cpid, hit.rank, op.enter, op.exit, hit.value)


def record_base_metrics(timeline: SeverityTimeline, timelines: Dict[int, Any]) -> None:
    """Charge the structural metrics over their op intervals, post-merge.

    The merge-side counterpart of the streaming pipeline's per-op sink:
    MPI time (and its communication-class refinements) spreads over each
    op's ``[enter, exit]``, idle threads over each fork-join region.  Used
    by :func:`repro.analysis.parallel.merge_partials`, where the timelines
    already carry global call-path ids.
    """
    from repro.analysis.patterns.base import (
        COLLECTIVE,
        COMMUNICATION,
        IDLE_THREADS,
        MPI,
        P2P,
        SYNCHRONIZATION,
        classify_region,
    )

    leaf_of: Dict[str, Optional[str]] = {}
    for rank, process in timelines.items():
        for op in process.mpi_ops:
            duration = op.exit - op.enter
            if duration <= 0.0:
                continue
            name = op.op_name
            try:
                leaf = leaf_of[name]
            except KeyError:
                leaf = leaf_of[name] = classify_region(name)
            metrics = [MPI]
            if leaf == P2P:
                metrics += [COMMUNICATION, P2P]
            elif leaf == COLLECTIVE:
                metrics += [COMMUNICATION, COLLECTIVE]
            elif leaf == SYNCHRONIZATION:
                metrics.append(SYNCHRONIZATION)
            for metric in metrics:
                timeline.add(metric, op.cpid, rank, op.enter, op.exit, duration)
        for omp in process.omp_regions:
            timeline.add(
                IDLE_THREADS, omp.cpid, rank, omp.enter, omp.exit,
                omp.idle_thread_seconds,
            )
