"""Trace statistics: the summaries graphical trace browsers provide.

The paper motivates automatic pattern search as going *beyond* "statistical
summaries" offered by browsers like VAMPIR and Paraver (Section 3) — but a
usable tool still needs those summaries.  This module computes them from
the analyzer's per-rank timelines:

* a **communication matrix** (bytes and message counts per sender/receiver
  pair, with an internal/external split),
* a **message-size histogram** (power-of-two bins),
* a **region profile** (visits, total/average time per source region),
* per-rank MPI-time fractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.instances import ProcessTimeline
from repro.errors import AnalysisError
from repro.trace.regions import RegionRegistry


@dataclass
class CommMatrix:
    """Point-to-point traffic per (sender rank, receiver rank)."""

    bytes_sent: Dict[Tuple[int, int], int] = field(default_factory=dict)
    messages: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: Totals split by whether the endpoints share a metahost.
    internal_bytes: int = 0
    external_bytes: int = 0

    def add(self, src: int, dst: int, size: int, crosses_metahosts: bool) -> None:
        key = (src, dst)
        self.bytes_sent[key] = self.bytes_sent.get(key, 0) + size
        self.messages[key] = self.messages.get(key, 0) + 1
        if crosses_metahosts:
            self.external_bytes += size
        else:
            self.internal_bytes += size

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_sent.values())

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    def heaviest_pairs(self, n: int = 5) -> List[Tuple[Tuple[int, int], int]]:
        ranked = sorted(self.bytes_sent.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:n]

    def partners_of(self, rank: int) -> List[int]:
        """Ranks this rank exchanged messages with (either direction)."""
        out = set()
        for src, dst in self.messages:
            if src == rank:
                out.add(dst)
            elif dst == rank:
                out.add(src)
        return sorted(out)


@dataclass
class SizeHistogram:
    """Message sizes in power-of-two bins; bin k covers [2^k, 2^(k+1))."""

    bins: Dict[int, int] = field(default_factory=dict)

    def add(self, size: int) -> None:
        if size < 0:
            raise AnalysisError(f"negative message size {size}")
        bin_index = size.bit_length() - 1 if size > 0 else 0
        self.bins[bin_index] = self.bins.get(bin_index, 0) + 1

    @property
    def count(self) -> int:
        return sum(self.bins.values())

    def bin_label(self, bin_index: int) -> str:
        low = 0 if bin_index == 0 else 2**bin_index
        high = 2 ** (bin_index + 1) - 1
        return f"{low}..{high} B"

    def rows(self) -> List[Tuple[str, int]]:
        return [(self.bin_label(k), self.bins[k]) for k in sorted(self.bins)]


@dataclass
class RegionStats:
    name: str
    visits: int = 0
    exclusive_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.exclusive_s / self.visits if self.visits else 0.0


@dataclass
class TraceStatistics:
    """All summary statistics of one analyzed run."""

    comm: CommMatrix
    sizes: SizeHistogram
    regions: Dict[str, RegionStats]
    mpi_fraction_of_rank: Dict[int, float]

    def region_profile(self, top: int = 10) -> List[RegionStats]:
        """Regions ranked by exclusive time (the classic flat profile)."""
        ranked = sorted(
            self.regions.values(), key=lambda r: r.exclusive_s, reverse=True
        )
        return ranked[:top]


def compute_statistics(
    timelines: Dict[int, ProcessTimeline],
    regions: RegionRegistry,
    callpaths,
) -> TraceStatistics:
    """Derive all summaries from per-rank timelines.

    ``callpaths`` is the :class:`~repro.analysis.callpath.CallPathRegistry`
    the timelines were built against (needed to map exclusive times back to
    region names).
    """
    comm = CommMatrix()
    sizes = SizeHistogram()
    region_stats: Dict[str, RegionStats] = {}
    mpi_fraction: Dict[int, float] = {}

    machine_of = {rank: tl.machine for rank, tl in timelines.items()}

    for rank, timeline in timelines.items():
        mpi_time = 0.0
        for op in timeline.mpi_ops:
            mpi_time += op.duration
            for send in op.sends:
                crosses = machine_of.get(send.dest) != timeline.machine
                comm.add(rank, send.dest, send.size, crosses)
                sizes.add(send.size)
        total = timeline.total_time
        mpi_fraction[rank] = mpi_time / total if total > 0 else 0.0

        for cpid, exclusive in timeline.exclusive_time.items():
            name = regions.name_of(callpaths.path(cpid).region)
            stats = region_stats.get(name)
            if stats is None:
                stats = RegionStats(name=name)
                region_stats[name] = stats
            stats.exclusive_s += exclusive

    # Visit counts come straight from the timelines' per-call-path enter
    # counters, so recursion and repeated calls are counted exactly.
    for timeline in timelines.values():
        for cpid, count in timeline.visits.items():
            name = regions.name_of(callpaths.path(cpid).region)
            if name not in region_stats:
                region_stats[name] = RegionStats(name=name)
            region_stats[name].visits += count

    return TraceStatistics(
        comm=comm,
        sizes=sizes,
        regions=region_stats,
        mpi_fraction_of_rank=mpi_fraction,
    )


def statistics_of(result) -> TraceStatistics:
    """Convenience: statistics from an :class:`AnalysisResult`."""
    return compute_statistics(
        result.timelines, result.definitions.regions, result.callpaths
    )


def render_statistics(stats: TraceStatistics, top: int = 8) -> str:
    """Human-readable summary block."""
    lines = ["trace statistics", "=" * 40]
    lines.append(
        f"messages: {stats.comm.total_messages}, "
        f"volume: {stats.comm.total_bytes / 1024:.1f} KiB "
        f"(internal {stats.comm.internal_bytes / 1024:.1f} / "
        f"external {stats.comm.external_bytes / 1024:.1f})"
    )
    lines.append("")
    lines.append("heaviest sender -> receiver pairs:")
    for (src, dst), volume in stats.comm.heaviest_pairs(top):
        lines.append(f"  {src:4d} -> {dst:4d}  {volume / 1024:10.1f} KiB")
    lines.append("")
    lines.append("message sizes:")
    for label, count in stats.sizes.rows():
        lines.append(f"  {label:>20s}  {count:8d}")
    lines.append("")
    lines.append(f"{'region':24s} {'visits':>8s} {'excl [ms]':>10s} {'mean [ms]':>10s}")
    for region in stats.region_profile(top):
        lines.append(
            f"{region.name:24s} {region.visits:8d} "
            f"{region.exclusive_s * 1e3:10.2f} {region.mean_s * 1e3:10.3f}"
        )
    return "\n".join(lines)
