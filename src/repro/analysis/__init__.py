"""Parallel replay-based pattern analysis (the paper's analyzer).

Each analysis process reads only the local trace of its own rank — possible
on a metacomputer because each partial archive is readable from its own
metahost — and the replay exchanges *per-event metadata* (not whole trace
files) to match sends with receives and to gather collective enter times.
Pattern severities accumulate in a (metric × call path × process) cube.
"""

from repro.analysis.callpath import CallPathRegistry, CallPathBuilder
from repro.analysis.severity import SeverityCube
from repro.analysis.instances import (
    MPIOpInstance,
    ProcessTimeline,
    build_timeline,
)
from repro.analysis.matching import MessageMatcher, MatchedPair, CollectiveInstance
from repro.analysis.request import AnalysisRequest
from repro.analysis.replay import (
    ReplayAnalyzer,
    AnalysisResult,
    ReplayTraffic,
    analyze_run,
)
from repro.analysis.severity_timeline import SeverityTimeline
from repro.analysis.streaming import StreamingReplayAnalyzer
from repro.analysis.parallel import (
    ParallelReplayAnalyzer,
    PartialAnalysis,
    merge_partials,
    plan_shards,
    resolve_jobs,
)
from repro.analysis.patterns import metric_tree, Metric, METRICS
from repro.analysis.stats import (
    TraceStatistics,
    compute_statistics,
    statistics_of,
    render_statistics,
)

__all__ = [
    "CallPathRegistry",
    "CallPathBuilder",
    "SeverityCube",
    "MPIOpInstance",
    "ProcessTimeline",
    "build_timeline",
    "MessageMatcher",
    "MatchedPair",
    "CollectiveInstance",
    "ReplayAnalyzer",
    "StreamingReplayAnalyzer",
    "ParallelReplayAnalyzer",
    "AnalysisRequest",
    "SeverityTimeline",
    "PartialAnalysis",
    "merge_partials",
    "plan_shards",
    "resolve_jobs",
    "AnalysisResult",
    "ReplayTraffic",
    "analyze_run",
    "metric_tree",
    "Metric",
    "METRICS",
    "TraceStatistics",
    "compute_statistics",
    "statistics_of",
    "render_statistics",
]
