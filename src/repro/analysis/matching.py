"""Message matching and collective grouping for the replay.

Point-to-point matching follows the non-overtaking rule: the *k*-th receive
record for channel ``(sender, receiver, tag, communicator)`` matches the
*k*-th send record on that channel.  Traces record the actual source and
tag of every completed receive (wildcards are resolved at run time), so the
replay's matching is deterministic.

Collective grouping mirrors MPI ordering semantics: a rank's *n*-th
collective operation on a communicator belongs to that communicator's
*n*-th collective instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.instances import (
    CollRecord,
    MPIOpInstance,
    ProcessTimeline,
    RecvRecord,
    SendRecord,
)
from repro.errors import AnalysisError
from repro.ids import Location

#: Bytes of metadata the replay ships per matched message
#: (send-enter time, send time, sender location, call path, sizes).
PAIR_METADATA_BYTES = 48
#: Bytes each member contributes to a collective gather (enter time + ids).
COLLECTIVE_MEMBER_BYTES = 16


@dataclass(frozen=True)
class MatchedPair:
    """One send/receive pair with both sides' context."""

    sender_rank: int
    sender_location: Location
    send_op: MPIOpInstance
    send: SendRecord
    receiver_rank: int
    receiver_location: Location
    recv_op: MPIOpInstance
    recv: RecvRecord

    @property
    def crosses_metahosts(self) -> bool:
        """The grid predicate: endpoints on different machines."""
        return self.sender_location.machine != self.receiver_location.machine


@dataclass
class CollectiveInstance:
    """One collective operation instance across its communicator."""

    comm: int
    index: int
    region: int
    op_name: str
    root: int  # global rank
    #: rank → (op instance, coll record)
    members: Dict[int, Tuple[MPIOpInstance, CollRecord]] = field(default_factory=dict)
    locations: Dict[int, Location] = field(default_factory=dict)
    #: Global ranks in communicator-rank order (from the definitions
    #: document); None when the communicator is unknown to the archive.
    comm_order: Optional[List[int]] = None

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def last_enter(self) -> float:
        return max(op.enter for op, _ in self.members.values())

    @property
    def first_enter(self) -> float:
        return min(op.enter for op, _ in self.members.values())

    @property
    def spans_metahosts(self) -> bool:
        """The grid predicate for collectives: communicator spans machines."""
        machines = {loc.machine for loc in self.locations.values()}
        return len(machines) > 1


@dataclass
class MatchStats:
    matched: int = 0
    unmatched_sends: int = 0
    unmatched_recvs: int = 0
    collective_instances: int = 0
    metadata_bytes: int = 0


class MessageMatcher:
    """Builds matched pairs and collective instances from all timelines.

    ``comm_ranks`` optionally maps communicator ids to their global ranks
    in communicator-rank order (from the archive's definitions document);
    collective instances then carry it as ``comm_order`` so order-sensitive
    patterns (Early Scan) can use true comm-rank order.
    """

    def __init__(
        self,
        timelines: Dict[int, ProcessTimeline],
        comm_ranks: Optional[Dict[int, Tuple[int, ...]]] = None,
    ) -> None:
        self.timelines = timelines
        self.comm_ranks = comm_ranks or {}
        self.stats = MatchStats()

    # -- point-to-point -------------------------------------------------------

    def matched_pairs(self) -> Iterator[MatchedPair]:
        """Yield every matched pair (receiver trace order per rank)."""
        queues: Dict[Tuple[int, int, int, int], List[Tuple[MPIOpInstance, SendRecord]]] = {}
        for rank in sorted(self.timelines):
            timeline = self.timelines[rank]
            for op in timeline.mpi_ops:
                for send in op.sends:
                    key = (rank, send.dest, send.tag, send.comm)
                    queues.setdefault(key, []).append((op, send))

        for rank in sorted(self.timelines):
            timeline = self.timelines[rank]
            for op in timeline.mpi_ops:
                for recv in op.recvs:
                    key = (recv.source, rank, recv.tag, recv.comm)
                    queue = queues.get(key)
                    if not queue:
                        self.stats.unmatched_recvs += 1
                        raise AnalysisError(
                            f"rank {rank}: RECV from {recv.source} "
                            f"(tag {recv.tag}, comm {recv.comm}) has no matching SEND"
                        )
                    send_op, send = queue.pop(0)
                    self.stats.matched += 1
                    self.stats.metadata_bytes += PAIR_METADATA_BYTES
                    yield MatchedPair(
                        sender_rank=recv.source,
                        sender_location=self.timelines[recv.source].location,
                        send_op=send_op,
                        send=send,
                        receiver_rank=rank,
                        receiver_location=timeline.location,
                        recv_op=op,
                        recv=recv,
                    )
        self.stats.unmatched_sends = sum(len(q) for q in queues.values())

    # -- collectives -------------------------------------------------------------

    def collective_instances(self) -> List[CollectiveInstance]:
        """Group COLLEXIT records into per-communicator instances."""
        instances: Dict[Tuple[int, int], CollectiveInstance] = {}
        for rank in sorted(self.timelines):
            timeline = self.timelines[rank]
            counters: Dict[int, int] = {}
            for op in timeline.mpi_ops:
                coll = op.coll
                if coll is None:
                    continue
                index = counters.get(coll.comm, 0)
                counters[coll.comm] = index + 1
                key = (coll.comm, index)
                instance = instances.get(key)
                if instance is None:
                    order = self.comm_ranks.get(coll.comm)
                    instance = CollectiveInstance(
                        comm=coll.comm,
                        index=index,
                        region=coll.region,
                        op_name=op.op_name,
                        root=coll.root,
                        comm_order=list(order) if order is not None else None,
                    )
                    instances[key] = instance
                elif instance.region != coll.region:
                    raise AnalysisError(
                        f"collective mismatch on comm {coll.comm} instance {index}: "
                        f"rank {rank} recorded region {coll.region}, others "
                        f"{instance.region}"
                    )
                instance.members[rank] = (op, coll)
                instance.locations[rank] = timeline.location
                self.stats.metadata_bytes += COLLECTIVE_MEMBER_BYTES
        result = [instances[key] for key in sorted(instances)]
        self.stats.collective_instances = len(result)
        return result
