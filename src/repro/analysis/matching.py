"""Message matching and collective grouping for the replay.

Point-to-point matching follows the non-overtaking rule: the *k*-th receive
record for channel ``(sender, receiver, tag, communicator)`` matches the
*k*-th send record on that channel.  Traces record the actual source and
tag of every completed receive (wildcards are resolved at run time), so the
replay's matching is deterministic.

Collective grouping mirrors MPI ordering semantics: a rank's *n*-th
collective operation on a communicator belongs to that communicator's
*n*-th collective instance.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional, Tuple

from repro.analysis.instances import (
    CollRecord,
    MPIOpInstance,
    ProcessTimeline,
    RecvRecord,
    SendRecord,
)
from repro.errors import AnalysisError
from repro.ids import Location

#: Bytes of metadata the replay ships per matched message
#: (send-enter time, send time, sender location, call path, sizes).
PAIR_METADATA_BYTES = 48
#: Bytes each member contributes to a collective gather (enter time + ids).
COLLECTIVE_MEMBER_BYTES = 16


class MatchedPair:
    """One send/receive pair with both sides' context.

    A plain slotted class rather than a dataclass: the replay creates one
    per matched message, and the quantities every downstream consumer needs
    — the grid predicate and the Late Sender / Late Receiver waiting times
    — are computed once at construction instead of being rederived by each
    of the five point-to-point patterns plus the grid breakdown.

    ``late_sender_wait`` is the interval between entering the receiving
    call and the sender entering the sending call, clipped to the receiving
    call (≥ 0); ``late_receiver_wait`` is the dual; ``crosses_metahosts``
    is true when the endpoints live on different machines.
    """

    __slots__ = (
        "sender_rank",
        "sender_location",
        "send_op",
        "send",
        "receiver_rank",
        "receiver_location",
        "recv_op",
        "recv",
        "crosses_metahosts",
        "late_sender_wait",
        "late_receiver_wait",
    )

    def __init__(
        self,
        sender_rank: int,
        sender_location: Location,
        send_op: MPIOpInstance,
        send: SendRecord,
        receiver_rank: int,
        receiver_location: Location,
        recv_op: MPIOpInstance,
        recv: RecvRecord,
    ) -> None:
        self.sender_rank = sender_rank
        self.sender_location = sender_location
        self.send_op = send_op
        self.send = send
        self.receiver_rank = receiver_rank
        self.receiver_location = receiver_location
        self.recv_op = recv_op
        self.recv = recv
        self.crosses_metahosts = sender_location.machine != receiver_location.machine
        send_enter = send_op.enter
        send_exit = send_op.exit
        recv_enter = recv_op.enter
        recv_exit = recv_op.exit
        wait = (send_enter if send_enter < recv_exit else recv_exit) - recv_enter
        self.late_sender_wait = wait if wait > 0.0 else 0.0
        wait = (recv_enter if recv_enter < send_exit else send_exit) - send_enter
        self.late_receiver_wait = wait if wait > 0.0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatchedPair(sender_rank={self.sender_rank}, "
            f"receiver_rank={self.receiver_rank}, send={self.send!r}, "
            f"recv={self.recv!r})"
        )


@dataclass
class CollectiveInstance:
    """One collective operation instance across its communicator."""

    comm: int
    index: int
    region: int
    op_name: str
    root: int  # global rank
    #: rank → (op instance, coll record)
    members: Dict[int, Tuple[MPIOpInstance, CollRecord]] = field(default_factory=dict)
    locations: Dict[int, Location] = field(default_factory=dict)
    #: Global ranks in communicator-rank order (from the definitions
    #: document); None when the communicator is unknown to the archive.
    comm_order: Optional[List[int]] = None

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def last_enter(self) -> float:
        return max(op.enter for op, _ in self.members.values())

    @property
    def first_enter(self) -> float:
        return min(op.enter for op, _ in self.members.values())

    @property
    def spans_metahosts(self) -> bool:
        """The grid predicate for collectives: communicator spans machines."""
        machines = {loc.machine for loc in self.locations.values()}
        return len(machines) > 1


@dataclass
class MatchStats:
    matched: int = 0
    unmatched_sends: int = 0
    unmatched_recvs: int = 0
    collective_instances: int = 0
    metadata_bytes: int = 0


class MessageMatcher:
    """Builds matched pairs and collective instances from all timelines.

    ``comm_ranks`` optionally maps communicator ids to their global ranks
    in communicator-rank order (from the archive's definitions document);
    collective instances then carry it as ``comm_order`` so order-sensitive
    patterns (Early Scan) can use true comm-rank order.  ``comm_lookup``
    is the lazy alternative: a callable resolving one communicator id on
    first use, so callers with large definitions documents don't build the
    whole table up front for the handful of communicators a trace touches.

    ``allow_unmatched`` turns the unmatched-receive hard error into a
    counted skip: degraded-mode replay analyzes a subset of ranks, so a
    surviving receiver may legitimately reference a sender whose trace was
    lost.  The skipped receives show up in ``stats.unmatched_recvs``.
    """

    def __init__(
        self,
        timelines: Dict[int, ProcessTimeline],
        comm_ranks: Optional[Dict[int, Tuple[int, ...]]] = None,
        comm_lookup: Optional[Callable[[int], Optional[Tuple[int, ...]]]] = None,
        allow_unmatched: bool = False,
    ) -> None:
        self.timelines = timelines
        self.comm_ranks = comm_ranks or {}
        self._comm_lookup = comm_lookup
        self._comm_order_cache: Dict[int, Optional[Tuple[int, ...]]] = {}
        self.allow_unmatched = allow_unmatched
        self.stats = MatchStats()

    def _order_of(self, comm: int) -> Optional[Tuple[int, ...]]:
        """Comm-rank order of one communicator, resolved lazily and cached."""
        order = self.comm_ranks.get(comm)
        if order is not None or self._comm_lookup is None:
            return order
        if comm not in self._comm_order_cache:
            self._comm_order_cache[comm] = self._comm_lookup(comm)
        return self._comm_order_cache[comm]

    # -- point-to-point -------------------------------------------------------

    def matched_pairs(self) -> Iterator[MatchedPair]:
        """Yield every matched pair (receiver trace order per rank)."""
        queues: Dict[Tuple[int, int, int, int], Deque[Tuple[MPIOpInstance, SendRecord]]] = {}
        for rank in sorted(self.timelines):
            timeline = self.timelines[rank]
            for op in timeline.mpi_ops:
                for send in op.sends:
                    key = (rank, send.dest, send.tag, send.comm)
                    queue = queues.get(key)
                    if queue is None:
                        queues[key] = queue = deque()
                    queue.append((op, send))

        timelines = self.timelines
        stats = self.stats
        matched = 0
        for rank in sorted(timelines):
            timeline = timelines[rank]
            location = timeline.location
            for op in timeline.mpi_ops:
                for recv in op.recvs:
                    source = recv.source
                    key = (source, rank, recv.tag, recv.comm)
                    queue = queues.get(key)
                    if not queue:
                        stats.unmatched_recvs += 1
                        if self.allow_unmatched:
                            continue
                        raise AnalysisError(
                            f"rank {rank}: RECV from {source} "
                            f"(tag {recv.tag}, comm {recv.comm}) has no matching SEND"
                        )
                    send_op, send = queue.popleft()
                    matched += 1
                    yield MatchedPair(
                        source,
                        timelines[source].location,
                        send_op,
                        send,
                        rank,
                        location,
                        op,
                        recv,
                    )
        stats.matched = matched
        stats.metadata_bytes += matched * PAIR_METADATA_BYTES
        stats.unmatched_sends = sum(len(q) for q in queues.values())

    # -- collectives -------------------------------------------------------------

    def collective_instances(self) -> List[CollectiveInstance]:
        """Group COLLEXIT records into per-communicator instances."""
        instances: Dict[Tuple[int, int], CollectiveInstance] = {}
        for rank in sorted(self.timelines):
            timeline = self.timelines[rank]
            counters: Dict[int, int] = {}
            for op in timeline.mpi_ops:
                coll = op.coll
                if coll is None:
                    continue
                index = counters.get(coll.comm, 0)
                counters[coll.comm] = index + 1
                key = (coll.comm, index)
                instance = instances.get(key)
                if instance is None:
                    order = self._order_of(coll.comm)
                    instance = CollectiveInstance(
                        comm=coll.comm,
                        index=index,
                        region=coll.region,
                        op_name=op.op_name,
                        root=coll.root,
                        comm_order=list(order) if order is not None else None,
                    )
                    instances[key] = instance
                elif instance.region != coll.region:
                    raise AnalysisError(
                        f"collective mismatch on comm {coll.comm} instance {index}: "
                        f"rank {rank} recorded region {coll.region}, others "
                        f"{instance.region}"
                    )
                instance.members[rank] = (op, coll)
                instance.locations[rank] = timeline.location
                self.stats.metadata_bytes += COLLECTIVE_MEMBER_BYTES
        result = [instances[key] for key in sorted(instances)]
        self.stats.collective_instances = len(result)
        return result
