"""Single-pass, bounded-memory streaming replay.

The buffered :class:`~repro.analysis.replay.ReplayAnalyzer` materializes
every rank's MPI-op instances, then matches, then searches patterns — three
walks whose working set is O(trace).  This module restructures the replay
into one pass: a chunked event pump (a time-ordered ``heapq.merge`` over
every rank's streaming decoder) drives per-rank
:class:`~repro.analysis.instances.TimelineBuilder`\\ s, whose completed ops
feed an **incremental** matcher; matched pairs and completed collective
instances flow straight into the pattern search and the severity
accumulators.  Memory is bounded by the *matching window* — in-flight
sends/receives and open collectives — plus the raw trace blobs, never by
the number of events.

Bit-identity with the buffered analyzer (strict and degraded, every
``jobs`` value) rests on four mechanisms:

* the severity cube and grid breakdown are **exact and order-free**
  (Shewchuk expansions, :mod:`repro.analysis.severity`), so pattern hits
  may arrive in pump order instead of receiver-major order;
* the only *stateful* pattern (Wrong Order, keyed per receiver and
  communicator) sees pairs through a per-receiver reorder buffer that
  releases them in receive trace order — exactly the serial feed order
  per key;
* collective instances are emitted with members rebuilt in ascending rank
  order, reproducing the serial causer tie-break, and flushed at
  end-of-stream sorted by ``(comm, index)``;
* call paths are interned per rank and renumbered rank-major at finalize
  (the parallel merge's idiom), with cube cells re-keyed wholesale — no
  re-addition, no rounding.

Clock-condition stamps are sorted at finalize; every analyzer (buffered,
streaming, parallel merge) sorts identically, so stamp lists stay
comparable across paths.
"""

from __future__ import annotations

import heapq
import warnings
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.analysis.callpath import ROOT_PATH, CallPathRegistry
from repro.analysis.instances import (
    MPIOpInstance,
    ProcessTimeline,
    TimelineBuilder,
    remap_timeline,
    total_time_of,
)
from repro.analysis.matching import (
    COLLECTIVE_MEMBER_BYTES,
    PAIR_METADATA_BYTES,
    CollectiveInstance,
    MatchedPair,
    MatchStats,
)
from repro.analysis.patterns import (
    COLLECTIVE,
    COMMUNICATION,
    IDLE_THREADS,
    MPI,
    P2P,
    SYNCHRONIZATION,
    TIME,
    default_collective_patterns,
    default_p2p_patterns,
)
from repro.analysis.patterns.base import classify_region
from repro.analysis.patterns.grid import (
    GridPairBreakdown,
    accumulate_collective,
    accumulate_p2p,
)
from repro.analysis.replay import (
    AnalysisResult,
    RankCompleteness,
    ReplayTraffic,
)
from repro.analysis.severity import SeverityCube
from repro.analysis.severity_timeline import (
    SeverityTimeline,
    record_collective_hits,
    record_p2p_hits,
)
from repro.clocks.condition import ClockConditionChecker, MessageStamp
from repro.clocks.sync import HierarchicalInterpolation, LinearConverter, SyncScheme
from repro.errors import AnalysisError, ArchiveError, PartialTraceWarning
from repro.ids import node_of
from repro.resilience.deadline import Deadline
from repro.trace.archive import ArchiveReader, salvage_checked, trace_filename
from repro.trace.encoding import iter_events

#: A point-to-point channel: (sender rank, receiver rank, tag, communicator).
ChannelKey = Tuple[int, int, int, int]

#: Events pumped between deadline polls.  One ``time.monotonic`` call per
#: this many events keeps the cooperative check under ~1% of pump cost
#: while still bounding the reaction latency to a few dozen microseconds
#: of work on toy traces.
DEADLINE_POLL_EVENTS = 64


class _ReceiverReleases:
    """Per-receiver reorder buffer: pairs leave in receive trace order.

    Each receive record gets a sequence number when its op completes (the
    pump delivers a rank's ops in trace order, so assignment order *is*
    receive trace order).  A completed pair parks under its sequence until
    every earlier receive of that receiver is resolved — matched and
    released, or voided (unmatched in degraded mode).  The buffer holds at
    most the in-flight matching window.
    """

    __slots__ = ("assign", "release", "parked")

    def __init__(self) -> None:
        self.assign = 0
        self.release = 0
        #: seq → MatchedPair, or None for a voided (unmatched) receive.
        self.parked: Dict[int, Optional[MatchedPair]] = {}

    def next_seq(self) -> int:
        seq = self.assign
        self.assign += 1
        return seq

    def resolve(self, seq: int, pair: Optional[MatchedPair]) -> List[MatchedPair]:
        """Park one outcome; return every pair that becomes releasable."""
        self.parked[seq] = pair
        out: List[MatchedPair] = []
        while self.release in self.parked:
            released = self.parked.pop(self.release)
            self.release += 1
            if released is not None:
                out.append(released)
        return out


class _CollectiveGroup:
    """One in-flight collective instance, accumulating members as they exit."""

    __slots__ = ("region", "members", "locations", "order", "expected")

    def __init__(self, region: int, order, expected: Optional[int]) -> None:
        self.region = region
        self.members: Dict[int, tuple] = {}
        self.locations: Dict[int, object] = {}
        #: Full communicator rank order (None when unknown to the archive).
        self.order = order
        #: Analyzed member count that completes the instance (None: unknown
        #: communicator, only end-of-stream flush can close it).
        self.expected = expected


class StreamingReplayAnalyzer:
    """Single-pass replay over per-metahost archive readers.

    Constructor contract mirrors :class:`~repro.analysis.replay.ReplayAnalyzer`
    (readers keyed by machine, optional scheme, degraded flag) plus:

    ``retain=False``
        bounded-memory mode — completed op instances are consumed by the
        pipeline and dropped instead of being appended to
        ``timelines[rank].mpi_ops``.  Aggregates are unaffected.
    ``timeline``
        a :class:`~repro.analysis.severity_timeline.SeverityTimeline` to
        accumulate time-resolved severity into (None: skip).
    ``deadline``
        a :class:`~repro.resilience.deadline.Deadline` polled
        cooperatively every :data:`DEADLINE_POLL_EVENTS` pump iterations.
        On expiry (or cancellation) the pump stops, stragglers settle
        degraded-style, and the result carries the severity accumulated
        so far with honest per-rank completeness and
        ``result.interrupted`` set — never a hang, never a crash.
    """

    def __init__(
        self,
        readers: Dict[int, ArchiveReader],
        scheme: Optional[SyncScheme] = None,
        degraded: bool = False,
        retain: bool = True,
        timeline: Optional[SeverityTimeline] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        if not readers:
            raise AnalysisError("no archive readers supplied")
        self.readers = dict(readers)
        self.degraded = degraded
        if scheme is None:
            scheme = HierarchicalInterpolation(strict=not degraded)
        self.scheme = scheme
        self.retain = retain
        self.timeline = timeline
        self.deadline = deadline

    # -- prepass ---------------------------------------------------------------

    def _scan_degraded(
        self,
        rank: int,
        reader: Optional[ArchiveReader],
        completeness: Dict[int, RankCompleteness],
    ) -> Optional[bytes]:
        """Decide one rank's fate without materializing its events.

        Mirrors :meth:`ReplayAnalyzer._load_degraded` check for check and
        message for message, but scans (``count_only``) instead of
        decoding, so a damaged multi-gigabyte prefix costs O(1) memory.
        Returns the raw blob for an analyzable rank, None for an excluded
        one.
        """

        def exclude(reason: str, fraction: float = 0.0, events: int = 0) -> None:
            completeness[rank] = RankCompleteness(
                rank=rank,
                complete=False,
                completeness=fraction,
                events=events,
                analyzed=False,
                error=reason,
            )
            warnings.warn(
                f"rank {rank} excluded from replay: {reason}", PartialTraceWarning,
                stacklevel=4,
            )

        if reader is None:
            exclude("no archive reader for its metahost")
            return None
        if not reader.has_trace(rank):
            exclude(f"{trace_filename(rank)} missing from its metahost's archive")
            return None
        blob = reader.read_trace_blob(rank)
        scanned = salvage_checked(blob, reader.manifest_entry(rank), count_only=True)
        if scanned.rank is not None and scanned.rank != rank:
            exclude(f"trace file claims rank {scanned.rank}")
            return None
        if not scanned.complete:
            exclude(
                scanned.error,
                fraction=scanned.completeness,
                events=scanned.event_count,
            )
            return None
        if not scanned.balanced:
            exclude(
                f"trace decodes but leaves {scanned.open_regions} region(s) "
                "open (truncated at a record boundary?)",
                fraction=scanned.completeness,
                events=scanned.event_count,
            )
            return None
        completeness[rank] = RankCompleteness(
            rank=rank,
            complete=True,
            completeness=1.0,
            events=scanned.event_count,
            analyzed=True,
        )
        return blob

    @staticmethod
    def _validate_structure(
        rank: int, blob: bytes, converter: LinearConverter, regions
    ) -> Optional[str]:
        """Degraded dry run: does the trace build without structural errors?

        The pump feeds the shared matcher incrementally, so a mid-stream
        build failure (damage that decodes as valid records but is
        structurally inconsistent — the buffered analyzer's backstop case)
        would poison state already accumulated for other ranks.  Walking
        the rank once up front keeps the pump infallible in degraded mode;
        the events are discarded as they stream by.
        """
        location = None  # unused by the builder's structural checks
        builder = TimelineBuilder(
            rank, location, converter, CallPathRegistry(), regions, retain=False
        )
        try:
            _, events = iter_events(blob)
            feed = builder.feed
            for event in events:
                feed(event)
            builder.finish()
        except AnalysisError as exc:
            return str(exc)
        return None

    # -- the pass --------------------------------------------------------------

    def analyze(self) -> AnalysisResult:
        first_reader = next(iter(self.readers.values()))
        definitions = first_reader.definitions()
        sync_data = first_reader.sync_data()
        synchronized = self.scheme.convert_all(sync_data)
        degraded = self.degraded
        regions = definitions.regions

        # Prepass: per rank ascending, reproduce the buffered analyzer's
        # admission decisions (same checks, same messages, same warning
        # order) and collect each admitted rank's blob and converter.
        completeness: Dict[int, RankCompleteness] = {}
        trace_bytes: Dict[int, int] = {}
        blobs: Dict[int, bytes] = {}
        converters: Dict[int, LinearConverter] = {}
        locations: Dict[int, object] = {}
        for rank in sorted(definitions.locations):
            location = definitions.locations[rank]
            reader = self.readers.get(location.machine)
            if degraded:
                blob = self._scan_degraded(rank, reader, completeness)
                if blob is None:
                    continue
            else:
                if reader is None:
                    raise AnalysisError(
                        f"no archive reader for machine {location.machine} "
                        f"(rank {rank} lives there)"
                    )
                if not reader.has_trace(rank):
                    raise AnalysisError(
                        f"rank {rank}'s trace is not visible on its own metahost "
                        f"({trace_filename(rank)} missing)"
                    )
                blob = reader.read_trace_blob(rank)
                scanned_rank, _ = iter_events(blob)
                if scanned_rank != rank:
                    raise ArchiveError(
                        f"trace file {trace_filename(rank)} claims rank "
                        f"{scanned_rank}"
                    )
            converter = synchronized.converters.get(node_of(location))
            if converter is None:
                if not degraded:
                    raise AnalysisError(
                        f"no clock converter for node {node_of(location)}"
                    )
                warnings.warn(
                    f"rank {rank}: no clock converter for {node_of(location)}, "
                    "using local time unconverted",
                    PartialTraceWarning,
                    stacklevel=2,
                )
                converter = LinearConverter.identity()
            if degraded:
                error = self._validate_structure(rank, blob, converter, regions)
                if error is not None:
                    prior = completeness.get(rank)
                    completeness[rank] = RankCompleteness(
                        rank=rank,
                        complete=False,
                        completeness=prior.completeness if prior else 0.0,
                        events=prior.events if prior else 0,
                        analyzed=False,
                        error=error,
                    )
                    warnings.warn(
                        f"rank {rank} excluded from replay: {error}",
                        PartialTraceWarning,
                        stacklevel=2,
                    )
                    continue
            blobs[rank] = blob
            trace_bytes[rank] = len(blob)
            converters[rank] = converter
            locations[rank] = location

        if not blobs:
            raise AnalysisError("no rank produced a usable trace")

        analyzed = sorted(blobs)
        analyzed_set = set(analyzed)

        state = _StreamState(
            definitions=definitions,
            analyzed=analyzed_set,
            degraded=degraded,
            timeline=self.timeline,
        )

        # Per-rank builders with per-rank (local) call-path registries;
        # completed ops flow into the shared incremental matcher.
        builders: Dict[int, TimelineBuilder] = {}
        local_registries: Dict[int, CallPathRegistry] = {}
        for rank in analyzed:
            local = CallPathRegistry()
            local_registries[rank] = local
            builder = TimelineBuilder(
                rank,
                locations[rank],
                converters[rank],
                local,
                regions,
                retain=self.retain,
            )
            builder.on_op = state.make_op_sink(rank, locations[rank])
            builder.on_omp = state.make_omp_sink(rank)
            builders[rank] = builder

        # The pump: one time-ordered pass over every admitted rank's
        # streaming decoder.  (t, rank, seq) keys are unique, so heapq
        # never compares events; per-rank delivery order is trace order
        # regardless of clock skew between ranks.
        def keyed(rank: int) -> Iterator[Tuple[float, int, int, object]]:
            slope = converters[rank].slope
            intercept = converters[rank].intercept
            _, events = iter_events(blobs[rank])
            seq = 0
            for event in events:
                yield (event.time * slope + intercept, rank, seq, event)
                seq += 1

        interrupted: Optional[str] = None
        merged = heapq.merge(*(keyed(rank) for rank in analyzed))
        if self.deadline is None:
            for _, rank, _, event in merged:
                builders[rank].feed(event)
        else:
            # Deadline-aware pump: same event order, plus a cooperative
            # poll every DEADLINE_POLL_EVENTS events and a per-rank count
            # of consumed events for honest completeness on interruption.
            deadline = self.deadline
            pumped: Dict[int, int] = dict.fromkeys(analyzed, 0)
            countdown = DEADLINE_POLL_EVENTS
            for _, rank, _, event in merged:
                builders[rank].feed(event)
                pumped[rank] += 1
                countdown -= 1
                if countdown <= 0:
                    countdown = DEADLINE_POLL_EVENTS
                    interrupted = deadline.reason()
                    if interrupted is not None:
                        break

        state.finish_stream(interrupted=interrupted is not None)

        if interrupted is not None:
            completeness = self._interrupted_completeness(
                interrupted, analyzed, pumped, blobs, completeness
            )

        # Finalize timelines and renumber call paths rank-major — the
        # buffered analyzer's first-encounter order, exactly.
        timelines: Dict[int, ProcessTimeline] = {}
        callpaths = CallPathRegistry()
        mapping: Dict[int, Dict[int, int]] = {}
        for rank in analyzed:
            timeline = builders[rank].finish(force=interrupted is not None)
            remap = {ROOT_PATH: ROOT_PATH}
            for path in local_registries[rank].all_paths():
                remap[path.cpid] = callpaths.intern(remap[path.parent], path.region)
            remap_timeline(timeline, remap)
            timelines[rank] = timeline
            mapping[rank] = remap

        cube = state.cube.remap_callpaths(mapping)
        if self.timeline is not None:
            self.timeline.remap_callpaths(mapping)

        # TIME from per-rank exclusive time (already globally keyed).
        cube_add = cube.add
        for rank in analyzed:
            for cpid, exclusive in timelines[rank].exclusive_time.items():
                cube_add(TIME, cpid, rank, exclusive)

        # Every analyzer sorts stamps identically at finalize, so stamp
        # lists compare equal across the buffered/streaming/merged paths.
        state.checker.stamps.sort()

        master_machine = definitions.machine_of(0)
        merged_copy_bytes = sum(
            size
            for rank, size in trace_bytes.items()
            if definitions.machine_of(rank) != master_machine
        )
        traffic = ReplayTraffic(
            replay_metadata_bytes=state.stats.metadata_bytes,
            merged_copy_bytes=merged_copy_bytes,
            trace_bytes_total=sum(trace_bytes.values()),
        )

        return AnalysisResult(
            cube=cube,
            callpaths=callpaths,
            definitions=definitions,
            violations=state.checker,
            traffic=traffic,
            scheme_name=self.scheme.name,
            total_time=total_time_of(timelines),
            timelines=timelines,
            grid_pairs=state.grid_pairs,
            # An interrupted result is degraded-style by construction:
            # starved receives were voided, not matched.
            degraded=degraded or interrupted is not None,
            completeness=completeness,
            severity_timeline=self.timeline,
            interrupted=interrupted,
        )

    @staticmethod
    def _interrupted_completeness(
        reason: str,
        analyzed: List[int],
        pumped: Dict[int, int],
        blobs: Dict[int, bytes],
        completeness: Dict[int, RankCompleteness],
    ) -> Dict[int, RankCompleteness]:
        """Honest per-rank accounting for a deadline-cut pump.

        Every analyzed rank reports the events it actually consumed and
        the fraction of its trace that represents; the error string names
        the budget so the partial result can never be mistaken for a
        complete one.
        """
        out = dict(completeness)
        for rank in analyzed:
            consumed = pumped.get(rank, 0)
            prior = completeness.get(rank)
            total = prior.events if prior is not None and prior.events else None
            if total is None:
                try:
                    _, events = iter_events(blobs[rank])
                    total = sum(1 for _ in events)
                except Exception:  # noqa: BLE001 - count is best-effort
                    total = None
            fraction = consumed / total if total else 0.0
            out[rank] = RankCompleteness(
                rank=rank,
                complete=False,
                completeness=min(fraction, 1.0),
                events=consumed,
                analyzed=True,
                error=(
                    f"TimeBudgetExceeded: {reason} after {consumed} of "
                    f"{total if total is not None else 'unknown'} event(s)"
                ),
            )
        return out


class _StreamState:
    """Everything the pump accumulates: matcher, patterns, severities.

    Cube cells are keyed by each rank's *local* call-path ids during the
    pass (every contribution charges a rank at its own op's path); the
    finalizer re-keys them globally.
    """

    def __init__(self, definitions, analyzed, degraded, timeline) -> None:
        self.definitions = definitions
        self.analyzed = analyzed
        self.degraded = degraded
        self.timeline = timeline
        self.cube = SeverityCube()
        self.grid_pairs = GridPairBreakdown()
        self.checker = ClockConditionChecker()
        self.stats = MatchStats()
        self._p2p_patterns = default_p2p_patterns()
        self._contribution_fns = [p.contributions for p in self._p2p_patterns]
        self._coll_patterns = default_collective_patterns()
        self._leaf_of: Dict[str, Optional[str]] = {}
        self._nodes: Dict[int, object] = {}
        #: channel → FIFO of (send op, send record) awaiting their receive.
        self._send_queues: Dict[ChannelKey, Deque[tuple]] = {}
        #: channel → FIFO of (recv op, recv record, seq, op idx, recv idx).
        self._pending_recvs: Dict[ChannelKey, Deque[tuple]] = {}
        self._releases: Dict[int, _ReceiverReleases] = {}
        #: (comm, index) → in-flight group; per-rank per-comm counters.
        self._groups: Dict[Tuple[int, int], _CollectiveGroup] = {}
        self._coll_counters: Dict[int, Dict[int, int]] = {}
        self._comm_order_cache: Dict[int, Optional[Tuple[int, ...]]] = {}
        self._op_counts: Dict[int, int] = {}

    # -- sinks -----------------------------------------------------------------

    def make_op_sink(self, rank: int, location) -> "callable":
        self._nodes[rank] = node_of(location)
        self._op_counts[rank] = 0
        self._releases[rank] = _ReceiverReleases()
        self._coll_counters[rank] = {}

        def on_op(op: MPIOpInstance) -> None:
            op_idx = self._op_counts[rank]
            self._op_counts[rank] = op_idx + 1
            self._base_metrics(rank, op)
            for send in op.sends:
                self._on_send(rank, op, send)
            for recv_idx, recv in enumerate(op.recvs):
                self._on_recv(rank, op, recv, op_idx, recv_idx)
            if op.coll is not None:
                self._on_coll(rank, location, op)

        return on_op

    def make_omp_sink(self, rank: int) -> "callable":
        def on_omp(record) -> None:
            idle = record.idle_thread_seconds
            if idle > 0.0:
                self.cube.add(IDLE_THREADS, record.cpid, rank, idle)
                if self.timeline is not None:
                    self.timeline.add(
                        IDLE_THREADS, record.cpid, rank,
                        record.enter, record.exit, idle,
                    )

        return on_omp

    def _base_metrics(self, rank: int, op: MPIOpInstance) -> None:
        duration = op.exit - op.enter
        if duration <= 0.0:
            return
        cpid = op.cpid
        cube_add = self.cube.add
        cube_add(MPI, cpid, rank, duration)
        name = op.op_name
        try:
            leaf = self._leaf_of[name]
        except KeyError:
            leaf = self._leaf_of[name] = classify_region(name)
        metrics = [MPI]
        if leaf == P2P:
            cube_add(COMMUNICATION, cpid, rank, duration)
            cube_add(P2P, cpid, rank, duration)
            metrics += [COMMUNICATION, P2P]
        elif leaf == COLLECTIVE:
            cube_add(COMMUNICATION, cpid, rank, duration)
            cube_add(COLLECTIVE, cpid, rank, duration)
            metrics += [COMMUNICATION, COLLECTIVE]
        elif leaf == SYNCHRONIZATION:
            cube_add(SYNCHRONIZATION, cpid, rank, duration)
            metrics.append(SYNCHRONIZATION)
        if self.timeline is not None:
            for metric in metrics:
                self.timeline.add(metric, cpid, rank, op.enter, op.exit, duration)

    # -- point-to-point --------------------------------------------------------

    def _on_send(self, rank: int, op: MPIOpInstance, send) -> None:
        if self.degraded and send.dest not in self.analyzed:
            # Receiver excluded: the buffered analyzer leaves this send in
            # its queue and counts it at the end; count it now.
            self.stats.unmatched_sends += 1
            return
        key: ChannelKey = (rank, send.dest, send.tag, send.comm)
        pending = self._pending_recvs.get(key)
        if pending:
            recv_op, recv, seq, _op_idx, _recv_idx = pending.popleft()
            self._complete_pair(rank, op, send, send.dest, recv_op, recv, seq)
            return
        queue = self._send_queues.get(key)
        if queue is None:
            self._send_queues[key] = queue = deque()
        queue.append((op, send))

    def _on_recv(
        self, rank: int, op: MPIOpInstance, recv, op_idx: int, recv_idx: int
    ) -> None:
        releases = self._releases[rank]
        seq = releases.next_seq()
        if self.degraded and recv.source not in self.analyzed:
            # Sender excluded: unmatched by construction.  (In strict mode
            # an unknown source must instead reach the starved-receive
            # error at end of stream, as the buffered analyzer raises.)
            self.stats.unmatched_recvs += 1
            self._release(rank, releases.resolve(seq, None))
            return
        key: ChannelKey = (recv.source, rank, recv.tag, recv.comm)
        queue = self._send_queues.get(key)
        if queue:
            send_op, send = queue.popleft()
            self._complete_pair(recv.source, send_op, send, rank, op, recv, seq)
            return
        pending = self._pending_recvs.get(key)
        if pending is None:
            self._pending_recvs[key] = pending = deque()
        pending.append((op, recv, seq, op_idx, recv_idx))

    def _complete_pair(
        self, sender: int, send_op, send, receiver: int, recv_op, recv, seq: int
    ) -> None:
        self.stats.matched += 1
        pair = MatchedPair(
            sender,
            self.definitions.locations[sender],
            send_op,
            send,
            receiver,
            self.definitions.locations[receiver],
            recv_op,
            recv,
        )
        self._release(receiver, self._releases[receiver].resolve(seq, pair))

    def _release(self, receiver: int, pairs: List[MatchedPair]) -> None:
        """Run released pairs through the patterns, in receive trace order."""
        if not pairs:
            return
        nodes = self._nodes
        stamp_append = self.checker.stamps.append
        cube_add = self.cube.add
        for pair in pairs:
            accumulate_p2p(self.grid_pairs, pair)
            stamp_append(
                MessageStamp(
                    nodes[pair.sender_rank],
                    nodes[pair.receiver_rank],
                    pair.send.time,
                    pair.recv.time,
                )
            )
            for contributions in self._contribution_fns:
                hits = contributions(pair)
                if self.timeline is not None:
                    hits = list(hits)
                    record_p2p_hits(self.timeline, pair, hits)
                for hit in hits:
                    cube_add(hit.metric, hit.cpid, hit.rank, hit.value)

    # -- collectives -----------------------------------------------------------

    def _comm_order(self, comm: int) -> Optional[Tuple[int, ...]]:
        if comm not in self._comm_order_cache:
            entry = self.definitions.communicators.get(comm)
            self._comm_order_cache[comm] = entry[1] if entry is not None else None
        return self._comm_order_cache[comm]

    def _on_coll(self, rank: int, location, op: MPIOpInstance) -> None:
        coll = op.coll
        counters = self._coll_counters[rank]
        index = counters.get(coll.comm, 0)
        counters[coll.comm] = index + 1
        key = (coll.comm, index)
        group = self._groups.get(key)
        if group is None:
            order = self._comm_order(coll.comm)
            expected = (
                sum(1 for r in order if r in self.analyzed)
                if order is not None
                else None
            )
            group = _CollectiveGroup(coll.region, order, expected)
            self._groups[key] = group
        elif group.region != coll.region:
            raise AnalysisError(
                f"collective mismatch on comm {coll.comm} instance {index}: "
                f"rank {rank} recorded region {coll.region}, others "
                f"{group.region}"
            )
        group.members[rank] = (op, coll)
        group.locations[rank] = location
        self.stats.metadata_bytes += COLLECTIVE_MEMBER_BYTES
        if group.expected is not None and len(group.members) == group.expected:
            del self._groups[key]
            self._emit_collective(coll.comm, index, group)

    def _emit_collective(self, comm: int, index: int, group: _CollectiveGroup) -> None:
        # Members in ascending rank order: the serial grouping inserts
        # rank-major, and the grid causer tie-break scans insertion order.
        ranks = sorted(group.members)
        first_op, first_coll = group.members[ranks[0]]
        instance = CollectiveInstance(
            comm=comm,
            index=index,
            region=first_coll.region,
            op_name=first_op.op_name,
            root=first_coll.root,
            comm_order=list(group.order) if group.order is not None else None,
        )
        for rank in ranks:
            instance.members[rank] = group.members[rank]
            instance.locations[rank] = group.locations[rank]
        self.stats.collective_instances += 1
        accumulate_collective(self.grid_pairs, instance)
        cube_add = self.cube.add
        for pattern in self._coll_patterns:
            hits = pattern.contributions(instance)
            if self.timeline is not None:
                hits = list(hits)
                record_collective_hits(self.timeline, instance, hits)
            for hit in hits:
                cube_add(hit.metric, hit.cpid, hit.rank, hit.value)

    # -- end of stream ---------------------------------------------------------

    def finish_stream(self, interrupted: bool = False) -> None:
        """Flush stragglers and settle unmatched accounting.

        In strict mode an unmatched receive reproduces the buffered
        analyzer's error exactly: its first unmatched receive in
        receiver-major replay order, same message.  An *interrupted*
        stream (deadline expiry cut the pump mid-trace) settles
        degraded-style instead: a receive whose send never arrived is
        expected when the sender's trace was only half pumped, so it is
        voided and counted, never raised.
        """
        settle_unmatched = self.degraded or interrupted
        starved: List[Tuple[int, int, int, ChannelKey]] = []
        for key, pending in self._pending_recvs.items():
            if not pending:
                continue
            if not settle_unmatched:
                _op, _recv, _seq, op_idx, recv_idx = pending[0]
                starved.append((key[1], op_idx, recv_idx, key))
                continue
            releases = self._releases[key[1]]
            for _op, _recv, seq, _op_idx, _recv_idx in pending:
                self.stats.unmatched_recvs += 1
                self._release(key[1], releases.resolve(seq, None))
        if starved:
            _rank, _op_idx, _recv_idx, key = min(starved)
            raise AnalysisError(
                f"rank {key[1]}: RECV from {key[0]} "
                f"(tag {key[2]}, comm {key[3]}) has no matching SEND"
            )
        self.stats.unmatched_sends += sum(
            len(queue) for queue in self._send_queues.values()
        )
        self.stats.metadata_bytes += self.stats.matched * PAIR_METADATA_BYTES
        for key in sorted(self._groups):
            self._emit_collective(key[0], key[1], self._groups[key])
        self._groups.clear()
