"""The severity cube: metric × call path × process.

Detected pattern instances are "classified by the type of behavior and
quantified by their significance" (paper Section 1) — each instance adds
its waiting time to the cell addressed by its pattern (metric), the call
path of the waiting MPI call, and the waiting process.  Aggregations over
any axis produce the three panels of the result browser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.errors import AnalysisError


@dataclass
class SeverityCube:
    """Sparse 3-D accumulator keyed ``metric → cpid → rank``."""

    data: Dict[str, Dict[int, Dict[int, float]]] = field(default_factory=dict)

    def add(self, metric: str, cpid: int, rank: int, value: float) -> None:
        """Accumulate *value* seconds into one cell (negatives rejected)."""
        if value <= 0.0:
            if value == 0.0:
                return
            raise AnalysisError(
                f"negative severity {value} for {metric} at cpid={cpid} rank={rank}"
            )
        # Hot path (one call per pattern hit): try/except on the populated
        # case avoids setdefault's per-call default-dict allocations.
        try:
            by_rank = self.data[metric][cpid]
        except KeyError:
            by_rank = self.data.setdefault(metric, {}).setdefault(cpid, {})
        by_rank[rank] = by_rank.get(rank, 0.0) + value

    # -- aggregations -------------------------------------------------------

    def metrics(self) -> List[str]:
        return sorted(self.data)

    def total(self, metric: str) -> float:
        """Sum over all call paths and ranks."""
        return sum(
            value
            for by_rank in self.data.get(metric, {}).values()
            for value in by_rank.values()
        )

    def by_callpath(self, metric: str) -> Dict[int, float]:
        return {
            cpid: sum(by_rank.values())
            for cpid, by_rank in self.data.get(metric, {}).items()
        }

    def by_rank(self, metric: str) -> Dict[int, float]:
        out: Dict[int, float] = {}
        for by_rank in self.data.get(metric, {}).values():
            for rank, value in by_rank.items():
                out[rank] = out.get(rank, 0.0) + value
        return out

    def at(self, metric: str, cpid: int) -> Dict[int, float]:
        """Per-rank distribution of one (metric, call path) cell row."""
        return dict(self.data.get(metric, {}).get(cpid, {}))

    def value(self, metric: str, cpid: int, rank: int) -> float:
        return self.data.get(metric, {}).get(cpid, {}).get(rank, 0.0)

    def cells(self, metric: str) -> Iterable[Tuple[int, int, float]]:
        for cpid, by_rank in self.data.get(metric, {}).items():
            for rank, value in by_rank.items():
                yield (cpid, rank, value)

    def top_callpaths(self, metric: str, n: int = 5) -> List[Tuple[int, float]]:
        ranked = sorted(
            self.by_callpath(metric).items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:n]

    # -- algebra support ------------------------------------------------------

    def copy(self) -> "SeverityCube":
        return SeverityCube(
            data={
                metric: {cpid: dict(by_rank) for cpid, by_rank in by_cp.items()}
                for metric, by_cp in self.data.items()
            }
        )

    def scale(self, factor: float) -> "SeverityCube":
        """New cube with every cell multiplied by *factor* (must be ≥ 0)."""
        if factor < 0:
            raise AnalysisError(f"scale factor must be non-negative, got {factor}")
        out = SeverityCube()
        for metric, by_cp in self.data.items():
            for cpid, by_rank in by_cp.items():
                for rank, value in by_rank.items():
                    out.add(metric, cpid, rank, value * factor)
        return out
