"""The severity cube: metric × call path × process.

Detected pattern instances are "classified by the type of behavior and
quantified by their significance" (paper Section 1) — each instance adds
its waiting time to the cell addressed by its pattern (metric), the call
path of the waiting MPI call, and the waiting process.  Aggregations over
any axis produce the three panels of the result browser.

Accumulation is **exact and order-free**: each cell keeps a Shewchuk
expansion (a short list of non-overlapping partial floats whose sum is the
cell's exact value), collapsed with :func:`math.fsum` on read.  The
collapsed value is the correctly rounded sum of the real numbers added, so
it depends only on the *multiset* of contributions — never on their order.
That property is what lets the single-pass streaming replay, the buffered
two-pass replay, and the parallel sharded merge feed the same cells in
three different orders and still agree bit for bit.
"""

from __future__ import annotations

from math import fsum
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import AnalysisError

#: One cell's exact accumulator: non-overlapping partials (Shewchuk 1997).
Partials = List[float]


def grow_expansion(partials: Partials, value: float) -> None:
    """Add *value* into the expansion in place (error-free transformation).

    After the call ``sum(partials)`` is exactly ``old exact sum + value``
    as a real number; the list stays short (its length is bounded by the
    number of distinct float exponents in play, a few entries in practice).
    """
    i = 0
    x = value
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


class SeverityCube:
    """Sparse 3-D accumulator keyed ``metric → cpid → rank``.

    ``data`` is the collapsed (plain nested ``dict``) view; two cubes fed
    the same contributions in any order have equal ``data``.
    """

    def __init__(
        self, data: Optional[Dict[str, Dict[int, Dict[int, float]]]] = None
    ) -> None:
        self._partials: Dict[str, Dict[int, Dict[int, Partials]]] = {}
        self._snapshot: Optional[Dict[str, Dict[int, Dict[int, float]]]] = None
        if data:
            for metric, by_cp in data.items():
                for cpid, by_rank in by_cp.items():
                    for rank, value in by_rank.items():
                        self.add(metric, cpid, rank, value)

    def add(self, metric: str, cpid: int, rank: int, value: float) -> None:
        """Accumulate *value* seconds into one cell (negatives rejected)."""
        if value <= 0.0:
            if value == 0.0:
                return
            raise AnalysisError(
                f"negative severity {value} for {metric} at cpid={cpid} rank={rank}"
            )
        # Hot path (one call per pattern hit): try/except on the populated
        # case avoids setdefault's per-call default-dict allocations.
        try:
            by_rank = self._partials[metric][cpid]
        except KeyError:
            by_rank = self._partials.setdefault(metric, {}).setdefault(cpid, {})
        partials = by_rank.get(rank)
        if partials is None:
            by_rank[rank] = [value]
        else:
            grow_expansion(partials, value)
        self._snapshot = None

    def move_cell(self, metric: str, old_cpid: int, new_cpid: int, rank: int) -> None:
        """Re-key one cell's accumulated partials under a new call-path id.

        Used by the streaming finalizer when per-rank call-path registries
        are renumbered into the global registry: the expansion moves
        wholesale, so no re-addition (and no rounding) happens.
        """
        by_cp = self._partials.get(metric)
        if not by_cp:
            return
        by_rank = by_cp.get(old_cpid)
        if by_rank is None or rank not in by_rank:
            return
        partials = by_rank.pop(rank)
        if not by_rank:
            del by_cp[old_cpid]
        target = by_cp.setdefault(new_cpid, {})
        existing = target.get(rank)
        if existing is None:
            target[rank] = partials
        else:
            for part in partials:
                grow_expansion(existing, part)
        self._snapshot = None

    def remap_callpaths(self, mapping: Dict[int, Dict[int, int]]) -> "SeverityCube":
        """New cube with per-rank local call-path ids rewritten to global ones.

        *mapping* is ``rank → local cpid → global cpid``.  Every cell of
        this cube was accumulated under the call-path registry of its own
        rank (patterns always charge a rank at its own op's path), so the
        cell's rank selects the mapping.  Partials move wholesale — no
        re-addition, no rounding — preserving exactness.
        """
        out = SeverityCube()
        for metric, by_cp in self._partials.items():
            target = out._partials.setdefault(metric, {})
            for cpid, by_rank in by_cp.items():
                for rank, partials in by_rank.items():
                    new_cpid = mapping[rank][cpid]
                    cell = target.setdefault(new_cpid, {})
                    existing = cell.get(rank)
                    if existing is None:
                        cell[rank] = partials
                    else:  # pragma: no cover - injective mappings never merge
                        for part in partials:
                            grow_expansion(existing, part)
        return out

    @property
    def data(self) -> Dict[str, Dict[int, Dict[int, float]]]:
        """Collapsed view: ``metric → cpid → rank → exact rounded seconds``."""
        if self._snapshot is None:
            self._snapshot = {
                metric: {
                    cpid: {rank: fsum(p) for rank, p in by_rank.items()}
                    for cpid, by_rank in by_cp.items()
                }
                for metric, by_cp in self._partials.items()
            }
        return self._snapshot

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SeverityCube):
            return NotImplemented
        return self.data == other.data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeverityCube(data={self.data!r})"

    # -- aggregations -------------------------------------------------------

    def metrics(self) -> List[str]:
        return sorted(self._partials)

    def total(self, metric: str) -> float:
        """Sum over all call paths and ranks."""
        return sum(
            value
            for by_rank in self.data.get(metric, {}).values()
            for value in by_rank.values()
        )

    def by_callpath(self, metric: str) -> Dict[int, float]:
        return {
            cpid: sum(by_rank.values())
            for cpid, by_rank in self.data.get(metric, {}).items()
        }

    def by_rank(self, metric: str) -> Dict[int, float]:
        out: Dict[int, float] = {}
        for by_rank in self.data.get(metric, {}).values():
            for rank, value in by_rank.items():
                out[rank] = out.get(rank, 0.0) + value
        return out

    def at(self, metric: str, cpid: int) -> Dict[int, float]:
        """Per-rank distribution of one (metric, call path) cell row."""
        return dict(self.data.get(metric, {}).get(cpid, {}))

    def value(self, metric: str, cpid: int, rank: int) -> float:
        return self.data.get(metric, {}).get(cpid, {}).get(rank, 0.0)

    def cells(self, metric: str) -> Iterable[Tuple[int, int, float]]:
        for cpid, by_rank in self.data.get(metric, {}).items():
            for rank, value in by_rank.items():
                yield (cpid, rank, value)

    def top_callpaths(self, metric: str, n: int = 5) -> List[Tuple[int, float]]:
        ranked = sorted(
            self.by_callpath(metric).items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:n]

    # -- algebra support ------------------------------------------------------

    def copy(self) -> "SeverityCube":
        return SeverityCube(data=self.data)

    def scale(self, factor: float) -> "SeverityCube":
        """New cube with every cell multiplied by *factor* (must be ≥ 0).

        Cells are collapsed before multiplying: only the rounded value is
        canonical, the partials are an internal representation.
        """
        if factor < 0:
            raise AnalysisError(f"scale factor must be non-negative, got {factor}")
        out = SeverityCube()
        for metric, by_cp in self.data.items():
            for cpid, by_rank in by_cp.items():
                for rank, value in by_rank.items():
                    out.add(metric, cpid, rank, value * factor)
        return out
