"""Point-to-point wait-state patterns.

*Late Sender* (paper Figure 4(a)): "a process is waiting in a blocking
receive operation that is posted earlier than the corresponding send
operation" — the waiting time is the interval between entering the
receiving call and the sender entering the sending call, clipped to the
receiving call's duration.

*Late Receiver*: the dual — a (rendezvous) send blocks until the receiver
posts its receive.  Eager sends return immediately, so their instances
contribute ~0 naturally without the analyzer needing to know the protocol
threshold.

The grid variants "simply check whether communication across different
metahosts has taken place" and attribute the same waiting time.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

from repro.analysis.matching import MatchedPair
from repro.analysis.patterns.base import (
    GRID_LATE_RECEIVER,
    GRID_LATE_SENDER,
    LATE_RECEIVER,
    LATE_SENDER,
    LATE_SENDER_WRONG_ORDER,
)


class P2PContribution(NamedTuple):
    """One pattern hit: severity located at (rank, call path)."""

    metric: str
    rank: int
    cpid: int
    value: float


class P2PPattern:
    """Base class: consumes matched pairs, emits contributions."""

    name: str = "abstract"

    def contributions(self, pair: MatchedPair) -> List[P2PContribution]:
        raise NotImplementedError


def late_sender_wait(pair: MatchedPair) -> float:
    """Waiting time of the Late Sender situation for one pair (≥ 0)."""
    return pair.late_sender_wait


def late_receiver_wait(pair: MatchedPair) -> float:
    """Waiting time of the Late Receiver situation for one pair (≥ 0)."""
    return pair.late_receiver_wait


class LateSenderPattern(P2PPattern):
    name = LATE_SENDER

    def contributions(self, pair: MatchedPair) -> List[P2PContribution]:
        wait = pair.late_sender_wait
        if wait <= 0.0:
            return []
        return [
            P2PContribution(self.name, pair.receiver_rank, pair.recv_op.cpid, wait)
        ]


class GridLateSenderPattern(P2PPattern):
    name = GRID_LATE_SENDER

    def contributions(self, pair: MatchedPair) -> List[P2PContribution]:
        if not pair.crosses_metahosts:
            return []
        wait = pair.late_sender_wait
        if wait <= 0.0:
            return []
        return [
            P2PContribution(self.name, pair.receiver_rank, pair.recv_op.cpid, wait)
        ]


class WrongOrderPattern(P2PPattern):
    """Late Sender whose message overtook an earlier-sent pending message.

    Stateful: tracks, per receiver and communicator, the latest send time
    already retrieved.  If a later receive matches an *earlier* send, the
    messages were consumed out of send order and the Late Sender waiting
    time is (also) attributed to this sub-pattern.
    """

    name = LATE_SENDER_WRONG_ORDER

    def __init__(self) -> None:
        self._latest_send: Dict[Tuple[int, int], float] = {}

    def contributions(self, pair: MatchedPair) -> List[P2PContribution]:
        key = (pair.receiver_rank, pair.recv.comm)
        previous = self._latest_send.get(key)
        this_send = pair.send.time
        self._latest_send[key] = max(this_send, previous) if previous is not None else this_send
        if previous is None or this_send >= previous:
            return []
        wait = pair.late_sender_wait
        if wait <= 0.0:
            return []
        return [
            P2PContribution(self.name, pair.receiver_rank, pair.recv_op.cpid, wait)
        ]


class LateReceiverPattern(P2PPattern):
    name = LATE_RECEIVER

    def contributions(self, pair: MatchedPair) -> List[P2PContribution]:
        wait = pair.late_receiver_wait
        if wait <= 0.0:
            return []
        return [P2PContribution(self.name, pair.sender_rank, pair.send_op.cpid, wait)]


class GridLateReceiverPattern(P2PPattern):
    name = GRID_LATE_RECEIVER

    def contributions(self, pair: MatchedPair) -> List[P2PContribution]:
        if not pair.crosses_metahosts:
            return []
        wait = pair.late_receiver_wait
        if wait <= 0.0:
            return []
        return [P2PContribution(self.name, pair.sender_rank, pair.send_op.cpid, wait)]


def default_p2p_patterns() -> List[P2PPattern]:
    """Fresh instances of the full point-to-point catalogue."""
    return [
        LateSenderPattern(),
        GridLateSenderPattern(),
        WrongOrderPattern(),
        LateReceiverPattern(),
        GridLateReceiverPattern(),
    ]
