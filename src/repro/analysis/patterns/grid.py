"""Fine-grained grid classification: severities per metahost combination.

The paper's future work (Section 6): "the current grid patterns only
distinguish between internal and external communication without
differentiating between different combinations of metahosts.  Here, a more
fine-grained classification would be desirable."  This module provides it:
every grid wait state is additionally attributed to the ordered pair
``(causing metahost, waiting metahost)``, so a report can say *who makes
whom wait* — e.g. that CAESAR's slower CPUs cause FH-BRS's Late Sender
waiting in Experiment 1.
"""

from __future__ import annotations

from math import fsum
from typing import Dict, List, Optional, Tuple

from repro.analysis.matching import CollectiveInstance, MatchedPair
from repro.analysis.patterns.base import (
    GRID_LATE_RECEIVER,
    GRID_LATE_SENDER,
    GRID_WAIT_AT_BARRIER,
    GRID_WAIT_AT_NXN,
    NXN_OPS,
)
from repro.analysis.severity import Partials, grow_expansion

#: Ordered (causing machine, waiting machine) pair.
MachinePair = Tuple[int, int]


class GridPairBreakdown:
    """Accumulator: metric → (causer, waiter) machine pair → seconds.

    Accumulation is exact and order-free, like the severity cube: each
    cell keeps a Shewchuk expansion and ``data`` is the collapsed view, so
    any replay order over the same contributions yields equal ``data``.
    """

    def __init__(self) -> None:
        self._partials: Dict[str, Dict[MachinePair, Partials]] = {}
        self._snapshot: Optional[Dict[str, Dict[MachinePair, float]]] = None

    def add(self, metric: str, causer: int, waiter: int, value: float) -> None:
        if value <= 0.0:
            return
        by_pair = self._partials.setdefault(metric, {})
        key = (causer, waiter)
        partials = by_pair.get(key)
        if partials is None:
            by_pair[key] = [value]
        else:
            grow_expansion(partials, value)
        self._snapshot = None

    @property
    def data(self) -> Dict[str, Dict[MachinePair, float]]:
        """Collapsed view: ``metric → (causer, waiter) → exact seconds``."""
        if self._snapshot is None:
            self._snapshot = {
                metric: {key: fsum(p) for key, p in by_pair.items()}
                for metric, by_pair in self._partials.items()
            }
        return self._snapshot

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GridPairBreakdown):
            return NotImplemented
        return self.data == other.data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GridPairBreakdown(data={self.data!r})"

    def pairs(self, metric: str) -> Dict[MachinePair, float]:
        return dict(self.data.get(metric, {}))

    def total(self, metric: str) -> float:
        return sum(self.data.get(metric, {}).values())

    def named(self, metric: str, machine_names: List[str]) -> Dict[Tuple[str, str], float]:
        """Pairs rendered with metahost names."""

        def name(machine: int) -> str:
            if 0 <= machine < len(machine_names):
                return machine_names[machine]
            return f"machine{machine}"

        return {
            (name(causer), name(waiter)): value
            for (causer, waiter), value in self.data.get(metric, {}).items()
        }

    def top_pair(self, metric: str) -> Tuple[MachinePair, float]:
        by_pair = self.data.get(metric, {})
        if not by_pair:
            return ((-1, -1), 0.0)
        key = max(by_pair, key=by_pair.get)  # type: ignore[arg-type]
        return key, by_pair[key]


def accumulate_p2p(breakdown: GridPairBreakdown, pair: MatchedPair) -> None:
    """Attribute a matched pair's grid waiting to its machine combination."""
    if not pair.crosses_metahosts:
        return
    sender_machine = pair.sender_location.machine
    receiver_machine = pair.receiver_location.machine
    ls = pair.late_sender_wait
    if ls > 0.0:
        # The sender's metahost causes the receiver's metahost to wait.
        breakdown.add(GRID_LATE_SENDER, sender_machine, receiver_machine, ls)
    lr = pair.late_receiver_wait
    if lr > 0.0:
        breakdown.add(GRID_LATE_RECEIVER, receiver_machine, sender_machine, lr)


def accumulate_collective(
    breakdown: GridPairBreakdown, instance: CollectiveInstance
) -> None:
    """Attribute collective grid waiting to (last-arriver's, waiter's) machines."""
    if not instance.spans_metahosts:
        return
    if instance.op_name == "MPI_Barrier":
        metric = GRID_WAIT_AT_BARRIER
    elif instance.op_name in NXN_OPS:
        metric = GRID_WAIT_AT_NXN
    else:
        return
    last_enter = instance.last_enter
    # The causing metahost is the one hosting the last arriver.
    causer = None
    for rank, (op, _) in instance.members.items():
        if op.enter == last_enter:
            causer = instance.locations[rank].machine
            break
    assert causer is not None  # last_enter comes from the members
    for rank, (op, _) in instance.members.items():
        wait = max(0.0, min(last_enter, op.exit) - op.enter)
        if wait > 0.0:
            breakdown.add(metric, causer, instance.locations[rank].machine, wait)
