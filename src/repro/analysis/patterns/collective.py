"""Collective wait-state patterns.

*Wait at N×N* (paper Figure 4(b)): n-to-n operations "exhibit an inherent
synchronization among all participants, that is, no process can finish the
operation until the last process has started it"; the pattern covers the
time each process spends in the operation until all have reached it.
*Wait at Barrier* is the barrier variant.  *Early Reduce* and *Late
Broadcast* cover the rooted cases, *Barrier Completion* the time needed to
leave a barrier after the last arrival.

Grid variants fire when "the entire communicator is searched for processes
differing in their machine (i.e., metahost) location component" — i.e. the
instance spans metahosts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.matching import CollectiveInstance
from repro.analysis.patterns.base import (
    BARRIER_COMPLETION,
    EARLY_REDUCE,
    EARLY_SCAN,
    GRID_WAIT_AT_BARRIER,
    GRID_WAIT_AT_NXN,
    LATE_BROADCAST,
    N_TO_1_OPS,
    NXN_COMPLETION,
    NXN_OPS,
    ONE_TO_N_OPS,
    PREFIX_OPS,
    WAIT_AT_BARRIER,
    WAIT_AT_NXN,
)


@dataclass(frozen=True)
class CollContribution:
    metric: str
    rank: int
    cpid: int
    value: float


class CollectivePattern:
    """Base class: consumes collective instances, emits contributions."""

    name: str = "abstract"

    def contributions(self, instance: CollectiveInstance) -> List[CollContribution]:
        raise NotImplementedError


def _wait_for_last(instance: CollectiveInstance) -> Dict[int, float]:
    """Per-rank time from own entry until the last participant's entry."""
    last = instance.last_enter
    waits: Dict[int, float] = {}
    for rank, (op, _) in instance.members.items():
        waits[rank] = max(0.0, min(last, op.exit) - op.enter)
    return waits


class WaitAtNxNPattern(CollectivePattern):
    name = WAIT_AT_NXN

    def contributions(self, instance: CollectiveInstance) -> List[CollContribution]:
        if instance.op_name not in NXN_OPS:
            return []
        return [
            CollContribution(self.name, rank, instance.members[rank][0].cpid, wait)
            for rank, wait in _wait_for_last(instance).items()
            if wait > 0.0
        ]


class GridWaitAtNxNPattern(CollectivePattern):
    name = GRID_WAIT_AT_NXN

    def contributions(self, instance: CollectiveInstance) -> List[CollContribution]:
        if instance.op_name not in NXN_OPS or not instance.spans_metahosts:
            return []
        return [
            CollContribution(self.name, rank, instance.members[rank][0].cpid, wait)
            for rank, wait in _wait_for_last(instance).items()
            if wait > 0.0
        ]


class WaitAtBarrierPattern(CollectivePattern):
    name = WAIT_AT_BARRIER

    def contributions(self, instance: CollectiveInstance) -> List[CollContribution]:
        if instance.op_name != "MPI_Barrier":
            return []
        return [
            CollContribution(self.name, rank, instance.members[rank][0].cpid, wait)
            for rank, wait in _wait_for_last(instance).items()
            if wait > 0.0
        ]


class GridWaitAtBarrierPattern(CollectivePattern):
    name = GRID_WAIT_AT_BARRIER

    def contributions(self, instance: CollectiveInstance) -> List[CollContribution]:
        if instance.op_name != "MPI_Barrier" or not instance.spans_metahosts:
            return []
        return [
            CollContribution(self.name, rank, instance.members[rank][0].cpid, wait)
            for rank, wait in _wait_for_last(instance).items()
            if wait > 0.0
        ]


class EarlyReducePattern(CollectivePattern):
    """Root of an n-to-1 operation waits for the last contributor."""

    name = EARLY_REDUCE

    def contributions(self, instance: CollectiveInstance) -> List[CollContribution]:
        if instance.op_name not in N_TO_1_OPS:
            return []
        root = instance.root
        if root not in instance.members:
            return []
        root_op = instance.members[root][0]
        last_other = max(
            (op.enter for rank, (op, _) in instance.members.items() if rank != root),
            default=root_op.enter,
        )
        wait = max(0.0, min(last_other, root_op.exit) - root_op.enter)
        if wait <= 0.0:
            return []
        return [CollContribution(self.name, root, root_op.cpid, wait)]


class LateBroadcastPattern(CollectivePattern):
    """Non-roots of a 1-to-n operation wait for the root to arrive."""

    name = LATE_BROADCAST

    def contributions(self, instance: CollectiveInstance) -> List[CollContribution]:
        if instance.op_name not in ONE_TO_N_OPS:
            return []
        root = instance.root
        if root not in instance.members:
            return []
        root_enter = instance.members[root][0].enter
        out: List[CollContribution] = []
        for rank, (op, _) in instance.members.items():
            if rank == root:
                continue
            wait = max(0.0, min(root_enter, op.exit) - op.enter)
            if wait > 0.0:
                out.append(CollContribution(self.name, rank, op.cpid, wait))
        return out


class EarlyScanPattern(CollectivePattern):
    """A prefix-reduction rank waits for the slowest lower-ranked member.

    MPI_Scan's result at comm rank *i* depends on ranks 0..i, so *i* cannot
    finish before the last of them has started; time spent waiting for a
    lower rank is Early Scan (higher ranks entering late cost nothing).
    Comm-rank order must be recovered from the communicator definition; the
    analyzer passes a global→comm-rank mapping via ``instance.comm_order``
    when available, and falls back to global-rank order (correct for
    world-communicator scans and rank-sorted subcomms).
    """

    name = EARLY_SCAN

    def contributions(self, instance: CollectiveInstance) -> List[CollContribution]:
        if instance.op_name not in PREFIX_OPS:
            return []
        order = instance.comm_order or sorted(instance.members)
        # Degraded-mode replay may exclude ranks whose traces did not
        # survive; comm_order still lists them, so walk only the members
        # actually present (their relative order is what matters).
        order = [r for r in order if r in instance.members]
        out: List[CollContribution] = []
        for index, rank in enumerate(order):
            op = instance.members[rank][0]
            prefix_last = max(
                instance.members[r][0].enter for r in order[: index + 1]
            )
            wait = max(0.0, min(prefix_last, op.exit) - op.enter)
            if wait > 0.0:
                out.append(CollContribution(self.name, rank, op.cpid, wait))
        return out


class NxNCompletionPattern(CollectivePattern):
    """Time spent finishing an n-to-n operation after the last arrival.

    The counterpart of Wait at N×N: together they partition the operation's
    duration into the synchronization phase (waiting for the last entry)
    and the data-movement phase after it.
    """

    name = NXN_COMPLETION

    def contributions(self, instance: CollectiveInstance) -> List[CollContribution]:
        if instance.op_name not in NXN_OPS:
            return []
        last = instance.last_enter
        out: List[CollContribution] = []
        for rank, (op, _) in instance.members.items():
            completion = max(0.0, op.exit - max(last, op.enter))
            if completion > 0.0:
                out.append(CollContribution(self.name, rank, op.cpid, completion))
        return out


class BarrierCompletionPattern(CollectivePattern):
    """Time spent leaving the barrier after everyone arrived."""

    name = BARRIER_COMPLETION

    def contributions(self, instance: CollectiveInstance) -> List[CollContribution]:
        if instance.op_name != "MPI_Barrier":
            return []
        last = instance.last_enter
        out: List[CollContribution] = []
        for rank, (op, _) in instance.members.items():
            completion = max(0.0, op.exit - max(last, op.enter))
            if completion > 0.0:
                out.append(CollContribution(self.name, rank, op.cpid, completion))
        return out


def default_collective_patterns() -> List[CollectivePattern]:
    """Fresh instances of the full collective catalogue."""
    return [
        WaitAtNxNPattern(),
        GridWaitAtNxNPattern(),
        NxNCompletionPattern(),
        EarlyScanPattern(),
        WaitAtBarrierPattern(),
        GridWaitAtBarrierPattern(),
        EarlyReducePattern(),
        LateBroadcastPattern(),
        BarrierCompletionPattern(),
    ]
