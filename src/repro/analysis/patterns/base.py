"""Metric identifiers and the metric specialization hierarchy.

The hierarchy mirrors KOJAK's: structural metrics (Time → Execution → MPI →
Communication / Synchronization) refine into wait-state patterns, and each
pattern's grid version is its child — "the hierarchy mirrors the hierarchy
used for the non-grid versions of our patterns" (paper Section 4).  A
metric's severity is a subset of its parent's, so the browser can show
exclusive values by subtracting children.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import PatternError

# Structural metrics.
TIME = "time"
EXECUTION = "execution"
MPI = "mpi"
COMMUNICATION = "mpi-communication"
P2P = "mpi-point-to-point"
COLLECTIVE = "mpi-collective"
SYNCHRONIZATION = "mpi-synchronization"

# Hybrid-threading metric.
IDLE_THREADS = "omp-idle-threads"

# Point-to-point wait-state patterns.
LATE_SENDER = "late-sender"
LATE_SENDER_WRONG_ORDER = "late-sender-wrong-order"
GRID_LATE_SENDER = "grid-late-sender"
LATE_RECEIVER = "late-receiver"
GRID_LATE_RECEIVER = "grid-late-receiver"

# Collective wait-state patterns.
WAIT_AT_NXN = "wait-at-nxn"
GRID_WAIT_AT_NXN = "grid-wait-at-nxn"
EARLY_REDUCE = "early-reduce"
LATE_BROADCAST = "late-broadcast"
EARLY_SCAN = "early-scan"
NXN_COMPLETION = "nxn-completion"
WAIT_AT_BARRIER = "wait-at-barrier"
GRID_WAIT_AT_BARRIER = "grid-wait-at-barrier"
BARRIER_COMPLETION = "barrier-completion"

#: Region names classified as point-to-point MPI calls.
P2P_REGIONS = frozenset(
    {
        "MPI_Send",
        "MPI_Ssend",
        "MPI_Recv",
        "MPI_Isend",
        "MPI_Irecv",
        "MPI_Wait",
        "MPI_Waitall",
        "MPI_Sendrecv",
    }
)
#: Region names classified as collective data movement.
COLLECTIVE_COMM_REGIONS = frozenset(
    {
        "MPI_Bcast",
        "MPI_Reduce",
        "MPI_Allreduce",
        "MPI_Gather",
        "MPI_Allgather",
        "MPI_Alltoall",
        "MPI_Scatter",
        "MPI_Scan",
    }
)
#: Region names classified as pure synchronization.
SYNC_REGIONS = frozenset({"MPI_Barrier"})

#: Collective op names with n-to-n semantics (Wait at N×N applies).
NXN_OPS = frozenset({"MPI_Allreduce", "MPI_Allgather", "MPI_Alltoall"})
#: n-to-1 semantics (Early Reduce applies).
N_TO_1_OPS = frozenset({"MPI_Reduce", "MPI_Gather"})
#: 1-to-n semantics (Late Broadcast applies).
ONE_TO_N_OPS = frozenset({"MPI_Bcast", "MPI_Scatter"})
#: Prefix semantics (Early Scan applies).
PREFIX_OPS = frozenset({"MPI_Scan"})


@dataclass(frozen=True)
class Metric:
    """One node of the metric specialization hierarchy."""

    name: str
    display: str
    parent: Optional[str]
    description: str = ""


#: The full hierarchy in display order (parents precede children).
METRICS: Tuple[Metric, ...] = (
    Metric(TIME, "Time", None, "Total wall-clock time of all processes"),
    Metric(EXECUTION, "Execution", TIME, "Time spent executing the application"),
    Metric(
        IDLE_THREADS,
        "Idle Threads",
        EXECUTION,
        "Thread-seconds idled inside fork-join regions waiting for the "
        "slowest team member",
    ),
    Metric(MPI, "MPI", EXECUTION, "Time spent inside MPI calls"),
    Metric(COMMUNICATION, "Communication", MPI, "MPI data movement"),
    Metric(P2P, "Point-to-point", COMMUNICATION, "Point-to-point communication"),
    Metric(
        LATE_SENDER,
        "Late Sender",
        P2P,
        "Blocking receive posted earlier than the matching send",
    ),
    Metric(
        GRID_LATE_SENDER,
        "Grid Late Sender",
        LATE_SENDER,
        "Late Sender with sender and receiver on different metahosts",
    ),
    Metric(
        LATE_SENDER_WRONG_ORDER,
        "Messages in Wrong Order",
        LATE_SENDER,
        "Late Sender while an earlier-sent message awaits retrieval",
    ),
    Metric(
        LATE_RECEIVER,
        "Late Receiver",
        P2P,
        "Blocking (rendezvous) send stalls until the receive is posted",
    ),
    Metric(
        GRID_LATE_RECEIVER,
        "Grid Late Receiver",
        LATE_RECEIVER,
        "Late Receiver across metahost boundaries",
    ),
    Metric(COLLECTIVE, "Collective", COMMUNICATION, "Collective communication"),
    Metric(
        EARLY_REDUCE,
        "Early Reduce",
        COLLECTIVE,
        "Root of an n-to-1 operation waits for the last contributor",
    ),
    Metric(
        LATE_BROADCAST,
        "Late Broadcast",
        COLLECTIVE,
        "Non-root of a 1-to-n operation waits for the root",
    ),
    Metric(
        WAIT_AT_NXN,
        "Wait at N x N",
        COLLECTIVE,
        "Time until all participants of an n-to-n operation have reached it",
    ),
    Metric(
        GRID_WAIT_AT_NXN,
        "Grid Wait at N x N",
        WAIT_AT_NXN,
        "Wait at N x N on a communicator spanning metahosts",
    ),
    Metric(
        EARLY_SCAN,
        "Early Scan",
        COLLECTIVE,
        "Rank in a prefix reduction waits for lower-ranked participants",
    ),
    Metric(
        NXN_COMPLETION,
        "N x N Completion",
        COLLECTIVE,
        "Time to finish an n-to-n operation after the last process arrived",
    ),
    Metric(SYNCHRONIZATION, "Synchronization", MPI, "Explicit barriers"),
    Metric(
        WAIT_AT_BARRIER,
        "Wait at Barrier",
        SYNCHRONIZATION,
        "Time until all participants have reached the barrier",
    ),
    Metric(
        GRID_WAIT_AT_BARRIER,
        "Grid Wait at Barrier",
        WAIT_AT_BARRIER,
        "Wait at Barrier on a communicator spanning metahosts",
    ),
    Metric(
        BARRIER_COMPLETION,
        "Barrier Completion",
        SYNCHRONIZATION,
        "Time to leave the barrier after the last process arrived",
    ),
)

_BY_NAME: Dict[str, Metric] = {m.name: m for m in METRICS}


def metric_tree() -> Tuple[Metric, ...]:
    """The full metric hierarchy (parents precede children)."""
    return METRICS


def metric_by_name(name: str) -> Metric:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise PatternError(f"unknown metric {name!r}") from None


def children_of(name: str) -> List[Metric]:
    return [m for m in METRICS if m.parent == name]


def classify_region(op_name: str) -> Optional[str]:
    """Structural metric an MPI region's time belongs to (leaf-most)."""
    if op_name in P2P_REGIONS:
        return P2P
    if op_name in COLLECTIVE_COMM_REGIONS:
        return COLLECTIVE
    if op_name in SYNC_REGIONS:
        return SYNCHRONIZATION
    return None
