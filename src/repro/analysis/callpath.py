"""Call-path reconstruction from ENTER/EXIT events.

A call path is the chain of region ids from the root of the call tree down
to the active region.  Paths are interned in a :class:`CallPathRegistry`
(id per distinct path, with a parent pointer), which becomes the middle
panel of the result browser — "the distribution of the selected pattern
across the call tree" (paper Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.trace.regions import RegionRegistry

#: Sentinel call-path id meaning "outside any region".
ROOT_PATH = -1


@dataclass(frozen=True)
class CallPath:
    """One interned call path."""

    cpid: int
    parent: int  # cpid of the parent path, or ROOT_PATH
    region: int  # region id of the innermost frame
    depth: int


class CallPathRegistry:
    """Interning table of call paths."""

    def __init__(self) -> None:
        self._paths: List[CallPath] = []
        self._index: Dict[Tuple[int, int], int] = {}  # (parent, region) -> cpid

    def __len__(self) -> int:
        return len(self._paths)

    def intern(self, parent: int, region: int) -> int:
        """Return the cpid of *parent*'s child for *region*, creating it."""
        key = (parent, region)
        cpid = self._index.get(key)
        if cpid is None:
            cpid = len(self._paths)
            self._paths.append(
                CallPath(
                    cpid=cpid,
                    parent=parent,
                    region=region,
                    depth=0 if parent == ROOT_PATH else self.path(parent).depth + 1,
                )
            )
            self._index[key] = cpid
        return cpid

    def path(self, cpid: int) -> CallPath:
        if not 0 <= cpid < len(self._paths):
            raise AnalysisError(f"unknown call path id {cpid}")
        return self._paths[cpid]

    def children(self, cpid: int) -> List[int]:
        return [p.cpid for p in self._paths if p.parent == cpid]

    def roots(self) -> List[int]:
        return [p.cpid for p in self._paths if p.parent == ROOT_PATH]

    def frames(self, cpid: int) -> List[int]:
        """Region ids from the root frame down to the innermost frame."""
        frames: List[int] = []
        while cpid != ROOT_PATH:
            path = self.path(cpid)
            frames.append(path.region)
            cpid = path.parent
        frames.reverse()
        return frames

    def render(self, cpid: int, regions: RegionRegistry, sep: str = "/") -> str:
        """Human-readable path string such as ``main/cgiteration/MPI_Recv``."""
        return sep.join(regions.name_of(r) for r in self.frames(cpid))

    def find(self, regions: RegionRegistry, *names: str) -> Optional[int]:
        """cpid of the exact path given by region *names*, or None."""
        cpid = ROOT_PATH
        for name in names:
            if name not in regions:
                return None
            region = regions.id_of(name)
            key = (cpid, region)
            nxt = self._index.get(key)
            if nxt is None:
                return None
            cpid = nxt
        return None if cpid == ROOT_PATH else cpid

    def all_paths(self) -> List[CallPath]:
        return list(self._paths)


class CallPathBuilder:
    """Per-process stack walker producing cpids as events stream by."""

    def __init__(self, registry: CallPathRegistry) -> None:
        self._registry = registry
        self._stack: List[int] = []

    @property
    def current(self) -> int:
        """cpid of the active path (ROOT_PATH when outside all regions)."""
        return self._stack[-1] if self._stack else ROOT_PATH

    @property
    def depth(self) -> int:
        return len(self._stack)

    def enter(self, region: int) -> int:
        cpid = self._registry.intern(self.current, region)
        self._stack.append(cpid)
        return cpid

    def exit(self, region: int) -> int:
        if not self._stack:
            raise AnalysisError("EXIT event without matching ENTER")
        cpid = self._stack.pop()
        actual = self._registry.path(cpid).region
        if actual != region:
            raise AnalysisError(
                f"EXIT region {region} does not match open region {actual}"
            )
        return cpid
