"""Per-process timelines: local trace events → synchronized MPI op instances.

This is the local phase of the replay: each analysis process walks its own
rank's events once, converting node-local stamps to master time with the
selected synchronization scheme, reconstructing call paths, accumulating
per-call-path exclusive time, and collecting one :class:`MPIOpInstance` per
completed MPI call (with its attached SEND/RECV/COLLEXIT records).  Nothing
here requires data from other ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, NamedTuple, Optional

from repro.analysis.callpath import ROOT_PATH, CallPathRegistry
from repro.clocks.sync import LinearConverter
from repro.errors import AnalysisError
from repro.ids import Location, NodeId, node_of
from repro.trace.events import Event, EventKind
from repro.trace.regions import RegionRegistry, is_mpi_region


class SendRecord(NamedTuple):
    """A SEND event with synchronized stamp, in trace order.

    The per-event records are ``NamedTuple``\\ s for the same reason the raw
    trace events are: ``build_timeline`` constructs one per communication
    record and tuple construction is several times cheaper than a frozen
    dataclass ``__init__``.
    """

    time: float
    dest: int  # global rank
    tag: int
    comm: int
    size: int


class RecvRecord(NamedTuple):
    """A RECV event with synchronized stamp, in trace order."""

    time: float
    source: int  # global rank
    tag: int
    comm: int
    size: int


class CollRecord(NamedTuple):
    """A COLLEXIT event with synchronized stamp."""

    time: float
    region: int
    comm: int
    root: int  # global rank
    sent: int
    recvd: int


class OmpRegionRecord(NamedTuple):
    """One fork-join region with synchronized times and team summary."""

    cpid: int
    enter: float
    exit: float
    nthreads: int
    busy_sum: float
    busy_max: float

    @property
    def idle_thread_seconds(self) -> float:
        """Thread-seconds idled waiting for the slowest team member."""
        return max(0.0, self.nthreads * self.busy_max - self.busy_sum)


@dataclass(slots=True)
class MPIOpInstance:
    """One completed MPI call of one rank, with synchronized times."""

    rank: int
    region: int
    op_name: str
    cpid: int
    enter: float
    exit: float
    sends: List[SendRecord] = field(default_factory=list)
    recvs: List[RecvRecord] = field(default_factory=list)
    coll: Optional[CollRecord] = None

    @property
    def duration(self) -> float:
        return max(0.0, self.exit - self.enter)


@dataclass
class ProcessTimeline:
    """Everything the replay needs about one rank, locally derived."""

    rank: int
    location: Location
    first_time: float
    last_time: float
    exclusive_time: Dict[int, float] = field(default_factory=dict)
    #: Number of times each call path was entered.
    visits: Dict[int, int] = field(default_factory=dict)
    mpi_ops: List[MPIOpInstance] = field(default_factory=list)
    omp_regions: List[OmpRegionRecord] = field(default_factory=list)
    event_count: int = 0

    @property
    def node(self) -> NodeId:
        return node_of(self.location)

    @property
    def machine(self) -> int:
        return self.location.machine

    @property
    def total_time(self) -> float:
        return max(0.0, self.last_time - self.first_time)


def build_timeline(
    rank: int,
    location: Location,
    events: Iterable[Event],
    converter: LinearConverter,
    callpaths: CallPathRegistry,
    regions: RegionRegistry,
) -> ProcessTimeline:
    """Walk one rank's events and produce its synchronized timeline.

    *events* may be any iterable — in particular the streaming decoder of
    :meth:`~repro.trace.archive.ArchiveReader.stream_trace`, so a trace is
    consumed record by record without a full in-memory event list.

    This is the replay's innermost loop (every event of every rank passes
    through once), so it dispatches on the integer event kind, inlines the
    affine clock conversion, and caches the per-region MPI classification
    instead of resolving region names per event.
    """
    timeline = ProcessTimeline(
        rank=rank, location=location, first_time=0.0, last_time=0.0
    )
    # Per-open-frame state: (cpid, region, enter_sync, child_time, instance)
    frame_stack: List[List] = []
    first: Optional[float] = None
    last = 0.0
    count = 0

    slope = converter.slope
    intercept = converter.intercept
    intern = callpaths.intern
    visits = timeline.visits
    exclusive_time = timeline.exclusive_time
    mpi_ops_append = timeline.mpi_ops.append
    #: region id → region name when it is an MPI region, else None.
    mpi_name: Dict[int, Optional[str]] = {}
    kind_enter, kind_exit = int(EventKind.ENTER), int(EventKind.EXIT)
    kind_send, kind_recv = int(EventKind.SEND), int(EventKind.RECV)
    kind_collexit, kind_omp = int(EventKind.COLLEXIT), int(EventKind.OMPREGION)

    for event in events:
        t = event.time * slope + intercept
        if first is None:
            first = t
        last = t
        count += 1
        kind = event.kind
        if kind == kind_enter:
            region = event.region
            cpid = intern(frame_stack[-1][0] if frame_stack else ROOT_PATH, region)
            visits[cpid] = visits.get(cpid, 0) + 1
            name = mpi_name.get(region, _UNRESOLVED)
            if name is _UNRESOLVED:
                resolved = regions.name_of(region)
                name = resolved if is_mpi_region(resolved) else None
                mpi_name[region] = name
            instance = None
            if name is not None:
                instance = MPIOpInstance(
                    rank=rank,
                    region=region,
                    op_name=name,
                    cpid=cpid,
                    enter=t,
                    exit=t,
                )
            frame_stack.append([cpid, region, t, 0.0, instance])
        elif kind == kind_exit:
            if not frame_stack:
                raise AnalysisError(f"rank {rank}: EXIT without open frame")
            cpid, region, enter_t, child_time, instance = frame_stack.pop()
            if region != event.region:
                raise AnalysisError(
                    f"rank {rank}: EXIT region {event.region} does not match "
                    f"open region {region}"
                )
            duration = t - enter_t
            if duration < 0.0:
                duration = 0.0
            exclusive = duration - child_time
            exclusive_time[cpid] = exclusive_time.get(cpid, 0.0) + (
                exclusive if exclusive > 0.0 else 0.0
            )
            if frame_stack:
                frame_stack[-1][3] += duration
            if instance is not None:
                instance.exit = t
                mpi_ops_append(instance)
        elif kind == kind_send:
            instance = _open_mpi_instance(frame_stack, rank, "SEND")
            instance.sends.append(
                SendRecord(t, event.dest, event.tag, event.comm, event.size)
            )
        elif kind == kind_recv:
            instance = _open_mpi_instance(frame_stack, rank, "RECV")
            instance.recvs.append(
                RecvRecord(t, event.source, event.tag, event.comm, event.size)
            )
        elif kind == kind_collexit:
            instance = _open_mpi_instance(frame_stack, rank, "COLLEXIT")
            instance.coll = CollRecord(
                t, event.region, event.comm, event.root, event.sent, event.recvd
            )
        elif kind == kind_omp:
            if not frame_stack or frame_stack[-1][1] != event.region:
                raise AnalysisError(
                    f"rank {rank}: OMPREGION record outside its region frame"
                )
            cpid, _region, enter_t, _child, _inst = frame_stack[-1]
            timeline.omp_regions.append(
                OmpRegionRecord(
                    cpid=cpid,
                    enter=enter_t,
                    exit=t,
                    nthreads=event.nthreads,
                    busy_sum=event.busy_sum,
                    busy_max=event.busy_max,
                )
            )
        else:  # pragma: no cover - closed event union
            raise AnalysisError(f"rank {rank}: unknown event {event!r}")

    if frame_stack:
        raise AnalysisError(
            f"rank {rank}: {len(frame_stack)} regions still open at trace end"
        )
    timeline.event_count = count
    timeline.first_time = first if first is not None else 0.0
    timeline.last_time = last if first is not None else 0.0
    return timeline


#: Cache-miss sentinel for the per-region MPI-name cache (None is a valid hit).
_UNRESOLVED = object()


def _open_mpi_instance(frame_stack: List[List], rank: int, what: str) -> MPIOpInstance:
    if not frame_stack or frame_stack[-1][4] is None:
        raise AnalysisError(
            f"rank {rank}: {what} record outside an MPI region"
        )
    return frame_stack[-1][4]


def total_time_of(timelines: Dict[int, ProcessTimeline]) -> float:
    """Aggregate wall time over all ranks (the Figure 6 percentage base)."""
    return sum(tl.total_time for tl in timelines.values())
