"""Per-process timelines: local trace events → synchronized MPI op instances.

This is the local phase of the replay: each analysis process walks its own
rank's events once, converting node-local stamps to master time with the
selected synchronization scheme, reconstructing call paths, accumulating
per-call-path exclusive time, and collecting one :class:`MPIOpInstance` per
completed MPI call (with its attached SEND/RECV/COLLEXIT records).  Nothing
here requires data from other ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.callpath import CallPathBuilder, CallPathRegistry
from repro.clocks.sync import LinearConverter
from repro.errors import AnalysisError
from repro.ids import Location, NodeId, node_of
from repro.trace.events import (
    CollExitEvent,
    OmpRegionEvent,
    EnterEvent,
    Event,
    ExitEvent,
    RecvEvent,
    SendEvent,
)
from repro.trace.regions import RegionRegistry, is_mpi_region


@dataclass(frozen=True)
class SendRecord:
    """A SEND event with synchronized stamp, in trace order."""

    time: float
    dest: int  # global rank
    tag: int
    comm: int
    size: int


@dataclass(frozen=True)
class RecvRecord:
    """A RECV event with synchronized stamp, in trace order."""

    time: float
    source: int  # global rank
    tag: int
    comm: int
    size: int


@dataclass(frozen=True)
class CollRecord:
    """A COLLEXIT event with synchronized stamp."""

    time: float
    region: int
    comm: int
    root: int  # global rank
    sent: int
    recvd: int


@dataclass(frozen=True)
class OmpRegionRecord:
    """One fork-join region with synchronized times and team summary."""

    cpid: int
    enter: float
    exit: float
    nthreads: int
    busy_sum: float
    busy_max: float

    @property
    def idle_thread_seconds(self) -> float:
        """Thread-seconds idled waiting for the slowest team member."""
        return max(0.0, self.nthreads * self.busy_max - self.busy_sum)


@dataclass
class MPIOpInstance:
    """One completed MPI call of one rank, with synchronized times."""

    rank: int
    region: int
    op_name: str
    cpid: int
    enter: float
    exit: float
    sends: List[SendRecord] = field(default_factory=list)
    recvs: List[RecvRecord] = field(default_factory=list)
    coll: Optional[CollRecord] = None

    @property
    def duration(self) -> float:
        return max(0.0, self.exit - self.enter)


@dataclass
class ProcessTimeline:
    """Everything the replay needs about one rank, locally derived."""

    rank: int
    location: Location
    first_time: float
    last_time: float
    exclusive_time: Dict[int, float] = field(default_factory=dict)
    #: Number of times each call path was entered.
    visits: Dict[int, int] = field(default_factory=dict)
    mpi_ops: List[MPIOpInstance] = field(default_factory=list)
    omp_regions: List[OmpRegionRecord] = field(default_factory=list)
    event_count: int = 0

    @property
    def node(self) -> NodeId:
        return node_of(self.location)

    @property
    def machine(self) -> int:
        return self.location.machine

    @property
    def total_time(self) -> float:
        return max(0.0, self.last_time - self.first_time)


def build_timeline(
    rank: int,
    location: Location,
    events: Sequence[Event],
    converter: LinearConverter,
    callpaths: CallPathRegistry,
    regions: RegionRegistry,
) -> ProcessTimeline:
    """Walk one rank's events and produce its synchronized timeline."""
    builder = CallPathBuilder(callpaths)
    timeline = ProcessTimeline(
        rank=rank, location=location, first_time=0.0, last_time=0.0
    )
    # Per-open-frame state: (cpid, region, enter_sync, child_time, instance)
    frame_stack: List[List] = []
    first: Optional[float] = None
    last = 0.0

    for event in events:
        t = converter.convert(event.time)
        if first is None:
            first = t
        last = t
        if isinstance(event, EnterEvent):
            cpid = builder.enter(event.region)
            timeline.visits[cpid] = timeline.visits.get(cpid, 0) + 1
            name = regions.name_of(event.region)
            instance = None
            if is_mpi_region(name):
                instance = MPIOpInstance(
                    rank=rank,
                    region=event.region,
                    op_name=name,
                    cpid=cpid,
                    enter=t,
                    exit=t,
                )
            frame_stack.append([cpid, event.region, t, 0.0, instance])
        elif isinstance(event, ExitEvent):
            builder.exit(event.region)
            if not frame_stack:
                raise AnalysisError(f"rank {rank}: EXIT without open frame")
            cpid, region, enter_t, child_time, instance = frame_stack.pop()
            if region != event.region:
                raise AnalysisError(
                    f"rank {rank}: EXIT region {event.region} does not match "
                    f"open region {region}"
                )
            duration = max(0.0, t - enter_t)
            exclusive = max(0.0, duration - child_time)
            timeline.exclusive_time[cpid] = (
                timeline.exclusive_time.get(cpid, 0.0) + exclusive
            )
            if frame_stack:
                frame_stack[-1][3] += duration
            if instance is not None:
                instance.exit = t
                timeline.mpi_ops.append(instance)
        elif isinstance(event, SendEvent):
            instance = _open_mpi_instance(frame_stack, rank, "SEND")
            instance.sends.append(
                SendRecord(t, event.dest, event.tag, event.comm, event.size)
            )
        elif isinstance(event, RecvEvent):
            instance = _open_mpi_instance(frame_stack, rank, "RECV")
            instance.recvs.append(
                RecvRecord(t, event.source, event.tag, event.comm, event.size)
            )
        elif isinstance(event, CollExitEvent):
            instance = _open_mpi_instance(frame_stack, rank, "COLLEXIT")
            instance.coll = CollRecord(
                t, event.region, event.comm, event.root, event.sent, event.recvd
            )
        elif isinstance(event, OmpRegionEvent):
            if not frame_stack or frame_stack[-1][1] != event.region:
                raise AnalysisError(
                    f"rank {rank}: OMPREGION record outside its region frame"
                )
            cpid, _region, enter_t, _child, _inst = frame_stack[-1]
            timeline.omp_regions.append(
                OmpRegionRecord(
                    cpid=cpid,
                    enter=enter_t,
                    exit=t,
                    nthreads=event.nthreads,
                    busy_sum=event.busy_sum,
                    busy_max=event.busy_max,
                )
            )
        else:  # pragma: no cover - closed event union
            raise AnalysisError(f"rank {rank}: unknown event {event!r}")
        timeline.event_count += 1

    if frame_stack:
        raise AnalysisError(
            f"rank {rank}: {len(frame_stack)} regions still open at trace end"
        )
    timeline.first_time = first if first is not None else 0.0
    timeline.last_time = last if first is not None else 0.0
    return timeline


def _open_mpi_instance(frame_stack: List[List], rank: int, what: str) -> MPIOpInstance:
    if not frame_stack or frame_stack[-1][4] is None:
        raise AnalysisError(
            f"rank {rank}: {what} record outside an MPI region"
        )
    return frame_stack[-1][4]


def total_time_of(timelines: Dict[int, ProcessTimeline]) -> float:
    """Aggregate wall time over all ranks (the Figure 6 percentage base)."""
    return sum(tl.total_time for tl in timelines.values())
