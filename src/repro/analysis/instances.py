"""Per-process timelines: local trace events → synchronized MPI op instances.

This is the local phase of the replay: each analysis process walks its own
rank's events once, converting node-local stamps to master time with the
selected synchronization scheme, reconstructing call paths, accumulating
per-call-path exclusive time, and collecting one :class:`MPIOpInstance` per
completed MPI call (with its attached SEND/RECV/COLLEXIT records).  Nothing
here requires data from other ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, NamedTuple, Optional

from repro.analysis.callpath import ROOT_PATH, CallPathRegistry
from repro.clocks.sync import LinearConverter
from repro.errors import AnalysisError
from repro.ids import Location, NodeId, node_of
from repro.trace.events import Event, EventKind
from repro.trace.regions import RegionRegistry, is_mpi_region


class SendRecord(NamedTuple):
    """A SEND event with synchronized stamp, in trace order.

    The per-event records are ``NamedTuple``\\ s for the same reason the raw
    trace events are: ``build_timeline`` constructs one per communication
    record and tuple construction is several times cheaper than a frozen
    dataclass ``__init__``.
    """

    time: float
    dest: int  # global rank
    tag: int
    comm: int
    size: int


class RecvRecord(NamedTuple):
    """A RECV event with synchronized stamp, in trace order."""

    time: float
    source: int  # global rank
    tag: int
    comm: int
    size: int


class CollRecord(NamedTuple):
    """A COLLEXIT event with synchronized stamp."""

    time: float
    region: int
    comm: int
    root: int  # global rank
    sent: int
    recvd: int


class OmpRegionRecord(NamedTuple):
    """One fork-join region with synchronized times and team summary."""

    cpid: int
    enter: float
    exit: float
    nthreads: int
    busy_sum: float
    busy_max: float

    @property
    def idle_thread_seconds(self) -> float:
        """Thread-seconds idled waiting for the slowest team member."""
        return max(0.0, self.nthreads * self.busy_max - self.busy_sum)


@dataclass(slots=True)
class MPIOpInstance:
    """One completed MPI call of one rank, with synchronized times."""

    rank: int
    region: int
    op_name: str
    cpid: int
    enter: float
    exit: float
    sends: List[SendRecord] = field(default_factory=list)
    recvs: List[RecvRecord] = field(default_factory=list)
    coll: Optional[CollRecord] = None

    @property
    def duration(self) -> float:
        return max(0.0, self.exit - self.enter)


@dataclass
class ProcessTimeline:
    """Everything the replay needs about one rank, locally derived."""

    rank: int
    location: Location
    first_time: float
    last_time: float
    exclusive_time: Dict[int, float] = field(default_factory=dict)
    #: Number of times each call path was entered.
    visits: Dict[int, int] = field(default_factory=dict)
    mpi_ops: List[MPIOpInstance] = field(default_factory=list)
    omp_regions: List[OmpRegionRecord] = field(default_factory=list)
    event_count: int = 0

    @property
    def node(self) -> NodeId:
        return node_of(self.location)

    @property
    def machine(self) -> int:
        return self.location.machine

    @property
    def total_time(self) -> float:
        return max(0.0, self.last_time - self.first_time)


class TimelineBuilder:
    """Incremental form of :func:`build_timeline`: feed events, then finish.

    The streaming replay drives one builder per rank from its global event
    pump, so a rank's timeline state advances event by event while other
    ranks' events interleave.  Two hooks make bounded-memory analysis
    possible:

    * ``on_op`` is called with each :class:`MPIOpInstance` the moment its
      region EXITs (its attached records are final at that point), and
      ``on_omp`` with each :class:`OmpRegionRecord` as it is recorded;
    * ``retain=False`` skips appending those instances to the timeline's
      ``mpi_ops``/``omp_regions`` lists — the hooks are then the only
      consumers, and memory stays bounded by the *open* frames instead of
      the whole trace.

    The per-event arithmetic, dispatch order, and error messages are
    exactly those of the one-shot :func:`build_timeline` (which is now a
    thin wrapper), so both paths produce identical timelines.
    """

    __slots__ = (
        "rank",
        "timeline",
        "retain",
        "on_op",
        "on_omp",
        "op_count",
        "_frame_stack",
        "_first",
        "_last",
        "_count",
        "_slope",
        "_intercept",
        "_intern",
        "_regions",
        "_mpi_name",
        "_finished",
    )

    def __init__(
        self,
        rank: int,
        location: Location,
        converter: LinearConverter,
        callpaths: CallPathRegistry,
        regions: RegionRegistry,
        retain: bool = True,
        on_op=None,
        on_omp=None,
    ) -> None:
        self.rank = rank
        self.timeline = ProcessTimeline(
            rank=rank, location=location, first_time=0.0, last_time=0.0
        )
        self.retain = retain
        self.on_op = on_op
        self.on_omp = on_omp
        #: Completed MPI ops so far — the op index of the *next* completed
        #: op, identical to its position in a retained ``mpi_ops`` list.
        self.op_count = 0
        # Per-open-frame state: [cpid, region, enter_sync, child_time, instance]
        self._frame_stack: List[List] = []
        self._first: Optional[float] = None
        self._last = 0.0
        self._count = 0
        self._slope = converter.slope
        self._intercept = converter.intercept
        self._intern = callpaths.intern
        self._regions = regions
        #: region id → region name when it is an MPI region, else None.
        self._mpi_name: Dict[int, Optional[str]] = {}
        self._finished = False

    def feed(self, event: Event) -> None:
        """Process one event (the replay's innermost dispatch)."""
        rank = self.rank
        frame_stack = self._frame_stack
        timeline = self.timeline
        t = event.time * self._slope + self._intercept
        if self._first is None:
            self._first = t
        self._last = t
        self._count += 1
        kind = event.kind
        if kind == _KIND_ENTER:
            region = event.region
            cpid = self._intern(
                frame_stack[-1][0] if frame_stack else ROOT_PATH, region
            )
            visits = timeline.visits
            visits[cpid] = visits.get(cpid, 0) + 1
            name = self._mpi_name.get(region, _UNRESOLVED)
            if name is _UNRESOLVED:
                resolved = self._regions.name_of(region)
                name = resolved if is_mpi_region(resolved) else None
                self._mpi_name[region] = name
            instance = None
            if name is not None:
                instance = MPIOpInstance(
                    rank=rank,
                    region=region,
                    op_name=name,
                    cpid=cpid,
                    enter=t,
                    exit=t,
                )
            frame_stack.append([cpid, region, t, 0.0, instance])
        elif kind == _KIND_EXIT:
            if not frame_stack:
                raise AnalysisError(f"rank {rank}: EXIT without open frame")
            cpid, region, enter_t, child_time, instance = frame_stack.pop()
            if region != event.region:
                raise AnalysisError(
                    f"rank {rank}: EXIT region {event.region} does not match "
                    f"open region {region}"
                )
            duration = t - enter_t
            if duration < 0.0:
                duration = 0.0
            exclusive = duration - child_time
            exclusive_time = timeline.exclusive_time
            exclusive_time[cpid] = exclusive_time.get(cpid, 0.0) + (
                exclusive if exclusive > 0.0 else 0.0
            )
            if frame_stack:
                frame_stack[-1][3] += duration
            if instance is not None:
                instance.exit = t
                if self.retain:
                    timeline.mpi_ops.append(instance)
                self.op_count += 1
                if self.on_op is not None:
                    self.on_op(instance)
        elif kind == _KIND_SEND:
            instance = _open_mpi_instance(frame_stack, rank, "SEND")
            instance.sends.append(
                SendRecord(t, event.dest, event.tag, event.comm, event.size)
            )
        elif kind == _KIND_RECV:
            instance = _open_mpi_instance(frame_stack, rank, "RECV")
            instance.recvs.append(
                RecvRecord(t, event.source, event.tag, event.comm, event.size)
            )
        elif kind == _KIND_COLLEXIT:
            instance = _open_mpi_instance(frame_stack, rank, "COLLEXIT")
            instance.coll = CollRecord(
                t, event.region, event.comm, event.root, event.sent, event.recvd
            )
        elif kind == _KIND_OMP:
            if not frame_stack or frame_stack[-1][1] != event.region:
                raise AnalysisError(
                    f"rank {rank}: OMPREGION record outside its region frame"
                )
            cpid, _region, enter_t, _child, _inst = frame_stack[-1]
            record = OmpRegionRecord(
                cpid=cpid,
                enter=enter_t,
                exit=t,
                nthreads=event.nthreads,
                busy_sum=event.busy_sum,
                busy_max=event.busy_max,
            )
            if self.retain:
                timeline.omp_regions.append(record)
            if self.on_omp is not None:
                self.on_omp(record)
        else:  # pragma: no cover - closed event union
            raise AnalysisError(f"rank {rank}: unknown event {event!r}")

    def finish(self, *, force: bool = False) -> ProcessTimeline:
        """Validate trace closure and return the completed timeline.

        ``force=True`` tolerates open region frames — the deadline-expired
        pump stops mid-trace, so an interrupted rank legitimately ends with
        its stack non-empty.  Open frames are discarded (their enclosing
        time never settled), not synthesized.
        """
        if self._frame_stack:
            if not force:
                raise AnalysisError(
                    f"rank {self.rank}: {len(self._frame_stack)} regions still "
                    "open at trace end"
                )
            self._frame_stack.clear()
        timeline = self.timeline
        timeline.event_count = self._count
        timeline.first_time = self._first if self._first is not None else 0.0
        timeline.last_time = self._last if self._first is not None else 0.0
        self._finished = True
        return timeline


def build_timeline(
    rank: int,
    location: Location,
    events: Iterable[Event],
    converter: LinearConverter,
    callpaths: CallPathRegistry,
    regions: RegionRegistry,
) -> ProcessTimeline:
    """Walk one rank's events and produce its synchronized timeline.

    *events* may be any iterable — in particular the streaming decoder of
    :meth:`~repro.trace.archive.ArchiveReader.stream_trace`, so a trace is
    consumed record by record without a full in-memory event list.

    One-shot wrapper over :class:`TimelineBuilder` (the incremental form
    the streaming replay drives event by event).
    """
    builder = TimelineBuilder(rank, location, converter, callpaths, regions)
    feed = builder.feed
    for event in events:
        feed(event)
    return builder.finish()


#: Cache-miss sentinel for the per-region MPI-name cache (None is a valid hit).
_UNRESOLVED = object()

#: Integer event kinds, hoisted so the dispatch compares int to int.
_KIND_ENTER = int(EventKind.ENTER)
_KIND_EXIT = int(EventKind.EXIT)
_KIND_SEND = int(EventKind.SEND)
_KIND_RECV = int(EventKind.RECV)
_KIND_COLLEXIT = int(EventKind.COLLEXIT)
_KIND_OMP = int(EventKind.OMPREGION)


def _open_mpi_instance(frame_stack: List[List], rank: int, what: str) -> MPIOpInstance:
    if not frame_stack or frame_stack[-1][4] is None:
        raise AnalysisError(
            f"rank {rank}: {what} record outside an MPI region"
        )
    return frame_stack[-1][4]


def total_time_of(timelines: Dict[int, ProcessTimeline]) -> float:
    """Aggregate wall time over all ranks (the Figure 6 percentage base)."""
    return sum(tl.total_time for tl in timelines.values())


def remap_timeline(timeline: ProcessTimeline, remap: Dict[int, int]) -> None:
    """Rewrite a timeline's local call-path ids in place.

    Shared by the two renumbering finalizers: the parallel merge (shard-
    local → global ids) and the streaming replay (rank-local → global ids).
    Dict insertion order is preserved, so downstream iteration order is
    unchanged.
    """
    timeline.exclusive_time = {
        remap[cpid]: value for cpid, value in timeline.exclusive_time.items()
    }
    timeline.visits = {remap[cpid]: n for cpid, n in timeline.visits.items()}
    for op in timeline.mpi_ops:
        op.cpid = remap[op.cpid]
    if timeline.omp_regions:
        timeline.omp_regions = [
            omp._replace(cpid=remap[omp.cpid]) for omp in timeline.omp_regions
        ]
