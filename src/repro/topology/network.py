"""Network links and the stochastic latency model.

The metacomputer exposes a *hierarchy of varying latencies and bandwidths*
(paper Section 1): fast internal interconnects inside each metahost, and
external links between metahosts whose latency may be an order of magnitude
(in VIOLA: two orders, Table 1) larger.

Per-message latency is modeled as::

    latency = base + Exponential(jitter)

i.e. a deterministic propagation/protocol floor plus a heavy-ish, strictly
positive jitter term capturing OS and switch interference.  The exponential
tail matters: the accuracy of remote-clock-reading offset measurements is
governed by the *asymmetry* of forward and backward jitter, so a realistic
tail reproduces the paper's observation that offset measurements over the
external network are far less precise than over internal networks.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import TopologyError


class LinkClass(enum.Enum):
    """Classification of a network hop.

    ``LOOPBACK``  — intra-node communication (shared memory).
    ``INTERNAL``  — between nodes of one metahost.
    ``EXTERNAL``  — between metahosts (LAN or WAN).
    """

    LOOPBACK = "loopback"
    INTERNAL = "internal"
    EXTERNAL = "external"


@dataclass(frozen=True)
class LinkSpec:
    """Static description of a (directed-symmetric) network link.

    Parameters
    ----------
    latency_s:
        Mean one-way message latency in seconds (the paper's Table 1 means).
    jitter_s:
        Scale of the exponential jitter term.  The standard deviation of the
        resulting latency equals ``jitter_s``; Table 1's standard deviations
        are used for the VIOLA presets.
    bandwidth_bps:
        Sustained bandwidth in bytes per second.
    link_class:
        Hop classification, see :class:`LinkClass`.
    name:
        Optional human-readable name (e.g. ``"FZJ<->FH-BRS"``).
    congestion_prob / congestion_scale_s / congestion_block_s:
        Slowly-varying *directional* congestion episodes: within each
        ``congestion_block_s`` window, a given (endpoint-pair, direction)
        path carries an extra queueing delay that is exponential with scale
        ``congestion_scale_s`` with probability ``congestion_prob`` (zero
        otherwise).  This models interference at shared path segments and
        per-node NIC endpoints — the paper notes external networks "may
        suffer ... from interference with unrelated traffic".  Because the
        bias is (a) strictly positive and (b) constant across the few
        milliseconds of an offset-measurement window, it delays messages
        without ever reordering them, yet it survives minimum-RTT filtering
        and makes clock-offset measurements across such links systematically
        less accurate — the effect the hierarchical synchronization scheme
        exists to contain.
    """

    latency_s: float
    jitter_s: float
    bandwidth_bps: float
    link_class: LinkClass = LinkClass.INTERNAL
    name: str = ""
    congestion_prob: float = 0.0
    congestion_scale_s: float = 0.0
    congestion_block_s: float = 2.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise TopologyError(f"latency must be non-negative, got {self.latency_s}")
        if self.jitter_s < 0:
            raise TopologyError(f"jitter must be non-negative, got {self.jitter_s}")
        if self.bandwidth_bps <= 0:
            raise TopologyError(
                f"bandwidth must be positive, got {self.bandwidth_bps}"
            )
        if not 0.0 <= self.congestion_prob <= 1.0:
            raise TopologyError(
                f"congestion probability must be in [0, 1]: {self.congestion_prob}"
            )
        if self.congestion_scale_s < 0 or self.congestion_block_s <= 0:
            raise TopologyError("congestion scale/block must be non-negative/positive")

    @property
    def base_latency_s(self) -> float:
        """Deterministic latency floor (mean minus the jitter mean)."""
        return max(0.0, self.latency_s - self.jitter_s)


class ExponentialJitterStream:
    """Batched façade over a generator's scalar ``exponential`` draws.

    Pre-draws blocks of *standard* exponential variates with one vectorized
    numpy call and hands them out one at a time, scaled on demand — the
    per-message ``Generator.exponential(scale)`` dispatch was the single
    hottest call in the simulator.  Byte-identity with scalar draws holds
    because numpy computes ``exponential(scale)`` as
    ``scale * standard_exponential()`` and a size-``n`` vectorized draw
    consumes the bit-generator stream exactly like ``n`` scalar draws.

    :meth:`sync` rewinds the underlying generator to the position an
    all-scalar consumer would have reached (restoring the pre-block state
    and redrawing only the consumed count), so code that shares the
    generator *after* the simulation — the clock-offset measurement phase —
    continues on the byte-identical stream.  Do not draw from the wrapped
    generator directly while a block is outstanding.
    """

    __slots__ = ("_rng", "_block", "_buf", "_next", "_state")

    def __init__(self, rng: np.random.Generator, block: int = 1024) -> None:
        if block < 1:
            raise TopologyError(f"jitter block size must be positive: {block}")
        self._rng = rng
        self._block = block
        self._buf: list = []
        self._next = 0
        self._state = None

    def exponential(self, scale: float) -> float:
        """One draw from ``Exponential(scale)`` — same stream as the scalar API."""
        i = self._next
        buf = self._buf
        if i >= len(buf):
            self._state = self._rng.bit_generator.state
            buf = self._rng.standard_exponential(self._block).tolist()
            self._buf = buf
            i = 0
        self._next = i + 1
        return scale * buf[i]

    def sync(self) -> None:
        """Rewind the wrapped generator to the scalar-equivalent position."""
        consumed = self._next
        if self._buf and consumed < len(self._buf):
            self._rng.bit_generator.state = self._state
            if consumed:
                self._rng.standard_exponential(consumed)
        self._buf = []
        self._next = 0
        self._state = None


class LatencyModel:
    """Samples per-message transfer times for a :class:`LinkSpec`.

    The model is ``base + Exp(jitter) [+ congestion(when, direction)]
    + size / bandwidth``.  Sampling is driven by a caller-provided
    generator — a :class:`numpy.random.Generator` or the batched
    :class:`ExponentialJitterStream` over one — so that whole simulations
    are reproducible from one seed.

    The congestion component deliberately does NOT draw from that stream:
    the bias must be a pure function of (link, direction, time block) so
    that every model instance — the simulator's and, independently, any
    cost model or test probing the same link — sees the same episode
    pattern regardless of how many latency samples were drawn in between.
    Each (direction, block) bias is derived from a CRC32-keyed generator;
    the cache keeps only the most recently queried block per direction
    (simulation time moves forward, so older blocks are dead weight and an
    unbounded cache grew with run length).  Re-deriving an evicted block is
    always byte-identical — purity makes eviction free of semantics.
    """

    def __init__(self, spec: LinkSpec) -> None:
        self.spec = spec
        #: direction -> (time block, bias); one entry per direction, ever.
        self._bias_cache: Dict[str, Tuple[int, float]] = {}

    def _derive_bias(self, direction: str, block: int) -> float:
        """Pure (link, direction, block) -> bias; CRC32-keyed, stream-free."""
        spec = self.spec
        seed = zlib.crc32(f"{spec.name}|{direction}|{block}".encode("utf-8"))
        draw = np.random.Generator(np.random.PCG64(seed))
        if draw.random() >= spec.congestion_prob:
            return 0.0
        return float(draw.exponential(spec.congestion_scale_s))

    def congestion_bias(self, when: Optional[float], direction: Optional[str]) -> float:
        """Directional queueing bias active at time *when* (0 if unmodeled)."""
        spec = self.spec
        if spec.congestion_prob <= 0.0 or spec.congestion_scale_s <= 0.0:
            return 0.0
        if when is None or direction is None:
            return 0.0
        block = int(when // spec.congestion_block_s)
        cached = self._bias_cache.get(direction)
        if cached is not None and cached[0] == block:
            return cached[1]
        bias = self._derive_bias(direction, block)
        self._bias_cache[direction] = (block, bias)
        return bias

    def sample_latency(
        self,
        rng,
        when: Optional[float] = None,
        direction: Optional[str] = None,
    ) -> float:
        """Draw one one-way latency sample in seconds."""
        spec = self.spec
        latency = spec.latency_s
        if spec.jitter_s > 0.0:
            latency = spec.base_latency_s + rng.exponential(spec.jitter_s)
        return latency + self.congestion_bias(when, direction)

    def transfer_time(
        self,
        size_bytes: int,
        rng,
        when: Optional[float] = None,
        direction: Optional[str] = None,
    ) -> float:
        """Draw the total time to move *size_bytes* over the link."""
        if size_bytes < 0:
            raise TopologyError(f"message size must be non-negative: {size_bytes}")
        return (
            self.sample_latency(rng, when, direction)
            + size_bytes / self.spec.bandwidth_bps
        )

    def mean_transfer_time(self, size_bytes: int) -> float:
        """Expected transfer time (no sampling); useful for cost models.

        Includes the expected congestion bias
        ``congestion_prob * congestion_scale_s`` — the sampled
        :meth:`transfer_time` always carried it, and a mean that silently
        dropped it skewed cost-model predictions on congested external
        links (e.g. the ping-drop penalty of offset measurements).
        """
        if size_bytes < 0:
            raise TopologyError(f"message size must be non-negative: {size_bytes}")
        spec = self.spec
        return (
            spec.latency_s
            + spec.congestion_prob * spec.congestion_scale_s
            + size_bytes / spec.bandwidth_bps
        )


def loopback_link(bandwidth_bps: float = 4e9, latency_s: float = 0.5e-6) -> LinkSpec:
    """Link spec for intra-node (shared-memory) transfers."""
    return LinkSpec(
        latency_s=latency_s,
        jitter_s=latency_s * 0.05,
        bandwidth_bps=bandwidth_bps,
        link_class=LinkClass.LOOPBACK,
        name="loopback",
    )
