"""Topology presets encoding the paper's testbeds.

``viola_testbed``  — the VIOLA section of Figure 5 / Section 5: three sites
(CAESAR, FH-BRS, FZJ-XD1) joined by 10 Gbps optical links.  Link latencies
and jitters are taken from the paper's own Table 1 measurements; the CAESAR
internal network (not listed in Table 1) is given Gigabit-Ethernet-like
values.

``ibm_aix_power``  — the homogeneous IBM AIX POWER machine of Experiment 2
(Table 3): one metahost, nodes with 16 CPUs.

CPU speed factors encode the paper's observation that functions without MPI
calls ran about twice as fast on FH-BRS as on CAESAR; the XD1's 2.2 GHz
Opterons sit close to FH-BRS.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.topology.machine import CpuSpec, homogeneous_metahost
from repro.topology.metacomputer import Metacomputer
from repro.topology.network import LinkClass, LinkSpec

#: Table 1 figures (seconds).
FZJ_FHBRS_LATENCY_S = 9.88e-4
FZJ_FHBRS_JITTER_S = 3.86e-6
FZJ_INTERNAL_LATENCY_S = 2.15e-5
FZJ_INTERNAL_JITTER_S = 8.14e-7
FHBRS_INTERNAL_LATENCY_S = 4.44e-5
FHBRS_INTERNAL_JITTER_S = 3.60e-7

#: 10 Gbps optical WAN between each pair of VIOLA sites, in bytes/s.
VIOLA_WAN_BANDWIDTH_BPS = 10e9 / 8

#: Canonical metahost names used by the experiment configurations.
CAESAR = "CAESAR"
FH_BRS = "FH-BRS"
FZJ_XD1 = "FZJ-XD1"
IBM_POWER = "IBM-AIX-POWER"


def viola_testbed(
    caesar_speed: float = 1.0,
    fhbrs_speed: float = 2.0,
    xd1_speed: float = 2.0,
    node_scale: int = 1,
) -> Metacomputer:
    """The three-site VIOLA metacomputer used for the paper's experiments.

    Parameters let tests vary the heterogeneity; the defaults reproduce the
    paper's reported ~2x compute-speed gap between FH-BRS and CAESAR.
    ``node_scale`` multiplies every site's node count (CPU and network
    characteristics unchanged) so scaled-up runs — e.g. the pipeline
    benchmark's 128-rank configuration, which needs more than FH-BRS's six
    physical nodes — fit on a proportionally larger testbed.
    """
    if node_scale < 1:
        raise ValueError(f"node_scale must be >= 1, got {node_scale}")
    caesar = homogeneous_metahost(
        CAESAR,
        node_count=32 * node_scale,
        cpus_per_node=2,
        cpu=CpuSpec("Intel Xeon", 2.6, speed_factor=caesar_speed),
        internal_latency_s=6.0e-5,
        internal_latency_jitter_s=1.5e-6,
        internal_bandwidth_bps=125e6,  # Gigabit Ethernet
        interconnect="Gigabit Ethernet",
    )
    fhbrs = homogeneous_metahost(
        FH_BRS,
        node_count=6 * node_scale,
        cpus_per_node=4,
        cpu=CpuSpec("AMD Opteron", 2.0, speed_factor=fhbrs_speed),
        internal_latency_s=FHBRS_INTERNAL_LATENCY_S,
        internal_latency_jitter_s=FHBRS_INTERNAL_JITTER_S,
        internal_bandwidth_bps=250e6,  # usock over Myrinet
        interconnect="usock over Myrinet",
    )
    xd1 = homogeneous_metahost(
        FZJ_XD1,
        node_count=60 * node_scale,
        cpus_per_node=2,
        cpu=CpuSpec("AMD Opteron", 2.2, speed_factor=xd1_speed),
        internal_latency_s=FZJ_INTERNAL_LATENCY_S,
        internal_latency_jitter_s=FZJ_INTERNAL_JITTER_S,
        internal_bandwidth_bps=1.0e9,  # usock over RapidArray
        interconnect="usock over RapidArray",
    )
    hosts = [caesar, fhbrs, xd1]
    links: Dict[Tuple[int, int], LinkSpec] = {}
    for a in range(3):
        for b in range(a + 1, 3):
            links[(a, b)] = LinkSpec(
                latency_s=FZJ_FHBRS_LATENCY_S,
                jitter_s=FZJ_FHBRS_JITTER_S,
                bandwidth_bps=VIOLA_WAN_BANDWIDTH_BPS,
                link_class=LinkClass.EXTERNAL,
                name=f"{hosts[a].name}<->{hosts[b].name}",
                # Endpoint/NIC queueing episodes on the wide-area paths:
                # these make offset measurements across the external network
                # systematically less precise than across internal networks
                # (the effect Table 2 quantifies) while only ever *delaying*
                # application messages.
                congestion_prob=0.5,
                congestion_scale_s=45e-6,
                congestion_block_s=2.0,
            )
    return Metacomputer(hosts, external_links=links)


def ibm_aix_power(
    node_count: int = 2,
    cpus_per_node: int = 16,
    speed: float = 2.0,
) -> Metacomputer:
    """The homogeneous IBM AIX POWER host of Experiment 2 (Table 3).

    The paper places both submodels on one node with 16 processes each;
    the default of two nodes leaves room for exactly that configuration.
    """
    host = homogeneous_metahost(
        IBM_POWER,
        node_count=node_count,
        cpus_per_node=cpus_per_node,
        cpu=CpuSpec("IBM POWER", 1.7, speed_factor=speed),
        internal_latency_s=1.2e-5,
        internal_latency_jitter_s=5e-7,
        internal_bandwidth_bps=1.4e9,  # HPS-like switch
        interconnect="IBM High Performance Switch",
        has_global_clock=False,
    )
    return Metacomputer([host])


def single_cluster(
    name: str = "cluster",
    node_count: int = 8,
    cpus_per_node: int = 2,
    speed: float = 1.0,
    internal_latency_s: float = 2e-5,
    internal_latency_jitter_s: float = 8e-7,
    internal_bandwidth_bps: float = 250e6,
) -> Metacomputer:
    """A generic single-metahost machine for tests and examples."""
    host = homogeneous_metahost(
        name,
        node_count=node_count,
        cpus_per_node=cpus_per_node,
        cpu=CpuSpec("generic", 2.0, speed_factor=speed),
        internal_latency_s=internal_latency_s,
        internal_latency_jitter_s=internal_latency_jitter_s,
        internal_bandwidth_bps=internal_bandwidth_bps,
    )
    return Metacomputer([host])


def uniform_metacomputer(
    metahost_count: int = 2,
    node_count: int = 4,
    cpus_per_node: int = 2,
    speed: float = 1.0,
    internal_latency_s: float = 2e-5,
    internal_latency_jitter_s: float = 8e-7,
    external_latency_s: float = 1e-3,
    external_jitter_s: float = 4e-6,
    external_bandwidth_bps: float = VIOLA_WAN_BANDWIDTH_BPS,
    external_congestion_prob: float = 0.5,
    external_congestion_scale_s: float = 40e-6,
) -> Metacomputer:
    """A symmetric multi-metahost machine for tests and ablations."""
    hosts = [
        homogeneous_metahost(
            f"metahost{i}",
            node_count=node_count,
            cpus_per_node=cpus_per_node,
            cpu=CpuSpec("generic", 2.0, speed_factor=speed),
            internal_latency_s=internal_latency_s,
            internal_latency_jitter_s=internal_latency_jitter_s,
            internal_bandwidth_bps=250e6,
        )
        for i in range(metahost_count)
    ]
    external = LinkSpec(
        latency_s=external_latency_s,
        jitter_s=external_jitter_s,
        bandwidth_bps=external_bandwidth_bps,
        link_class=LinkClass.EXTERNAL,
        name="uniform external",
        congestion_prob=external_congestion_prob,
        congestion_scale_s=external_congestion_scale_s,
    )
    return Metacomputer(hosts, default_external=external)
