"""Metacomputer topology substrate.

Models the hardware the paper ran on: metahosts (independent clusters) made
of SMP nodes with per-CPU speed factors, internal interconnects, and external
(wide-area) links joining metahosts into a single metacomputer (paper
Figure 2).  Presets encode the VIOLA testbed of Figure 5 / Table 1 and the
homogeneous IBM AIX POWER host of Experiment 2.
"""

from repro.topology.machine import CpuSpec, NodeSpec, Metahost
from repro.topology.network import LinkSpec, LatencyModel, LinkClass
from repro.topology.metacomputer import Metacomputer, Placement, ProcessSlot
from repro.topology.presets import (
    viola_testbed,
    ibm_aix_power,
    single_cluster,
    uniform_metacomputer,
)

__all__ = [
    "CpuSpec",
    "NodeSpec",
    "Metahost",
    "LinkSpec",
    "LatencyModel",
    "LinkClass",
    "Metacomputer",
    "Placement",
    "ProcessSlot",
    "viola_testbed",
    "ibm_aix_power",
    "single_cluster",
    "uniform_metacomputer",
]
