"""Machine model: CPUs, SMP nodes, and metahosts.

A *metahost* is one constituent parallel system of a metacomputer — a
cluster or parallel computer owned by a single organization (paper
Section 4).  Metahosts differ in node count, CPUs per node, CPU type and
speed, and internal network characteristics; that heterogeneity is exactly
what complicates load balancing and what the grid patterns expose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import TopologyError


@dataclass(frozen=True)
class CpuSpec:
    """Description of one CPU type.

    Parameters
    ----------
    model:
        Human-readable CPU model, e.g. ``"Intel Xeon"``.
    clock_ghz:
        Nominal clock frequency in GHz.
    speed_factor:
        Relative application-visible speed.  ``1.0`` is the reference speed;
        a process on a CPU with ``speed_factor == 2.0`` finishes the same
        amount of work in half the time.  The paper observed that functions
        without MPI calls ran about two times faster on the FH-BRS cluster
        than on CAESAR, which we encode through this factor.
    """

    model: str
    clock_ghz: float
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise TopologyError(f"clock_ghz must be positive, got {self.clock_ghz}")
        if self.speed_factor <= 0:
            raise TopologyError(
                f"speed_factor must be positive, got {self.speed_factor}"
            )

    def work_seconds(self, work: float) -> float:
        """Wall-clock seconds this CPU needs for *work* reference-seconds."""
        return work / self.speed_factor


@dataclass(frozen=True)
class NodeSpec:
    """One SMP node: a CPU type replicated ``cpus`` times.

    Nodes are the clock granularity of the system: all CPUs of a node share
    one hardware clock, so offset measurements are carried out per node.
    """

    cpus: int
    cpu: CpuSpec

    def __post_init__(self) -> None:
        if self.cpus <= 0:
            raise TopologyError(f"node must have at least one CPU, got {self.cpus}")


@dataclass(frozen=True)
class Metahost:
    """One constituent machine of the metacomputer.

    Parameters
    ----------
    name:
        Human-readable metahost name (the paper's second environment
        variable), e.g. ``"FZJ"``.
    nodes:
        The SMP nodes making up the metahost.
    internal_latency_s / internal_latency_jitter_s:
        Mean one-way latency and jitter scale of the internal interconnect.
    internal_bandwidth_bps:
        Internal network bandwidth in bytes per second.
    interconnect:
        Name of the interconnect technology (documentation only).
    has_global_clock:
        When True the metahost provides hardware clock synchronization
        between its nodes; the hierarchical scheme then skips the
        slave-to-local-master measurements (paper Section 4).
    """

    name: str
    nodes: List[NodeSpec] = field(default_factory=list)
    internal_latency_s: float = 20e-6
    internal_latency_jitter_s: float = 1e-6
    internal_bandwidth_bps: float = 125e6
    interconnect: str = "ethernet"
    has_global_clock: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("metahost needs a non-empty name")
        if not self.nodes:
            raise TopologyError(f"metahost {self.name!r} needs at least one node")
        if self.internal_latency_s < 0 or self.internal_latency_jitter_s < 0:
            raise TopologyError("latencies must be non-negative")
        if self.internal_bandwidth_bps <= 0:
            raise TopologyError("bandwidth must be positive")

    @property
    def node_count(self) -> int:
        """Number of SMP nodes."""
        return len(self.nodes)

    @property
    def cpu_count(self) -> int:
        """Total number of CPUs across all nodes."""
        return sum(node.cpus for node in self.nodes)

    def node(self, index: int) -> NodeSpec:
        """Return the node at *index*, raising :class:`TopologyError` if absent."""
        if not 0 <= index < len(self.nodes):
            raise TopologyError(
                f"metahost {self.name!r} has no node {index} "
                f"(valid: 0..{len(self.nodes) - 1})"
            )
        return self.nodes[index]


def homogeneous_metahost(
    name: str,
    node_count: int,
    cpus_per_node: int,
    cpu: CpuSpec,
    **network_kwargs: object,
) -> Metahost:
    """Build a metahost whose nodes all share one :class:`CpuSpec`.

    Convenience used by the presets; ``network_kwargs`` forward to
    :class:`Metahost`.
    """
    if node_count <= 0:
        raise TopologyError(f"node_count must be positive, got {node_count}")
    nodes = [NodeSpec(cpus=cpus_per_node, cpu=cpu) for _ in range(node_count)]
    return Metahost(name=name, nodes=nodes, **network_kwargs)  # type: ignore[arg-type]
