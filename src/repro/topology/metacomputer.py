"""The metacomputer: metahosts joined by external links, plus process placement.

Mirrors the paper's Figure 2: several independent, potentially heterogeneous
parallel systems (metahosts) connected by external network links into a
single unit.  Routing is two-level — a message between two processes uses
the loopback path (same node), the internal network of their common
metahost, or the external link between their metahosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RoutingError, TopologyError
from repro.ids import Location, NodeId
from repro.topology.machine import CpuSpec, Metahost
from repro.topology.network import LatencyModel, LinkClass, LinkSpec, loopback_link


@dataclass(frozen=True)
class ProcessSlot:
    """Where one MPI rank runs: its location plus the CPU executing it."""

    rank: int
    location: Location
    cpu: CpuSpec

    @property
    def machine(self) -> int:
        return self.location.machine

    @property
    def node(self) -> NodeId:
        return NodeId(self.location.machine, self.location.node)


class Metacomputer:
    """A set of metahosts plus the external links joining them.

    Parameters
    ----------
    metahosts:
        The constituent machines, indexed 0..len-1; index order defines the
        numeric metahost identifier (the paper's first environment variable).
    external_links:
        Mapping from unordered machine-index pairs to :class:`LinkSpec`.
        Missing pairs either fall back to *default_external* or raise
        :class:`RoutingError` on first use.
    default_external:
        Optional fallback link used for metahost pairs without an explicit
        entry.
    """

    def __init__(
        self,
        metahosts: Sequence[Metahost],
        external_links: Optional[Dict[Tuple[int, int], LinkSpec]] = None,
        default_external: Optional[LinkSpec] = None,
        loopback: Optional[LinkSpec] = None,
    ) -> None:
        if not metahosts:
            raise TopologyError("a metacomputer needs at least one metahost")
        names = [m.name for m in metahosts]
        if len(set(names)) != len(names):
            raise TopologyError(f"duplicate metahost names: {names}")
        self.metahosts: List[Metahost] = list(metahosts)
        self._external: Dict[Tuple[int, int], LinkSpec] = {}
        for (a, b), spec in (external_links or {}).items():
            self._check_machine(a)
            self._check_machine(b)
            if a == b:
                raise TopologyError(
                    f"external link must join two distinct metahosts, got ({a},{b})"
                )
            self._external[self._key(a, b)] = spec
        self.default_external = default_external
        self.loopback = loopback or loopback_link()
        self._internal_links: List[LinkSpec] = [
            LinkSpec(
                latency_s=m.internal_latency_s,
                jitter_s=m.internal_latency_jitter_s,
                bandwidth_bps=m.internal_bandwidth_bps,
                link_class=LinkClass.INTERNAL,
                name=f"{m.name} (internal)",
            )
            for m in self.metahosts
        ]
        self._models: Dict[int, LatencyModel] = {}

    # -- structure ---------------------------------------------------------

    @property
    def machine_count(self) -> int:
        return len(self.metahosts)

    @property
    def is_metacomputing(self) -> bool:
        """True when there is more than one machine (paper Section 3)."""
        return len(self.metahosts) > 1

    def metahost(self, machine: int) -> Metahost:
        self._check_machine(machine)
        return self.metahosts[machine]

    def metahost_index(self, name: str) -> int:
        """Return the numeric identifier of the metahost called *name*."""
        for i, m in enumerate(self.metahosts):
            if m.name == name:
                return i
        raise TopologyError(f"no metahost named {name!r}")

    def machine_names(self) -> List[str]:
        return [m.name for m in self.metahosts]

    @property
    def total_cpus(self) -> int:
        return sum(m.cpu_count for m in self.metahosts)

    def nodes(self) -> List[NodeId]:
        """All node identifiers in (machine, node) order."""
        return [
            NodeId(mi, ni)
            for mi, m in enumerate(self.metahosts)
            for ni in range(m.node_count)
        ]

    # -- routing -----------------------------------------------------------

    def link_between(self, a: Location, b: Location) -> LinkSpec:
        """The link a message between locations *a* and *b* traverses."""
        self._check_machine(a.machine)
        self._check_machine(b.machine)
        if a.same_node(b):
            return self.loopback
        if a.same_machine(b):
            return self._internal_links[a.machine]
        return self.external_link(a.machine, b.machine)

    def external_link(self, machine_a: int, machine_b: int) -> LinkSpec:
        """The external link between two metahosts."""
        self._check_machine(machine_a)
        self._check_machine(machine_b)
        if machine_a == machine_b:
            raise RoutingError(
                f"machines {machine_a} and {machine_b} are the same metahost"
            )
        spec = self._external.get(self._key(machine_a, machine_b))
        if spec is None:
            spec = self.default_external
        if spec is None:
            names = (
                self.metahosts[machine_a].name,
                self.metahosts[machine_b].name,
            )
            raise RoutingError(f"no external link between {names[0]} and {names[1]}")
        return spec

    def internal_link(self, machine: int) -> LinkSpec:
        """The internal-interconnect link of one metahost."""
        self._check_machine(machine)
        return self._internal_links[machine]

    def latency_model(self, spec: LinkSpec) -> LatencyModel:
        """Memoized :class:`LatencyModel` for a link spec."""
        key = id(spec)
        model = self._models.get(key)
        if model is None:
            model = LatencyModel(spec)
            self._models[key] = model
        return model

    def link_class(self, a: Location, b: Location) -> LinkClass:
        return self.link_between(a, b).link_class

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def _check_machine(self, machine: int) -> None:
        if not 0 <= machine < len(self.metahosts):
            raise TopologyError(
                f"no metahost with index {machine} "
                f"(valid: 0..{len(self.metahosts) - 1})"
            )


@dataclass
class Placement:
    """Assignment of MPI ranks to CPUs of the metacomputer.

    Built via :meth:`block` (fill metahosts in order) or
    :meth:`from_counts` (explicit ``(machine, nodes, procs_per_node)``
    blocks, mirroring the paper's Table 3 configurations).
    """

    metacomputer: Metacomputer
    slots: List[ProcessSlot] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.slots)

    def slot(self, rank: int) -> ProcessSlot:
        if not 0 <= rank < len(self.slots):
            raise TopologyError(f"no rank {rank} (world size {len(self.slots)})")
        return self.slots[rank]

    def location(self, rank: int) -> Location:
        return self.slot(rank).location

    def machine_of(self, rank: int) -> int:
        return self.slot(rank).location.machine

    def ranks_on_machine(self, machine: int) -> List[int]:
        return [s.rank for s in self.slots if s.location.machine == machine]

    def ranks_by_node(self) -> Dict[NodeId, List[int]]:
        by_node: Dict[NodeId, List[int]] = {}
        for s in self.slots:
            by_node.setdefault(s.node, []).append(s.rank)
        return by_node

    def machines_used(self) -> List[int]:
        return sorted({s.location.machine for s in self.slots})

    def spans_metahosts(self, ranks: Optional[Sequence[int]] = None) -> bool:
        """True when the given ranks (default: all) live on >1 metahost."""
        pool = self.slots if ranks is None else [self.slot(r) for r in ranks]
        return len({s.location.machine for s in pool}) > 1

    # -- constructors ------------------------------------------------------

    @classmethod
    def block(cls, metacomputer: Metacomputer, nprocs: int) -> "Placement":
        """Fill metahosts in index order, one rank per CPU."""
        if nprocs <= 0:
            raise TopologyError(f"need at least one process, got {nprocs}")
        if nprocs > metacomputer.total_cpus:
            raise TopologyError(
                f"{nprocs} processes do not fit on {metacomputer.total_cpus} CPUs"
            )
        slots: List[ProcessSlot] = []
        rank = 0
        for mi, host in enumerate(metacomputer.metahosts):
            for ni, node in enumerate(host.nodes):
                for ci in range(node.cpus):
                    if rank >= nprocs:
                        break
                    slots.append(
                        ProcessSlot(
                            rank=rank,
                            location=Location(mi, ni, rank, 0),
                            cpu=node.cpu,
                        )
                    )
                    rank += 1
        return cls(metacomputer=metacomputer, slots=slots)

    @classmethod
    def from_counts(
        cls,
        metacomputer: Metacomputer,
        blocks: Sequence[Tuple[str, int, int]],
    ) -> "Placement":
        """Place ranks according to ``(metahost_name, nodes, procs_per_node)``.

        Blocks are consumed in order; ranks are assigned consecutively.
        This is the shape of the paper's Table 3 (e.g. Partrace on
        ``("FZJ-XD1", 8, 2)``).  Nodes are taken from the start of each
        metahost; a metahost may appear in several blocks as long as the
        total node usage fits.
        """
        slots: List[ProcessSlot] = []
        rank = 0
        used_nodes: Dict[int, int] = {}
        for name, node_count, ppn in blocks:
            mi = metacomputer.metahost_index(name)
            host = metacomputer.metahosts[mi]
            first = used_nodes.get(mi, 0)
            if first + node_count > host.node_count:
                raise TopologyError(
                    f"block ({name}, {node_count} nodes) exceeds the "
                    f"{host.node_count} nodes of {name}"
                )
            for ni in range(first, first + node_count):
                node = host.nodes[ni]
                if ppn > node.cpus:
                    raise TopologyError(
                        f"{ppn} processes/node exceed the {node.cpus} CPUs of "
                        f"node {ni} on {name}"
                    )
                for _ in range(ppn):
                    slots.append(
                        ProcessSlot(
                            rank=rank,
                            location=Location(mi, ni, rank, 0),
                            cpu=node.cpu,
                        )
                    )
                    rank += 1
            used_nodes[mi] = first + node_count
        if not slots:
            raise TopologyError("placement produced no process slots")
        return cls(metacomputer=metacomputer, slots=slots)
