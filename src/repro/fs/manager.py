"""Runtime archive management (paper Section 4).

Guarantees the existence of an archive directory on each metahost without
assuming a shared file system, using the hierarchical protocol:

1. Rank zero attempts to create a single archive directory; the outcome is
   broadcast, and everyone aborts early if the creation itself failed.
2. Each metahost appoints a local master that checks whether it can *see*
   the directory (i.e. whether the path resolves to storage that actually
   holds it).  If not — because the path resides on a different file
   system — the local master creates another one on its own storage.
3. Every process checks visibility; the results are combined with an
   all-reduce.  If any process still cannot see an archive directory the
   measurement is aborted (:class:`~repro.errors.ArchiveCreationAborted`).

The protocol "offers a high degree of scalability because it avoids a
larger number of simultaneous attempts to create the same directory" —
we record each step so tests can assert exactly one creation attempt per
distinct file system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.errors import ArchiveCreationAborted, FileSystemError
from repro.fs.filesystem import MountNamespace


@dataclass(frozen=True)
class ProtocolStep:
    """One observable action of the archive-management protocol."""

    actor_rank: int
    machine: int
    action: str  # "create", "check", "create-local", "allreduce", "abort"
    detail: str = ""


@dataclass
class ArchiveManagementOutcome:
    """Result of :func:`ensure_archives`.

    ``archive_fs_of_machine`` maps each metahost to the name of the file
    system actually holding its archive directory — distinct metahosts may
    share one (global file system) or each use their own (partial archives).
    """

    path: str
    archive_fs_of_machine: Dict[int, str]
    steps: List[ProtocolStep] = field(default_factory=list)

    @property
    def partial_archive_count(self) -> int:
        """Number of distinct physical archives created."""
        return len(set(self.archive_fs_of_machine.values()))

    @property
    def creation_attempts(self) -> int:
        return sum(1 for s in self.steps if s.action in ("create", "create-local"))


def ensure_archives(
    namespaces: Mapping[int, MountNamespace],
    path: str,
    ranks_of_machine: Mapping[int, Sequence[int]],
    root_rank: int = 0,
) -> ArchiveManagementOutcome:
    """Run the hierarchical archive-creation protocol.

    Parameters
    ----------
    namespaces:
        Machine index → mount namespace of that metahost.
    path:
        The archive directory path (identical string on every metahost).
    ranks_of_machine:
        Machine index → ordered ranks living there; the first rank of each
        machine acts as local master.  The machine of *root_rank* must list
        it first.
    """
    if not namespaces:
        raise FileSystemError("no mount namespaces supplied")
    if set(namespaces) != set(ranks_of_machine):
        raise FileSystemError(
            "namespace and rank tables cover different machines: "
            f"{sorted(namespaces)} vs {sorted(ranks_of_machine)}"
        )
    root_machine = None
    for machine, ranks in ranks_of_machine.items():
        if root_rank in ranks:
            root_machine = machine
            if list(ranks)[0] != root_rank:
                raise FileSystemError(
                    f"rank {root_rank} must be the local master of machine {machine}"
                )
    if root_machine is None:
        raise FileSystemError(f"root rank {root_rank} not placed on any machine")

    outcome = ArchiveManagementOutcome(path=path, archive_fs_of_machine={})
    steps = outcome.steps

    # Step 1: rank zero creates the archive directory and broadcasts.
    root_ns = namespaces[root_machine]
    try:
        root_ns.create_dir(path, exist_ok=False)
    except FileSystemError as exc:
        steps.append(ProtocolStep(root_rank, root_machine, "abort", str(exc)))
        raise ArchiveCreationAborted(
            f"rank {root_rank} could not create archive {path}: {exc}"
        ) from exc
    steps.append(
        ProtocolStep(root_rank, root_machine, "create", root_ns.resolve(path).name)
    )

    # Step 2: each local master checks visibility and creates a partial
    # archive when the root's directory lives on foreign storage.
    for machine in sorted(ranks_of_machine):
        local_master = list(ranks_of_machine[machine])[0]
        ns = namespaces[machine]
        visible = ns.is_dir(path)
        steps.append(
            ProtocolStep(local_master, machine, "check", "visible" if visible else "missing")
        )
        if not visible:
            ns.create_dir(path, exist_ok=False)
            steps.append(
                ProtocolStep(local_master, machine, "create-local", ns.resolve(path).name)
            )

    # Step 3: every process verifies visibility; all-reduce of the outcomes.
    all_ok = True
    for machine in sorted(ranks_of_machine):
        ns = namespaces[machine]
        for rank in ranks_of_machine[machine]:
            if not ns.is_dir(path):
                all_ok = False
                steps.append(ProtocolStep(rank, machine, "abort", "archive invisible"))
    steps.append(ProtocolStep(root_rank, root_machine, "allreduce", f"ok={all_ok}"))
    if not all_ok:
        raise ArchiveCreationAborted(
            f"at least one process cannot see an archive directory at {path}"
        )

    for machine in sorted(ranks_of_machine):
        outcome.archive_fs_of_machine[machine] = namespaces[machine].resolve(path).name
    return outcome
