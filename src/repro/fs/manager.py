"""Runtime archive management (paper Section 4).

Guarantees the existence of an archive directory on each metahost without
assuming a shared file system, using the hierarchical protocol:

1. Rank zero attempts to create a single archive directory; the outcome is
   broadcast, and everyone aborts early if the creation itself failed.
2. Each metahost appoints a local master that checks whether it can *see*
   the directory (i.e. whether the path resolves to storage that actually
   holds it).  If not — because the path resides on a different file
   system — the local master creates another one on its own storage.
3. Every process checks visibility; the results are combined with an
   all-reduce.  If any process still cannot see an archive directory the
   measurement is aborted (:class:`~repro.errors.ArchiveCreationAborted`).

The protocol "offers a high degree of scalability because it avoids a
larger number of simultaneous attempts to create the same directory" —
we record each step so tests can assert exactly one creation attempt per
distinct file system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ArchiveCreationAborted, FileSystemError
from repro.fs.filesystem import MountNamespace


class _InjectedCreateFailure(FileSystemError):
    """A directory creation that failed because a fault plan said so.

    Only these are retried: genuine namespace errors (path exists, no mount)
    are deterministic and would fail identically on every retry.
    """


@dataclass(frozen=True)
class ProtocolStep:
    """One observable action of the archive-management protocol."""

    actor_rank: int
    machine: int
    #: "create", "check", "create-local", "create-failed", "retry",
    #: "allreduce", "abort"
    action: str
    detail: str = ""


@dataclass
class ArchiveManagementOutcome:
    """Result of :func:`ensure_archives`.

    ``archive_fs_of_machine`` maps each metahost to the name of the file
    system actually holding its archive directory — distinct metahosts may
    share one (global file system) or each use their own (partial archives).
    """

    path: str
    archive_fs_of_machine: Dict[int, str]
    steps: List[ProtocolStep] = field(default_factory=list)

    @property
    def partial_archive_count(self) -> int:
        """Number of distinct physical archives created."""
        return len(set(self.archive_fs_of_machine.values()))

    @property
    def creation_attempts(self) -> int:
        return sum(1 for s in self.steps if s.action in ("create", "create-local"))

    @property
    def retries(self) -> int:
        """Creation attempts repeated after an injected transient failure."""
        return sum(1 for s in self.steps if s.action == "retry")


def _create_with_retry(
    ns: MountNamespace,
    path: str,
    rank: int,
    machine: int,
    machine_name: str,
    steps: List[ProtocolStep],
    injector: Any,
    max_attempts: int,
) -> None:
    """One logical directory creation, retrying injected transient failures.

    Each attempt first consults the fault injector (which may consume one
    unit of the machine's failure budget), then performs the real creation.
    Injected failures are retried up to *max_attempts* times with recorded
    ``create-failed``/``retry`` steps; genuine namespace errors and an
    exhausted budget propagate as :class:`~repro.errors.FileSystemError`.
    """
    attempt = 1
    while True:
        try:
            if injector is not None and injector.fs_create_fails(machine_name):
                raise _InjectedCreateFailure(
                    f"injected fault: cannot create {path} on {machine_name}"
                )
            ns.create_dir(path, exist_ok=False)
            return
        except _InjectedCreateFailure as exc:
            steps.append(
                ProtocolStep(rank, machine, "create-failed", f"attempt {attempt}: {exc}")
            )
            if attempt >= max_attempts:
                raise
            steps.append(ProtocolStep(rank, machine, "retry", f"attempt {attempt + 1}"))
            attempt += 1


def ensure_archives(
    namespaces: Mapping[int, MountNamespace],
    path: str,
    ranks_of_machine: Mapping[int, Sequence[int]],
    root_rank: int = 0,
    injector: Any = None,
    machine_names: Optional[Mapping[int, str]] = None,
    max_create_attempts: int = 3,
) -> ArchiveManagementOutcome:
    """Run the hierarchical archive-creation protocol.

    Parameters
    ----------
    namespaces:
        Machine index → mount namespace of that metahost.
    path:
        The archive directory path (identical string on every metahost).
    ranks_of_machine:
        Machine index → ordered ranks living there; the first rank of each
        machine acts as local master.  The machine of *root_rank* must list
        it first.
    injector:
        Optional fault injector whose ``fs_create_fails(machine_name)``
        makes creation attempts fail transiently (retried, with backoff
        recorded as protocol steps) or permanently (abort path).
    machine_names:
        Machine index → metahost name, used to match fault specs; indices
        are stringified when absent.
    max_create_attempts:
        Creation attempts per directory before giving up on that machine.
    """
    if not namespaces:
        raise FileSystemError("no mount namespaces supplied")
    if set(namespaces) != set(ranks_of_machine):
        raise FileSystemError(
            "namespace and rank tables cover different machines: "
            f"{sorted(namespaces)} vs {sorted(ranks_of_machine)}"
        )
    root_machine = None
    for machine, ranks in ranks_of_machine.items():
        if root_rank in ranks:
            root_machine = machine
            if list(ranks)[0] != root_rank:
                raise FileSystemError(
                    f"rank {root_rank} must be the local master of machine {machine}"
                )
    if root_machine is None:
        raise FileSystemError(f"root rank {root_rank} not placed on any machine")

    outcome = ArchiveManagementOutcome(path=path, archive_fs_of_machine={})
    steps = outcome.steps
    names = machine_names or {}

    def name_of(machine: int) -> str:
        return names.get(machine, str(machine))

    # Step 1: rank zero creates the archive directory and broadcasts.
    root_ns = namespaces[root_machine]
    try:
        _create_with_retry(
            root_ns, path, root_rank, root_machine, name_of(root_machine),
            steps, injector, max_create_attempts,
        )
    except FileSystemError as exc:
        steps.append(ProtocolStep(root_rank, root_machine, "abort", str(exc)))
        raise ArchiveCreationAborted(
            f"rank {root_rank} could not create archive {path}: {exc}",
            failing_ranks=(root_rank,),
            failing_machines=(name_of(root_machine),),
            path=path,
        ) from exc
    steps.append(
        ProtocolStep(root_rank, root_machine, "create", root_ns.resolve(path).name)
    )

    # Step 2: each local master checks visibility and creates a partial
    # archive when the root's directory lives on foreign storage.  A local
    # master whose creation fails for good does NOT abort here — the
    # protocol's verdict is the step-3 all-reduce, which then names every
    # rank the failure leaves without an archive.
    for machine in sorted(ranks_of_machine):
        local_master = list(ranks_of_machine[machine])[0]
        ns = namespaces[machine]
        visible = ns.is_dir(path)
        steps.append(
            ProtocolStep(local_master, machine, "check", "visible" if visible else "missing")
        )
        if not visible:
            try:
                _create_with_retry(
                    ns, path, local_master, machine, name_of(machine),
                    steps, injector, max_create_attempts,
                )
            except FileSystemError:
                continue
            steps.append(
                ProtocolStep(local_master, machine, "create-local", ns.resolve(path).name)
            )

    # Step 3: every process verifies visibility; all-reduce of the outcomes.
    failing_ranks: List[int] = []
    failing_machines: List[str] = []
    for machine in sorted(ranks_of_machine):
        ns = namespaces[machine]
        for rank in ranks_of_machine[machine]:
            if not ns.is_dir(path):
                failing_ranks.append(rank)
                if name_of(machine) not in failing_machines:
                    failing_machines.append(name_of(machine))
                steps.append(ProtocolStep(rank, machine, "abort", "archive invisible"))
    all_ok = not failing_ranks
    steps.append(ProtocolStep(root_rank, root_machine, "allreduce", f"ok={all_ok}"))
    if not all_ok:
        raise ArchiveCreationAborted(
            f"at least one process cannot see an archive directory at {path} "
            f"(ranks {failing_ranks} on {', '.join(failing_machines)})",
            failing_ranks=tuple(failing_ranks),
            failing_machines=tuple(failing_machines),
            path=path,
        )

    for machine in sorted(ranks_of_machine):
        outcome.archive_fs_of_machine[machine] = namespaces[machine].resolve(path).name
    return outcome
