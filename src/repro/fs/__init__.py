"""Simulated per-metahost file systems and runtime archive management.

A metacomputer generally has **no** file system shared by all processes
(paper Section 4): a path such as ``/work/epik_run`` resolves to different
storage on different metahosts.  :class:`~repro.fs.filesystem.MountNamespace`
models exactly that — the same path string can map to distinct
:class:`~repro.fs.filesystem.SimFileSystem` instances per metahost — and
:mod:`repro.fs.manager` implements the paper's hierarchical
archive-creation protocol on top of it.
"""

from repro.fs.filesystem import SimFileSystem, MountNamespace
from repro.fs.manager import (
    ensure_archives,
    ArchiveManagementOutcome,
    ProtocolStep,
)

__all__ = [
    "SimFileSystem",
    "MountNamespace",
    "ensure_archives",
    "ArchiveManagementOutcome",
    "ProtocolStep",
]
