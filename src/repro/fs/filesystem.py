"""In-memory file systems with per-metahost mount namespaces."""

from __future__ import annotations

import posixpath
from typing import Dict, List, Tuple

from repro.errors import FileSystemError


def _normalize(path: str) -> str:
    if not path or not path.startswith("/"):
        raise FileSystemError(f"paths must be absolute, got {path!r}")
    norm = posixpath.normpath(path)
    return norm


class SimFileSystem:
    """One storage backend: a flat namespace of directories and files."""

    def __init__(self, name: str) -> None:
        if not name:
            raise FileSystemError("file system needs a name")
        self.name = name
        self._dirs = {"/"}
        self._files: Dict[str, bytes] = {}

    # -- directories -------------------------------------------------------

    def create_dir(self, path: str, exist_ok: bool = False) -> None:
        path = _normalize(path)
        parent = posixpath.dirname(path)
        if parent not in self._dirs:
            # Create intermediate directories implicitly (mkdir -p), which
            # is what archive creation needs.
            self.create_dir(parent, exist_ok=True)
        if path in self._dirs:
            if not exist_ok:
                raise FileSystemError(f"{self.name}: directory {path} already exists")
            return
        if path in self._files:
            raise FileSystemError(f"{self.name}: {path} exists and is a file")
        self._dirs.add(path)

    def is_dir(self, path: str) -> bool:
        return _normalize(path) in self._dirs

    # -- files --------------------------------------------------------------

    def write_file(self, path: str, data: bytes, overwrite: bool = False) -> None:
        path = _normalize(path)
        parent = posixpath.dirname(path)
        if parent not in self._dirs:
            raise FileSystemError(f"{self.name}: no directory {parent} for {path}")
        if path in self._dirs:
            raise FileSystemError(f"{self.name}: {path} is a directory")
        if path in self._files and not overwrite:
            raise FileSystemError(f"{self.name}: file {path} already exists")
        self._files[path] = bytes(data)

    def read_file(self, path: str) -> bytes:
        path = _normalize(path)
        try:
            return self._files[path]
        except KeyError:
            raise FileSystemError(f"{self.name}: no file {path}") from None

    def is_file(self, path: str) -> bool:
        return _normalize(path) in self._files

    def replace(self, src: str, dst: str) -> None:
        """Atomically rename *src* over *dst* (``os.replace`` semantics).

        Within one file system the move is a single dictionary update:
        observers see either the old *dst* content or the complete new one,
        never a partial write — the primitive atomic archive writes build on.
        """
        src = _normalize(src)
        dst = _normalize(dst)
        if src not in self._files:
            raise FileSystemError(f"{self.name}: no file {src}")
        if dst in self._dirs:
            raise FileSystemError(f"{self.name}: {dst} is a directory")
        parent = posixpath.dirname(dst)
        if parent not in self._dirs:
            raise FileSystemError(f"{self.name}: no directory {parent} for {dst}")
        self._files[dst] = self._files.pop(src)

    def list_dir(self, path: str) -> List[str]:
        path = _normalize(path)
        if path not in self._dirs:
            raise FileSystemError(f"{self.name}: no directory {path}")
        prefix = path.rstrip("/") + "/"
        names = set()
        for candidate in list(self._dirs) + list(self._files):
            if candidate != path and candidate.startswith(prefix):
                rest = candidate[len(prefix):]
                names.add(rest.split("/", 1)[0])
        return sorted(names)

    @property
    def total_bytes(self) -> int:
        """Total stored payload (for replay-traffic accounting)."""
        return sum(len(v) for v in self._files.values())

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"SimFileSystem({self.name!r}, dirs={len(self._dirs)}, files={len(self._files)})"


class MountNamespace:
    """What one metahost's processes see: path prefixes → file systems.

    Resolution picks the longest matching mount prefix.  Two namespaces can
    map the *same* path string to *different* file systems — the defining
    property of a metacomputer without a shared file system.
    """

    def __init__(self, mounts: Dict[str, SimFileSystem]) -> None:
        if not mounts:
            raise FileSystemError("namespace needs at least one mount")
        self._mounts: List[Tuple[str, SimFileSystem]] = sorted(
            ((_normalize(prefix), fs) for prefix, fs in mounts.items()),
            key=lambda item: len(item[0]),
            reverse=True,
        )

    def resolve(self, path: str) -> SimFileSystem:
        """The file system owning *path* in this namespace."""
        path = _normalize(path)
        for prefix, fs in self._mounts:
            if path == prefix or path.startswith(prefix.rstrip("/") + "/") or prefix == "/":
                return fs
        raise FileSystemError(f"no mount covers {path}")

    def mounts(self) -> List[Tuple[str, SimFileSystem]]:
        return list(self._mounts)

    # -- convenience passthroughs --------------------------------------------

    def create_dir(self, path: str, exist_ok: bool = False) -> None:
        self.resolve(path).create_dir(path, exist_ok=exist_ok)

    def is_dir(self, path: str) -> bool:
        try:
            return self.resolve(path).is_dir(path)
        except FileSystemError:
            return False

    def write_file(self, path: str, data: bytes, overwrite: bool = False) -> None:
        self.resolve(path).write_file(path, data, overwrite=overwrite)

    def read_file(self, path: str) -> bytes:
        return self.resolve(path).read_file(path)

    def is_file(self, path: str) -> bool:
        try:
            return self.resolve(path).is_file(path)
        except FileSystemError:
            return False

    def replace(self, src: str, dst: str) -> None:
        """Atomic rename; *src* and *dst* must live on the same file system."""
        src_fs = self.resolve(src)
        dst_fs = self.resolve(dst)
        if src_fs is not dst_fs:
            raise FileSystemError(
                f"cannot replace across file systems ({src_fs.name} → {dst_fs.name})"
            )
        src_fs.replace(src, dst)

    def write_file_atomic(self, path: str, data: bytes) -> None:
        """Write *data* to *path* through a same-directory temp file + replace.

        A crash between the two steps leaves at worst an orphaned ``*.tmp``;
        *path* itself either keeps its previous content or holds the full
        new content.
        """
        tmp = f"{path}.tmp"
        self.write_file(tmp, data, overwrite=True)
        self.replace(tmp, path)

    def list_dir(self, path: str) -> List[str]:
        return self.resolve(path).list_dir(path)

    def shares_storage_with(self, other: "MountNamespace", path: str) -> bool:
        """True when *path* resolves to the same file system in both namespaces."""
        try:
            return self.resolve(path) is other.resolve(path)
        except FileSystemError:
            return False


def private_namespaces(
    machine_names: List[str], mount_point: str = "/work"
) -> Dict[int, MountNamespace]:
    """One private file system per metahost, mounted at the same path.

    This is the paper's default metacomputing situation.
    """
    return {
        index: MountNamespace({mount_point: SimFileSystem(f"fs-{name}")})
        for index, name in enumerate(machine_names)
    }


def shared_namespace(
    machine_names: List[str], mount_point: str = "/work"
) -> Dict[int, MountNamespace]:
    """A single file system visible from every metahost (single-machine case)."""
    fs = SimFileSystem("fs-shared")
    return {
        index: MountNamespace({mount_point: fs})
        for index, _ in enumerate(machine_names)
    }
