"""The metacomputing-enabled measurement runtime.

:class:`MetaMPIRuntime` orchestrates one traced experiment end to end, the
way the paper's extended SCALASCA runtime does:

1. identify each process's metahost (the two environment variables of
   Section 4 are set per rank by the world);
2. run the instrumented application on the simulated metacomputer, writing
   node-local-clock event records into per-process buffers;
3. perform clock-offset measurements at program start and end — flat
   (slave ↔ master) and hierarchical (slave ↔ local master ↔ metamaster)
   rounds, so the post-mortem analysis can apply any of the three schemes;
4. execute the runtime archive-management protocol and write each rank's
   local trace into the partial archive of its own metahost.

The returned :class:`RunResult` carries everything the post-mortem analyzer
needs — archive path plus per-metahost mount namespaces — while exposing
only data a real tool would have (plus the ground-truth clock ensemble,
kept strictly for validation in tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.clocks.clock import ClockEnsemble
from repro.clocks.measurement import OffsetMeasurementConfig
from repro.clocks.sync import SyncData, collect_sync_data
from repro.errors import ConfigurationError
from repro.faults import FaultCounters, FaultPlan, build_injector
from repro.fs.filesystem import MountNamespace, private_namespaces
from repro.fs.manager import ArchiveManagementOutcome, ensure_archives
from repro.ids import NodeId
from repro.instrument.tracer import Tracer
from repro.sim.mpi import World, WorldStats
from repro.sim.process import AppGenerator
from repro.sim.transfer import SimParams
from repro.topology.metacomputer import Metacomputer, Placement
from repro.trace.archive import ArchiveReader, ArchiveWriter, Definitions, TraceShard

DEFAULT_ARCHIVE_PATH = "/work/epik_experiment"


@dataclass
class RunResult:
    """Everything produced by one traced run."""

    metacomputer: Metacomputer
    placement: Placement
    stats: WorldStats
    sync_data: SyncData
    archive_path: str
    namespaces: Dict[int, MountNamespace]
    archive_outcome: ArchiveManagementOutcome
    definitions: Definitions
    trace_bytes: Dict[int, int] = field(default_factory=dict)
    #: Ground truth — tests only; real tools never have this.
    clocks: Optional[ClockEnsemble] = None
    #: Fault plan the run executed under (None / empty plan → clean run)
    #: and what the injector actually did.
    fault_plan: Optional[FaultPlan] = None
    fault_counters: Optional[FaultCounters] = None

    def reader(self, machine: int) -> ArchiveReader:
        """Archive reader through the given metahost's namespace."""
        return ArchiveReader(self.namespaces[machine], self.archive_path)

    def trace_shard(self, ranks: Sequence[int]) -> TraceShard:
        """Picklable trace snapshot for *ranks*, each read through the
        namespace of its own metahost (the parallel analyzer's work unit)."""
        ranks = tuple(sorted(ranks))
        shard = TraceShard(ranks=ranks)
        by_machine: Dict[int, List[int]] = {}
        for rank in ranks:
            machine = self.definitions.machine_of(rank)
            by_machine.setdefault(machine, []).append(rank)
        for machine in sorted(by_machine):
            if machine not in self.namespaces:
                for rank in by_machine[machine]:
                    shard.missing[rank] = "no archive reader for its metahost"
                continue
            snapshot = self.reader(machine).shard_snapshot(by_machine[machine])
            shard.blobs.update(snapshot.blobs)
            shard.missing.update(snapshot.missing)
        return shard

    @property
    def machines_used(self) -> List[int]:
        return self.placement.machines_used()

    @property
    def total_trace_bytes(self) -> int:
        return sum(self.trace_bytes.values())


class MetaMPIRuntime:
    """Configures and executes one traced metacomputing experiment.

    Parameters
    ----------
    metacomputer / placement:
        The machine and the rank-to-CPU assignment.
    params:
        MPI timing constants of the simulator.
    seed:
        Root seed; clocks, latency jitter and application randomness all
        derive from it deterministically.
    clocks:
        Explicit clock ensemble; default draws random offsets/drifts per
        node (hardware-unsynchronized clusters).
    namespaces:
        Machine → mount namespace; default gives every metahost a private
        file system mounted at ``/work`` (the no-shared-FS situation).
    subcomms:
        Named sub-communicators to create before launch, e.g.
        ``{"trace": [...ranks...], "partrace": [...]}`` for MetaTrace.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` injected into the whole
        pipeline (transport, offset measurement, archive management, trace
        writing).  ``None`` or an empty plan changes nothing, byte for
        byte.
    """

    def __init__(
        self,
        metacomputer: Metacomputer,
        placement: Placement,
        params: SimParams = SimParams(),
        seed: int = 0,
        clocks: Optional[ClockEnsemble] = None,
        clock_offset_scale_s: float = 5e-3,
        clock_drift_scale: float = 2e-6,
        namespaces: Optional[Mapping[int, MountNamespace]] = None,
        archive_path: str = DEFAULT_ARCHIVE_PATH,
        subcomms: Optional[Mapping[str, Sequence[int]]] = None,
        measurement_config: Optional[OffsetMeasurementConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.metacomputer = metacomputer
        self.placement = placement
        self.params = params
        self.seed = seed
        self.archive_path = archive_path
        self.subcomms = dict(subcomms or {})
        self.fault_plan = fault_plan
        self.fault_injector = build_injector(fault_plan)
        self._rng = np.random.default_rng(seed)
        nodes_in_use = sorted(placement.ranks_by_node())
        if clocks is None:
            clocks = self._default_clocks(
                nodes_in_use, clock_offset_scale_s, clock_drift_scale
            )
        for node in nodes_in_use:
            if node not in clocks:
                raise ConfigurationError(f"no clock supplied for node {node}")
        self.clocks = clocks
        if namespaces is None:
            namespaces = private_namespaces(metacomputer.machine_names())
        self.namespaces: Dict[int, MountNamespace] = dict(namespaces)
        for machine in placement.machines_used():
            if machine not in self.namespaces:
                raise ConfigurationError(f"no mount namespace for machine {machine}")
        self.measurement_config = measurement_config or OffsetMeasurementConfig(
            exchanges=params.measurement_exchanges
        )

    # -- helpers --------------------------------------------------------------

    def _default_clocks(
        self,
        nodes: List[NodeId],
        offset_scale_s: float,
        drift_scale: float,
    ) -> ClockEnsemble:
        """Random per-node clocks; hardware-synchronized metahosts share one.

        A metahost with ``has_global_clock`` provides hardware clock
        synchronization among its nodes (paper Section 4), so all its nodes
        get the *same* clock model.
        """
        from repro.clocks.clock import LinearClock

        per_machine: Dict[int, LinearClock] = {}
        table: Dict[NodeId, LinearClock] = {}
        for node in nodes:
            host = self.metacomputer.metahost(node.machine)
            if host.has_global_clock:
                clock = per_machine.get(node.machine)
                if clock is None:
                    clock = LinearClock(
                        offset_s=float(
                            self._rng.uniform(-offset_scale_s, offset_scale_s)
                        ),
                        drift=float(self._rng.uniform(-drift_scale, drift_scale)),
                    )
                    per_machine[node.machine] = clock
                table[node] = clock
            else:
                table[node] = LinearClock(
                    offset_s=float(
                        self._rng.uniform(-offset_scale_s, offset_scale_s)
                    ),
                    drift=float(self._rng.uniform(-drift_scale, drift_scale)),
                )
        return ClockEnsemble(table)

    def _machine_nodes(self) -> Dict[int, List[NodeId]]:
        """Machine → nodes in use, ordered so the lowest rank's node is first.

        The first node per machine acts as local master; for the master's
        machine this is rank zero's node, making it the metamaster.
        """
        order: Dict[int, List[NodeId]] = {}
        for slot in sorted(self.placement.slots, key=lambda s: s.rank):
            nodes = order.setdefault(slot.location.machine, [])
            node = slot.node
            if node not in nodes:
                nodes.append(node)
        return order

    def _ranks_of_machine(self) -> Dict[int, List[int]]:
        out: Dict[int, List[int]] = {}
        for slot in sorted(self.placement.slots, key=lambda s: s.rank):
            out.setdefault(slot.location.machine, []).append(slot.rank)
        return out

    # -- execution ---------------------------------------------------------------

    def run(self, app: Callable[..., AppGenerator]) -> RunResult:
        """Execute *app*, write archives, return the run record."""
        injector = self.fault_injector
        tracer = Tracer(self.clocks)
        world = World(
            self.metacomputer,
            self.placement,
            params=self.params,
            rng=self._rng,
            tracer=tracer,
            fault_injector=injector,
        )
        for name, ranks in self.subcomms.items():
            world.new_communicator(name, ranks)
        world.launch(app, seed=self.seed)
        stats = world.run()
        tracer.finalize(self.placement.size)

        master_node = self.placement.slot(0).node
        sync_data = collect_sync_data(
            self.metacomputer,
            self._machine_nodes(),
            self.clocks,
            master_node,
            run_start_s=0.0,
            run_end_s=stats.finish_time,
            rng=self._rng,
            config=self.measurement_config,
            injector=injector,
        )

        ranks_of_machine = self._ranks_of_machine()
        namespaces_in_use = {
            machine: self.namespaces[machine] for machine in ranks_of_machine
        }
        machine_names = dict(enumerate(self.metacomputer.machine_names()))
        outcome = ensure_archives(
            namespaces_in_use,
            self.archive_path,
            ranks_of_machine,
            root_rank=0,
            injector=injector,
            machine_names=machine_names,
        )

        definitions = Definitions(
            machine_names=self.metacomputer.machine_names(),
            locations={
                slot.rank: slot.location for slot in self.placement.slots
            },
            regions=tracer.regions,
            communicators={
                data.id: (data.name, data.global_ranks)
                for data in world.all_communicators()
            },
        )

        trace_bytes: Dict[int, int] = {}
        for machine, ranks in ranks_of_machine.items():
            writer = ArchiveWriter(namespaces_in_use[machine], self.archive_path)
            writer.write_definitions(definitions)
            writer.write_sync_data(sync_data)
            for rank in ranks:
                # Buffers hold the already-encoded record stream (encoding
                # happened incrementally during simulation), so emission is
                # a byte copy per rank — no event objects, no second
                # whole-trace encode pass.
                buf = tracer.buffer(rank)
                if injector is None:
                    trace_bytes[rank] = writer.write_trace_stream(
                        rank, buf.encoded_chunks()
                    )
                else:
                    # Checksums cover the pristine encoding; the injector's
                    # damage models storage corrupting the bytes *after*
                    # they were checksummed, so verify() can catch it.
                    clean = buf.encoded()
                    blob = injector.mangle_trace(rank, clean)
                    trace_bytes[rank] = writer.write_trace_blob(
                        rank, blob, checksums_of=clean
                    )
            writer.write_manifest()

        return RunResult(
            metacomputer=self.metacomputer,
            placement=self.placement,
            stats=stats,
            sync_data=sync_data,
            archive_path=self.archive_path,
            namespaces=dict(namespaces_in_use),
            archive_outcome=outcome,
            definitions=definitions,
            trace_bytes=trace_bytes,
            clocks=self.clocks,
            fault_plan=self.fault_plan,
            fault_counters=injector.counters if injector is not None else None,
        )
