"""Discrete-event simulator with an mpi4py-flavoured MPI-1 interface.

Replaces MetaMPICH and the physical testbed: generator-based processes issue
MPI-style requests (``send``/``recv``/``isend``/``irecv``/``wait``,
``barrier``/``bcast``/``reduce``/``allreduce``/``gather``/``allgather``/
``alltoall``/``scatter``/``sendrecv``); the engine advances simulated time
using the metacomputer's latency/bandwidth models.  Wait states — the
phenomena the paper's analysis detects — emerge naturally from the timing
semantics (blocking receives, rendezvous sends, collective synchronization).
"""

from repro.sim.engine import Engine
from repro.sim.process import SimProcess, ProcessState
from repro.sim.transfer import SimParams
from repro.sim.mpi import (
    World,
    Communicator,
    Context,
    RequestHandle,
    Message,
)
from repro.sim.runtime import MetaMPIRuntime, RunResult

__all__ = [
    "Engine",
    "SimProcess",
    "ProcessState",
    "SimParams",
    "World",
    "Communicator",
    "Context",
    "RequestHandle",
    "Message",
    "MetaMPIRuntime",
    "RunResult",
]
