"""The simulated MPI world.

Applications are generator functions ``def app(ctx): ... yield ...`` that
yield *request* objects built by their :class:`Context`:

* ``yield ctx.compute(work)`` — busy CPU time (scaled by the CPU's speed
  factor, so the same work takes twice as long on a half-speed metahost);
* ``msg = yield ctx.comm.recv(source, tag)`` — blocking receive;
* ``yield ctx.comm.send(dest, size, tag)`` — blocking standard send (eager
  below the threshold, rendezvous above);
* ``h = yield ctx.comm.isend(...)`` / ``yield ctx.comm.wait(h)`` — the
  non-blocking forms;
* ``yield ctx.comm.barrier()`` / ``allreduce`` / ``bcast`` / … — collectives.

Naming follows mpi4py's lowercase conventions.  The world owns the event
engine, the message-matching queues (MPI semantics: per-communicator, FIFO,
``ANY_SOURCE``/``ANY_TAG`` wildcards, non-overtaking delivery), and the
instrumentation hooks that turn simulated MPI activity into trace events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from sys import intern
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DeadlockError, MPIUsageError, SimulationError
from repro.ids import ANY_SOURCE, ANY_TAG, Location, node_of
from repro.sim import collectives as coll
from repro.sim.engine import Engine
from repro.sim.process import AppGenerator, SimProcess
from repro.sim.transfer import ChannelClock, SimParams
from repro.topology.metacomputer import Metacomputer, Placement, ProcessSlot
from repro.topology.network import ExponentialJitterStream, LatencyModel

# --------------------------------------------------------------------------
# Requests yielded by application generators
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ComputeReq:
    """Busy CPU time in *wall* seconds (already speed-scaled)."""

    seconds: float


@dataclass(frozen=True, slots=True)
class SendReq:
    comm_id: int
    dest: int  # comm rank
    size: int
    tag: int
    data: Any = None
    #: Synchronous mode (MPI_Ssend): always rendezvous, completes only
    #: after the matching receive started.
    synchronous: bool = False


@dataclass(frozen=True, slots=True)
class RecvReq:
    comm_id: int
    source: int  # comm rank or ANY_SOURCE
    tag: int


@dataclass(frozen=True, slots=True)
class IsendReq:
    comm_id: int
    dest: int
    size: int
    tag: int
    data: Any = None


@dataclass(frozen=True, slots=True)
class IrecvReq:
    comm_id: int
    source: int
    tag: int


@dataclass(frozen=True, slots=True)
class WaitReq:
    handle: "RequestHandle"


@dataclass(frozen=True, slots=True)
class WaitallReq:
    handles: Tuple["RequestHandle", ...]


@dataclass(frozen=True, slots=True)
class SendrecvReq:
    comm_id: int
    dest: int
    send_size: int
    send_tag: int
    source: int
    recv_tag: int
    data: Any = None


@dataclass(frozen=True, slots=True)
class CollectiveReq:
    comm_id: int
    op: str
    size: int
    root: int = 0  # comm rank
    data: Any = None


@dataclass(frozen=True, slots=True)
class OmpParallelReq:
    """A fork-join parallel region: per-thread reference work amounts."""

    work_seconds: Tuple[float, ...]
    region: str


@dataclass(frozen=True, slots=True)
class SplitReq:
    """MPI_Comm_split: collective creation of sub-communicators."""

    comm_id: int
    color: Optional[int]
    key: int


Request = Any  # union of the dataclasses above


# --------------------------------------------------------------------------
# Messages and non-blocking handles
# --------------------------------------------------------------------------


@dataclass(slots=True)
class Message:
    """A matched point-to-point message as seen by the receiver."""

    source: int  # comm rank within the receiving communicator
    dest: int  # comm rank
    tag: int
    comm_id: int
    size: int
    data: Any = None
    #: True time the sender entered the sending MPI call.
    send_enter_time: float = 0.0
    #: True time the SEND trace event was recorded.
    send_time: float = 0.0
    #: Global ranks (world), for system-level bookkeeping.
    source_global: int = 0
    dest_global: int = 0


class RequestHandle:
    """Handle returned by ``isend``/``irecv``; completed via ``wait``."""

    __slots__ = (
        "id",
        "kind",
        "owner_rank",
        "completed",
        "completion_time",
        "result",
        "_waiter",
    )

    _next_id = 0

    def __init__(self, kind: str, owner_rank: int) -> None:
        RequestHandle._next_id += 1
        self.id = RequestHandle._next_id
        self.kind = kind  # "send" | "recv"
        self.owner_rank = owner_rank
        self.completed = False
        self.completion_time: Optional[float] = None
        self.result: Optional[Message] = None
        self._waiter: Optional[Callable[[], None]] = None

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        state = "done" if self.completed else "pending"
        return f"RequestHandle(#{self.id} {self.kind} rank={self.owner_rank} {state})"


# --------------------------------------------------------------------------
# Communicators
# --------------------------------------------------------------------------


class CommunicatorData:
    """Shared (process-independent) communicator state."""

    def __init__(self, comm_id: int, name: str, global_ranks: Sequence[int]) -> None:
        if len(set(global_ranks)) != len(global_ranks):
            raise MPIUsageError(f"duplicate ranks in communicator {name!r}")
        if not global_ranks:
            raise MPIUsageError(f"communicator {name!r} has no members")
        self.id = comm_id
        self.name = name
        self.global_ranks: Tuple[int, ...] = tuple(global_ranks)
        self._comm_rank_of: Dict[int, int] = {
            g: i for i, g in enumerate(self.global_ranks)
        }

    @property
    def size(self) -> int:
        return len(self.global_ranks)

    def comm_rank(self, global_rank: int) -> int:
        try:
            return self._comm_rank_of[global_rank]
        except KeyError:
            raise MPIUsageError(
                f"rank {global_rank} is not a member of communicator {self.name!r}"
            ) from None

    def global_rank(self, comm_rank: int) -> int:
        if not 0 <= comm_rank < len(self.global_ranks):
            raise MPIUsageError(
                f"comm rank {comm_rank} out of range for {self.name!r} "
                f"(size {self.size})"
            )
        return self.global_ranks[comm_rank]

    def contains(self, global_rank: int) -> bool:
        return global_rank in self._comm_rank_of


class Communicator:
    """A communicator bound to one calling process (mpi4py-style surface)."""

    def __init__(self, data: CommunicatorData, my_global_rank: int) -> None:
        self.data = data
        self.my_global_rank = my_global_rank
        self.rank = data.comm_rank(my_global_rank)

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def name(self) -> str:
        return self.data.name

    # -- point-to-point request builders ------------------------------------

    def send(self, dest: int, size: int, tag: int = 0, data: Any = None) -> SendReq:
        self._check_rank(dest)
        return SendReq(self.data.id, dest, self._check_size(size), tag, data)

    def ssend(self, dest: int, size: int, tag: int = 0, data: Any = None) -> SendReq:
        """Synchronous send: rendezvous regardless of size (MPI_Ssend)."""
        self._check_rank(dest)
        return SendReq(
            self.data.id, dest, self._check_size(size), tag, data, synchronous=True
        )

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvReq:
        if source != ANY_SOURCE:
            self._check_rank(source)
        return RecvReq(self.data.id, source, tag)

    def isend(self, dest: int, size: int, tag: int = 0, data: Any = None) -> IsendReq:
        self._check_rank(dest)
        return IsendReq(self.data.id, dest, self._check_size(size), tag, data)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> IrecvReq:
        if source != ANY_SOURCE:
            self._check_rank(source)
        return IrecvReq(self.data.id, source, tag)

    @staticmethod
    def wait(handle: RequestHandle) -> WaitReq:
        return WaitReq(handle)

    @staticmethod
    def waitall(handles: Sequence[RequestHandle]) -> WaitallReq:
        return WaitallReq(tuple(handles))

    def sendrecv(
        self,
        dest: int,
        send_size: int,
        send_tag: int = 0,
        source: int = ANY_SOURCE,
        recv_tag: int = ANY_TAG,
        data: Any = None,
    ) -> SendrecvReq:
        self._check_rank(dest)
        if source != ANY_SOURCE:
            self._check_rank(source)
        return SendrecvReq(
            self.data.id, dest, self._check_size(send_size), send_tag, source, recv_tag, data
        )

    # -- collective request builders -----------------------------------------

    def barrier(self) -> CollectiveReq:
        return CollectiveReq(self.data.id, coll.BARRIER, 0)

    def bcast(self, size: int, root: int = 0, data: Any = None) -> CollectiveReq:
        self._check_rank(root)
        return CollectiveReq(self.data.id, coll.BCAST, self._check_size(size), root, data)

    def reduce(self, size: int, root: int = 0, data: Any = None) -> CollectiveReq:
        self._check_rank(root)
        return CollectiveReq(self.data.id, coll.REDUCE, self._check_size(size), root, data)

    def allreduce(self, size: int, data: Any = None) -> CollectiveReq:
        return CollectiveReq(self.data.id, coll.ALLREDUCE, self._check_size(size), 0, data)

    def gather(self, size: int, root: int = 0, data: Any = None) -> CollectiveReq:
        self._check_rank(root)
        return CollectiveReq(self.data.id, coll.GATHER, self._check_size(size), root, data)

    def allgather(self, size: int, data: Any = None) -> CollectiveReq:
        return CollectiveReq(self.data.id, coll.ALLGATHER, self._check_size(size), 0, data)

    def alltoall(self, size: int, data: Any = None) -> CollectiveReq:
        return CollectiveReq(self.data.id, coll.ALLTOALL, self._check_size(size), 0, data)

    def scatter(self, size: int, root: int = 0, data: Any = None) -> CollectiveReq:
        self._check_rank(root)
        return CollectiveReq(self.data.id, coll.SCATTER, self._check_size(size), root, data)

    def scan(self, size: int, data: Any = None) -> CollectiveReq:
        """MPI_Scan: inclusive prefix reduction over comm ranks."""
        return CollectiveReq(self.data.id, coll.SCAN, self._check_size(size), 0, data)

    def split(self, color: Optional[int], key: int = 0) -> SplitReq:
        """MPI_Comm_split: partition this communicator by *color*.

        Every member must call it; members sharing a color form a new
        communicator ordered by (key, old rank).  ``color=None``
        (MPI_UNDEFINED) yields no communicator for that rank — the result
        delivered to the caller is then ``None``.
        """
        return SplitReq(self.data.id, color, key)

    # -- helpers --------------------------------------------------------------

    def _check_rank(self, comm_rank: int) -> None:
        self.data.global_rank(comm_rank)  # raises on out-of-range

    @staticmethod
    def _check_size(size: int) -> int:
        if size < 0:
            raise MPIUsageError(f"message size must be non-negative, got {size}")
        return int(size)


# --------------------------------------------------------------------------
# Context handed to application generators
# --------------------------------------------------------------------------


class Context:
    """Per-rank view of the simulated machine handed to the application."""

    def __init__(
        self,
        world: "World",
        slot: ProcessSlot,
        env: Dict[str, str],
        rng: np.random.Generator,
    ) -> None:
        self._world = world
        self.slot = slot
        self.rank = slot.rank
        self.size = world.placement.size
        self.comm = Communicator(world.comm_world, slot.rank)
        #: Per-metahost environment, carrying the paper's two variables
        #: (``REPRO_METAHOST_ID`` and ``REPRO_METAHOST_NAME``).
        self.env = env
        self.rng = rng

    # -- machine info ---------------------------------------------------------

    @property
    def metahost_id(self) -> int:
        return int(self.env["REPRO_METAHOST_ID"])

    @property
    def metahost_name(self) -> str:
        return self.env["REPRO_METAHOST_NAME"]

    @property
    def location(self) -> Location:
        return self.slot.location

    @property
    def now(self) -> float:
        """Current true simulation time (apps may use it for pacing)."""
        return self._world.engine.now

    # -- requests ---------------------------------------------------------------

    def compute(self, work_seconds: float) -> ComputeReq:
        """Busy time for *work_seconds* of reference work on this CPU."""
        if work_seconds < 0:
            raise MPIUsageError(f"work must be non-negative, got {work_seconds}")
        return ComputeReq(self.slot.cpu.work_seconds(work_seconds))

    def sleep(self, wall_seconds: float) -> ComputeReq:
        """Busy time independent of CPU speed (I/O waits, fixed delays)."""
        if wall_seconds < 0:
            raise MPIUsageError(f"sleep must be non-negative, got {wall_seconds}")
        return ComputeReq(wall_seconds)

    def parallel(
        self, work_seconds: Sequence[float], region: str = "omp_parallel"
    ) -> OmpParallelReq:
        """Fork-join multithreaded region (hybrid MPI + threads).

        The team runs one thread per entry of *work_seconds* (reference
        seconds, each scaled by this CPU's speed); the region lasts as long
        as its slowest thread.  The trace records the team's busy-time
        summary, from which the analyzer derives the *Idle Threads*
        severity (paper Section 1: message passing "may be combined with
        multithreading used within the metahosts").
        """
        if not work_seconds:
            raise MPIUsageError("parallel region needs at least one thread")
        if any(w < 0 for w in work_seconds):
            raise MPIUsageError("thread work must be non-negative")
        return OmpParallelReq(tuple(float(w) for w in work_seconds), region)

    def get_comm(self, name: str) -> Optional[Communicator]:
        """Bound view of a named sub-communicator, or None if not a member."""
        data = self._world.communicator(name)
        if not data.contains(self.rank):
            return None
        return Communicator(data, self.rank)

    # -- instrumentation --------------------------------------------------------

    def enter(self, region: str) -> None:
        """Record entry into a user region (e.g. ``cgiteration``)."""
        self._world.record_enter(self.slot, region)

    def exit(self, region: str) -> None:
        """Record exit from a user region."""
        self._world.record_exit(self.slot, region)

    def region(self, name: str) -> "_RegionGuard":
        """``with ctx.region("foo"): yield ...`` convenience guard."""
        return _RegionGuard(self, name)


class _RegionGuard:
    def __init__(self, ctx: Context, name: str) -> None:
        self._ctx = ctx
        self._name = name

    def __enter__(self) -> "_RegionGuard":
        self._ctx.enter(self._name)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._ctx.exit(self._name)


# --------------------------------------------------------------------------
# Internal matching structures
# --------------------------------------------------------------------------


@dataclass(slots=True)
class _PendingRecv:
    proc_rank: int
    source: int  # comm rank or ANY_SOURCE
    tag: int
    comm_id: int
    post_time: float
    handle: Optional[RequestHandle]  # None for blocking recv
    resume: Optional[Callable[[Message, float], None]]  # blocking-recv continuation


@dataclass(slots=True)
class _InFlight:
    """A message that has 'announced' itself at the receiver.

    For eager messages this is the payload arrival; for rendezvous messages
    it is the ready-to-send announcement, and the payload transfer only
    starts at match time.
    """

    message: Message
    announce_time: float
    rendezvous: bool
    sender_resume: Optional[Callable[[float], None]]  # rendezvous blocking send
    sender_handle: Optional[RequestHandle]  # rendezvous isend


@dataclass(slots=True)
class _CollectiveInstance:
    op: str
    root: int  # comm rank
    size: int
    enter_times: Dict[int, float] = field(default_factory=dict)
    data: Dict[int, Any] = field(default_factory=dict)
    #: Comm ranks whose exit has already been scheduled (rooted operations
    #: release early finishers before the whole communicator has entered).
    resumed: set = field(default_factory=set)
    done: bool = False


@dataclass
class WorldStats:
    """Aggregate simulation statistics."""

    p2p_messages: int = 0
    p2p_bytes: int = 0
    collectives: int = 0
    rendezvous_messages: int = 0
    finish_time: float = 0.0
    #: Fault-injected retransmissions performed by this world's transport
    #: (0 without an active fault plan).
    retransmits: int = 0


# --------------------------------------------------------------------------
# The world
# --------------------------------------------------------------------------


class World:
    """Owns the engine, processes, communicators, matching state and hooks.

    Parameters
    ----------
    metacomputer / placement:
        Where the ranks run; drives per-message link selection.
    params:
        MPI timing constants.
    rng:
        Single generator used for every latency draw (reproducibility).
    tracer:
        Optional object implementing the hook methods ``enter``, ``exit``,
        ``send``, ``recv`` and ``coll_exit`` (see
        :mod:`repro.instrument.adapter`); ``None`` disables tracing.
    fault_injector:
        Optional :class:`~repro.faults.FaultInjector`; when set, every
        network delay consults it for outage/loss/degradation effects and
        retransmission backoff (``params.retry``).  ``None`` — the default
        and the empty-plan case — leaves the timing model byte-identical.
    """

    def __init__(
        self,
        metacomputer: Metacomputer,
        placement: Placement,
        params: SimParams = SimParams(),
        rng: Optional[np.random.Generator] = None,
        tracer: Any = None,
        max_events: int = 50_000_000,
        fault_injector: Any = None,
    ) -> None:
        if placement.metacomputer is not metacomputer:
            raise SimulationError("placement does not belong to this metacomputer")
        self.metacomputer = metacomputer
        self.placement = placement
        self.params = params
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.tracer = tracer
        self.max_events = max_events
        self.fault_injector = fault_injector
        self.engine = Engine()
        self.stats = WorldStats()

        self.comm_world = CommunicatorData(0, "world", range(placement.size))
        self._comms: Dict[int, CommunicatorData] = {0: self.comm_world}
        self._comms_by_name: Dict[str, CommunicatorData] = {"world": self.comm_world}

        self._procs: Dict[int, SimProcess] = {}
        self._envs: Dict[int, Dict[str, str]] = {}
        # Matching state, keyed by (comm_id, dest_global).
        self._pending_recvs: Dict[Tuple[int, int], List[_PendingRecv]] = {}
        self._unexpected: Dict[Tuple[int, int], List[_InFlight]] = {}
        self._channel_clock = ChannelClock()
        # Collective sequencing: (comm_id) -> list of instances; each rank
        # tracks which instance index it joins next.
        self._coll_instances: Dict[int, List[_CollectiveInstance]] = {}
        self._coll_next: Dict[Tuple, int] = {}
        self._split_pending: Dict[Tuple, List[Dict]] = {}

        # Hot-path caches.  All three are pure functions of immutable run
        # state (placement, link topology, communicator membership), so
        # memoizing them cannot change any sampled value.
        self._jitter = ExponentialJitterStream(self.rng)
        self._routes: Dict[Tuple[int, int], Tuple[LatencyModel, str]] = {}
        self._comm_costs: Dict[int, Tuple[float, float]] = {}
        self._comm_locations: Dict[int, Dict[int, Location]] = {}
        self._handlers: Dict[type, Callable[[SimProcess, Any], None]] = {
            ComputeReq: self._do_compute,
            SendReq: self._do_blocking_send,
            RecvReq: self._do_blocking_recv,
            IsendReq: self._do_isend,
            IrecvReq: self._do_irecv,
            WaitReq: self._do_wait_req,
            WaitallReq: self._do_waitall_req,
            SendrecvReq: self._do_sendrecv,
            CollectiveReq: self._do_collective,
            SplitReq: self._do_split,
            OmpParallelReq: self._do_omp_parallel,
        }

    # -- setup ------------------------------------------------------------------

    def new_communicator(self, name: str, global_ranks: Sequence[int]) -> CommunicatorData:
        """Create a named sub-communicator (apps fetch it via ctx.get_comm).

        Member order defines the new communicator's rank order: callers
        that want rank-sorted comms pass sorted sequences, and ``split``
        relies on (key, old-rank) order being preserved.
        """
        if name in self._comms_by_name:
            raise MPIUsageError(f"communicator {name!r} already exists")
        for g in global_ranks:
            if not 0 <= g < self.placement.size:
                raise MPIUsageError(f"rank {g} outside world (size {self.placement.size})")
        data = CommunicatorData(len(self._comms), name, list(global_ranks))
        self._comms[data.id] = data
        self._comms_by_name[name] = data
        return data

    def communicator(self, name: str) -> CommunicatorData:
        try:
            return self._comms_by_name[name]
        except KeyError:
            raise MPIUsageError(f"no communicator named {name!r}") from None

    def all_communicators(self) -> List[CommunicatorData]:
        """Every communicator of the run, including split-created ones."""
        return [self._comms[cid] for cid in sorted(self._comms)]

    def comm_by_id(self, comm_id: int) -> CommunicatorData:
        try:
            return self._comms[comm_id]
        except KeyError:
            raise MPIUsageError(f"no communicator with id {comm_id}") from None

    def launch(
        self,
        app: Callable[[Context], AppGenerator],
        seed: int = 0,
    ) -> None:
        """Instantiate one process per placement slot running *app*."""
        if self._procs:
            raise SimulationError("world already launched")
        for slot in self.placement.slots:
            host = self.metacomputer.metahost(slot.location.machine)
            env = {
                "REPRO_METAHOST_ID": str(slot.location.machine),
                "REPRO_METAHOST_NAME": host.name,
            }
            ctx = Context(
                self,
                slot,
                env,
                np.random.default_rng((seed, slot.rank)),
            )
            self._envs[slot.rank] = env
            proc = SimProcess(slot, app(ctx))
            self._procs[slot.rank] = proc
        for proc in self._procs.values():
            self.engine.call_later(0.0, self._make_starter(proc))

    def _make_starter(self, proc: SimProcess) -> Callable[[], None]:
        def start() -> None:
            self._advance(proc, None)

        return start

    # -- execution ----------------------------------------------------------------

    def run(self) -> WorldStats:
        """Run the simulation to completion; raises on deadlock or app error."""
        if not self._procs:
            raise SimulationError("nothing launched")
        try:
            self.engine.run(max_events=self.max_events)
        finally:
            # Rewind the shared generator to where scalar draws would have
            # left it, so post-simulation consumers (clock-offset
            # measurement) see a byte-identical stream — even if the run
            # dies (deadlock, fault-injection timeout) mid-block.
            self._jitter.sync()
        blocked = [p for p in self._procs.values() if not p.done]
        if blocked:
            detail = ", ".join(
                f"rank {p.rank} in {p.blocked_on or 'unknown'}" for p in blocked[:8]
            )
            raise DeadlockError(
                f"{len(blocked)} processes never finished: {detail}"
            )
        self.stats.finish_time = self.engine.now
        return self.stats

    # -- process stepping ----------------------------------------------------------

    def _advance(self, proc: SimProcess, value: Any) -> None:
        """Resume *proc* with *value* and dispatch its next request."""
        request = proc.step(value)
        if request is None:
            proc.finish_time = self.engine.now
            return
        self._dispatch(proc, request)

    def _dispatch(self, proc: SimProcess, request: Request) -> None:
        handler = self._handlers.get(type(request))
        if handler is None:
            # Exact-type miss: honour subclasses of the request dataclasses
            # once, then cache the resolution for their concrete type.
            for cls, candidate in self._handlers.items():
                if isinstance(request, cls):
                    self._handlers[type(request)] = candidate
                    handler = candidate
                    break
            else:
                raise MPIUsageError(
                    f"rank {proc.rank} yielded an unknown request at "
                    f"t={self.engine.now}: {request!r}"
                )
        handler(proc, request)

    def _do_compute(self, proc: SimProcess, req: ComputeReq) -> None:
        proc.blocked_on = "compute"
        self.engine.call_later(req.seconds, lambda: self._advance(proc, None))

    def _do_blocking_send(self, proc: SimProcess, req: SendReq) -> None:
        self._do_send(proc, req, blocking=True)

    def _do_blocking_recv(self, proc: SimProcess, req: RecvReq) -> None:
        self._do_recv(proc, req, blocking=True)

    def _do_wait_req(self, proc: SimProcess, req: WaitReq) -> None:
        self._do_wait(proc, req.handle)

    def _do_waitall_req(self, proc: SimProcess, req: WaitallReq) -> None:
        self._do_waitall(proc, req.handles)

    # -- tracing hooks ----------------------------------------------------------------

    def record_enter(self, slot: ProcessSlot, region: str) -> None:
        if self.tracer is not None:
            self.tracer.enter(slot, region, self.engine.now)

    def record_exit(self, slot: ProcessSlot, region: str) -> None:
        if self.tracer is not None:
            self.tracer.exit(slot, region, self.engine.now)

    def _trace_send(
        self, slot: ProcessSlot, t: float, dest_global: int, tag: int, comm_id: int, size: int
    ) -> None:
        if self.tracer is not None:
            self.tracer.send(slot, t, dest_global, tag, comm_id, size)

    def _trace_recv(
        self, slot: ProcessSlot, t: float, source_global: int, tag: int, comm_id: int, size: int
    ) -> None:
        if self.tracer is not None:
            self.tracer.recv(slot, t, source_global, tag, comm_id, size)

    def _trace_coll_exit(
        self,
        slot: ProcessSlot,
        t: float,
        region: str,
        comm_id: int,
        root_global: int,
        sent: int,
        recvd: int,
    ) -> None:
        if self.tracer is not None:
            self.tracer.coll_exit(slot, t, region, comm_id, root_global, sent, recvd)

    # -- point-to-point implementation ------------------------------------------------

    def _route(self, src_global: int, dst_global: int) -> Tuple[LatencyModel, str]:
        """Cached ``(latency model, interned direction key)`` per rank pair.

        Ranks never migrate, so the placement/topology lookups and the
        direction-string formatting that used to run once per message are
        paid once per (src, dst) pair for the whole run.
        """
        key = (src_global, dst_global)
        route = self._routes.get(key)
        if route is None:
            a = self.placement.location(src_global)
            b = self.placement.location(dst_global)
            model = self.metacomputer.latency_model(self.metacomputer.link_between(a, b))
            direction = intern(f"{node_of(a)}->{node_of(b)}")
            route = (model, direction)
            self._routes[key] = route
        return route

    def _link_model(self, src_global: int, dst_global: int) -> LatencyModel:
        return self._route(src_global, dst_global)[0]

    def _direction(self, src_global: int, dst_global: int) -> str:
        """Directional path key for the congestion model (per node pair)."""
        return self._route(src_global, dst_global)[1]

    def _faulted(self, link, sampled: float) -> float:
        """Apply fault-plan effects to one sampled network delay.

        Retransmission backoff (lost messages, outage windows) is added on
        top; degradation windows scale the sampled delay itself.  Raises
        :class:`~repro.errors.CommunicationTimeoutError` out of the engine
        when the retry budget dies on a blacked-out link.
        """
        inj = self.fault_injector
        if inj is None:
            return sampled
        when = self.engine.now
        before = inj.counters.retransmits
        delay = inj.message_delivery(link.spec, when, self.params.retry)
        self.stats.retransmits += inj.counters.retransmits - before
        return delay + sampled * inj.latency_factor(link.spec, when + delay)

    def _transfer_time(self, link, size: int, src_global: int, dst_global: int) -> float:
        return self._faulted(link, link.transfer_time(
            size, self._jitter, when=self.engine.now,
            direction=self._direction(src_global, dst_global),
        ))

    def _one_way_latency(self, link, src_global: int, dst_global: int) -> float:
        return self._faulted(link, link.sample_latency(
            self._jitter, when=self.engine.now,
            direction=self._direction(src_global, dst_global),
        ))

    def _do_send(self, proc: SimProcess, req: SendReq, blocking: bool) -> None:
        comm = self.comm_by_id(req.comm_id)
        src_global = proc.rank
        dst_global = comm.global_rank(req.dest)
        now = self.engine.now
        region = "MPI_Ssend" if req.synchronous else "MPI_Send"
        self.record_enter(proc.slot, region)
        send_event_t = now
        message = Message(
            source=comm.comm_rank(src_global),
            dest=req.dest,
            tag=req.tag,
            comm_id=req.comm_id,
            size=req.size,
            data=req.data,
            send_enter_time=now,
            send_time=send_event_t,
            source_global=src_global,
            dest_global=dst_global,
        )
        self.stats.p2p_messages += 1
        self.stats.p2p_bytes += req.size
        link = self._link_model(src_global, dst_global)
        channel = (req.comm_id, src_global, dst_global)
        proc.blocked_on = region

        if self.params.is_eager(req.size) and not req.synchronous:
            departure = now + self.params.send_overhead_s
            arrival = self._channel_clock.clamp(
                channel,
                departure + self._transfer_time(link, req.size, src_global, dst_global),
            )
            self._trace_send(proc.slot, send_event_t, dst_global, req.tag, req.comm_id, req.size)
            inflight = _InFlight(message, arrival, rendezvous=False, sender_resume=None, sender_handle=None)
            self.engine.call_at(arrival, lambda: self._announce(inflight))
            done = now + self.params.eager_send_cost_s(req.size)

            def finish_eager() -> None:
                self.record_exit(proc.slot, region)
                self._advance(proc, None)

            self.engine.call_at(done, finish_eager)
        else:
            self.stats.rendezvous_messages += 1
            self._trace_send(proc.slot, send_event_t, dst_global, req.tag, req.comm_id, req.size)
            rts_arrival = self._channel_clock.clamp(
                channel,
                now
                + self.params.send_overhead_s
                + self._one_way_latency(link, src_global, dst_global),
            )

            def sender_resume(completion: float) -> None:
                def finish() -> None:
                    self.record_exit(proc.slot, region)
                    self._advance(proc, None)

                self.engine.call_at(completion, finish)

            inflight = _InFlight(
                message, rts_arrival, rendezvous=True, sender_resume=sender_resume, sender_handle=None
            )
            self.engine.call_at(rts_arrival, lambda: self._announce(inflight))

    def _do_isend(self, proc: SimProcess, req: IsendReq) -> None:
        comm = self.comm_by_id(req.comm_id)
        src_global = proc.rank
        dst_global = comm.global_rank(req.dest)
        now = self.engine.now
        region = "MPI_Isend"
        self.record_enter(proc.slot, region)
        handle = RequestHandle("send", proc.rank)
        send_event_t = now
        message = Message(
            source=comm.comm_rank(src_global),
            dest=req.dest,
            tag=req.tag,
            comm_id=req.comm_id,
            size=req.size,
            data=req.data,
            send_enter_time=now,
            send_time=send_event_t,
            source_global=src_global,
            dest_global=dst_global,
        )
        self.stats.p2p_messages += 1
        self.stats.p2p_bytes += req.size
        link = self._link_model(src_global, dst_global)
        channel = (req.comm_id, src_global, dst_global)
        self._trace_send(proc.slot, send_event_t, dst_global, req.tag, req.comm_id, req.size)

        if self.params.is_eager(req.size):
            departure = now + self.params.nonblocking_overhead_s
            arrival = self._channel_clock.clamp(
                channel,
                departure + self._transfer_time(link, req.size, src_global, dst_global),
            )
            inflight = _InFlight(message, arrival, rendezvous=False, sender_resume=None, sender_handle=None)
            self.engine.call_at(arrival, lambda: self._announce(inflight))
            # The eager isend itself completes immediately after the copy.
            self._complete_handle(handle, now + self.params.eager_send_cost_s(req.size), None)
        else:
            self.stats.rendezvous_messages += 1
            rts_arrival = self._channel_clock.clamp(
                channel,
                now
                + self.params.nonblocking_overhead_s
                + self._one_way_latency(link, src_global, dst_global),
            )
            inflight = _InFlight(
                message, rts_arrival, rendezvous=True, sender_resume=None, sender_handle=handle
            )
            self.engine.call_at(rts_arrival, lambda: self._announce(inflight))

        def finish_call() -> None:
            self.record_exit(proc.slot, region)
            self._advance(proc, handle)

        self.engine.call_later(self.params.nonblocking_overhead_s, finish_call)

    def _do_recv(self, proc: SimProcess, req: RecvReq, blocking: bool) -> None:
        comm = self.comm_by_id(req.comm_id)
        now = self.engine.now
        region = "MPI_Recv"
        self.record_enter(proc.slot, region)
        proc.blocked_on = region

        def resume(message: Message, completion: float) -> None:
            def finish() -> None:
                self._trace_recv(
                    proc.slot,
                    self.engine.now,
                    message.source_global,
                    message.tag,
                    message.comm_id,
                    message.size,
                )
                self.record_exit(proc.slot, region)
                self._advance(proc, message)

            self.engine.call_at(completion, finish)

        pending = _PendingRecv(
            proc_rank=proc.rank,
            source=req.source,
            tag=req.tag,
            comm_id=req.comm_id,
            post_time=now,
            handle=None,
            resume=resume,
        )
        self._post_recv(pending)

    def _do_irecv(self, proc: SimProcess, req: IrecvReq) -> None:
        now = self.engine.now
        region = "MPI_Irecv"
        self.record_enter(proc.slot, region)
        handle = RequestHandle("recv", proc.rank)
        pending = _PendingRecv(
            proc_rank=proc.rank,
            source=req.source,
            tag=req.tag,
            comm_id=req.comm_id,
            post_time=now,
            handle=handle,
            resume=None,
        )
        self._post_recv(pending)

        def finish_call() -> None:
            self.record_exit(proc.slot, region)
            self._advance(proc, handle)

        self.engine.call_later(self.params.nonblocking_overhead_s, finish_call)

    def _do_wait(self, proc: SimProcess, handle: RequestHandle) -> None:
        region = "MPI_Wait"
        self.record_enter(proc.slot, region)
        proc.blocked_on = region

        def on_complete() -> None:
            message = handle.result
            if handle.kind == "recv" and message is not None:
                self._trace_recv(
                    proc.slot,
                    self.engine.now,
                    message.source_global,
                    message.tag,
                    message.comm_id,
                    message.size,
                )
            self.record_exit(proc.slot, region)
            self._advance(proc, message)

        self._when_handle_done(handle, on_complete)

    def _do_waitall(self, proc: SimProcess, handles: Tuple[RequestHandle, ...]) -> None:
        region = "MPI_Waitall"
        self.record_enter(proc.slot, region)
        proc.blocked_on = region
        remaining = {h.id: h for h in handles}

        if not handles:
            def finish_empty() -> None:
                self.record_exit(proc.slot, region)
                self._advance(proc, [])

            self.engine.call_later(0.0, finish_empty)
            return

        results: List[Optional[Message]] = [None] * len(handles)
        pending_count = [len(remaining)]

        def make_callback(index: int, handle: RequestHandle) -> Callable[[], None]:
            def cb() -> None:
                message = handle.result
                results[index] = message
                if handle.kind == "recv" and message is not None:
                    self._trace_recv(
                        proc.slot,
                        self.engine.now,
                        message.source_global,
                        message.tag,
                        message.comm_id,
                        message.size,
                    )
                pending_count[0] -= 1
                if pending_count[0] == 0:
                    self.record_exit(proc.slot, region)
                    self._advance(proc, results)

            return cb

        for index, handle in enumerate(handles):
            self._when_handle_done(handle, make_callback(index, handle))

    def _do_sendrecv(self, proc: SimProcess, req: SendrecvReq) -> None:
        """Simultaneous send + receive (deadlock-free halo exchanges)."""
        region = "MPI_Sendrecv"
        comm = self.comm_by_id(req.comm_id)
        src_global = proc.rank
        dst_global = comm.global_rank(req.dest)
        now = self.engine.now
        self.record_enter(proc.slot, region)
        proc.blocked_on = region

        # Send half (always behaves like an isend).
        send_event_t = now
        message = Message(
            source=comm.comm_rank(src_global),
            dest=req.dest,
            tag=req.send_tag,
            comm_id=req.comm_id,
            size=req.send_size,
            data=req.data,
            send_enter_time=now,
            send_time=send_event_t,
            source_global=src_global,
            dest_global=dst_global,
        )
        self.stats.p2p_messages += 1
        self.stats.p2p_bytes += req.send_size
        link = self._link_model(src_global, dst_global)
        channel = (req.comm_id, src_global, dst_global)
        self._trace_send(
            proc.slot, send_event_t, dst_global, req.send_tag, req.comm_id, req.send_size
        )
        send_handle = RequestHandle("send", proc.rank)
        if self.params.is_eager(req.send_size):
            departure = now + self.params.send_overhead_s
            arrival = self._channel_clock.clamp(
                channel,
                departure
                + self._transfer_time(link, req.send_size, src_global, dst_global),
            )
            inflight = _InFlight(message, arrival, rendezvous=False, sender_resume=None, sender_handle=None)
            self.engine.call_at(arrival, lambda: self._announce(inflight))
            self._complete_handle(
                send_handle, now + self.params.eager_send_cost_s(req.send_size), None
            )
        else:
            self.stats.rendezvous_messages += 1
            rts_arrival = self._channel_clock.clamp(
                channel,
                now
                + self.params.send_overhead_s
                + self._one_way_latency(link, src_global, dst_global),
            )
            inflight = _InFlight(
                message, rts_arrival, rendezvous=True, sender_resume=None, sender_handle=send_handle
            )
            self.engine.call_at(rts_arrival, lambda: self._announce(inflight))

        # Receive half.
        recv_handle = RequestHandle("recv", proc.rank)
        pending = _PendingRecv(
            proc_rank=proc.rank,
            source=req.source,
            tag=req.recv_tag,
            comm_id=req.comm_id,
            post_time=now,
            handle=recv_handle,
            resume=None,
        )
        self._post_recv(pending)

        done = [False, False]

        def check_done(which: int) -> Callable[[], None]:
            def cb() -> None:
                done[which] = True
                if all(done):
                    received = recv_handle.result
                    assert received is not None
                    self._trace_recv(
                        proc.slot,
                        self.engine.now,
                        received.source_global,
                        received.tag,
                        received.comm_id,
                        received.size,
                    )
                    self.record_exit(proc.slot, region)
                    self._advance(proc, received)

            return cb

        self._when_handle_done(send_handle, check_done(0))
        self._when_handle_done(recv_handle, check_done(1))

    # -- matching ------------------------------------------------------------------

    def _post_recv(self, pending: _PendingRecv) -> None:
        key = (pending.comm_id, pending.proc_rank)
        queue = self._unexpected.setdefault(key, [])
        comm = self.comm_by_id(pending.comm_id)
        for i, inflight in enumerate(queue):
            if self._matches(pending, inflight.message, comm):
                queue.pop(i)
                self._match(pending, inflight, match_time=self.engine.now)
                return
        self._pending_recvs.setdefault(key, []).append(pending)

    def _announce(self, inflight: _InFlight) -> None:
        """A message (or its rendezvous announcement) reaches the receiver."""
        msg = inflight.message
        key = (msg.comm_id, msg.dest_global)
        comm = self.comm_by_id(msg.comm_id)
        pendings = self._pending_recvs.get(key, [])
        for i, pending in enumerate(pendings):
            if self._matches(pending, msg, comm):
                pendings.pop(i)
                self._match(pending, inflight, match_time=self.engine.now)
                return
        self._unexpected.setdefault(key, []).append(inflight)

    @staticmethod
    def _matches(pending: _PendingRecv, msg: Message, comm: CommunicatorData) -> bool:
        if pending.comm_id != msg.comm_id:
            return False
        if pending.source != ANY_SOURCE and pending.source != msg.source:
            return False
        if pending.tag != ANY_TAG and pending.tag != msg.tag:
            return False
        return True

    def _match(self, pending: _PendingRecv, inflight: _InFlight, match_time: float) -> None:
        """Complete a matched pair, honouring the protocol timing."""
        msg = inflight.message
        if inflight.rendezvous:
            link = self._link_model(msg.source_global, msg.dest_global)
            cts = match_time + self._one_way_latency(
                link, msg.dest_global, msg.source_global
            )
            transfer_done = cts + self._transfer_time(
                link, msg.size, msg.source_global, msg.dest_global
            )
            recv_completion = transfer_done + self.params.recv_overhead_s
            if inflight.sender_resume is not None:
                inflight.sender_resume(transfer_done)
            if inflight.sender_handle is not None:
                self._complete_handle(inflight.sender_handle, transfer_done, None)
        else:
            arrival = inflight.announce_time
            recv_completion = max(arrival, pending.post_time) + self.params.recv_overhead_s
            recv_completion = max(recv_completion, match_time)
        if pending.handle is not None:
            self._complete_handle(pending.handle, recv_completion, msg)
        if pending.resume is not None:
            pending.resume(msg, recv_completion)

    # -- handle plumbing ---------------------------------------------------------------

    def _complete_handle(
        self, handle: RequestHandle, completion_time: float, result: Optional[Message]
    ) -> None:
        if handle.completed:
            raise SimulationError(f"handle {handle!r} completed twice")

        def mark() -> None:
            handle.completed = True
            handle.completion_time = self.engine.now
            handle.result = result
            waiter = getattr(handle, "_waiter", None)
            if waiter is not None:
                handle._waiter = None  # type: ignore[attr-defined]
                waiter()

        self.engine.call_at(max(completion_time, self.engine.now), mark)

    def _when_handle_done(self, handle: RequestHandle, callback: Callable[[], None]) -> None:
        if handle.completed:
            self.engine.call_later(0.0, callback)
            return
        existing = getattr(handle, "_waiter", None)
        if existing is not None:
            raise MPIUsageError(f"handle {handle!r} waited on twice")
        handle._waiter = callback  # type: ignore[attr-defined]

    # -- collectives ---------------------------------------------------------------------

    def _do_collective(self, proc: SimProcess, req: CollectiveReq) -> None:
        comm = self.comm_by_id(req.comm_id)
        if not comm.contains(proc.rank):
            raise MPIUsageError(
                f"rank {proc.rank} called {req.op} on communicator "
                f"{comm.name!r} it does not belong to"
            )
        my_comm_rank = comm.comm_rank(proc.rank)
        now = self.engine.now
        self.record_enter(proc.slot, req.op)
        proc.blocked_on = req.op

        instances = self._coll_instances.setdefault(req.comm_id, [])
        index_key = (req.comm_id, proc.rank)
        index = self._coll_next.get(index_key, 0)
        self._coll_next[index_key] = index + 1
        while len(instances) <= index:
            instances.append(_CollectiveInstance(op=req.op, root=req.root, size=req.size))
        instance = instances[index]
        if instance.enter_times and instance.op != req.op:
            raise MPIUsageError(
                f"collective mismatch on {comm.name!r}: rank {proc.rank} called "
                f"{req.op} while others called {instance.op}"
            )
        if not instance.enter_times:
            instance.op = req.op
            instance.root = req.root
            instance.size = req.size
        elif req.op != coll.BARRIER and instance.root != req.root:
            raise MPIUsageError(
                f"root mismatch in {req.op} on {comm.name!r}: "
                f"{req.root} vs {instance.root}"
            )
        instance.size = max(instance.size, req.size)
        instance.enter_times[my_comm_rank] = now
        instance.data[my_comm_rank] = req.data

        # Rooted operations release some participants early: an n-to-1
        # contributor leaves right after injecting its data, a 1-to-n
        # participant leaves as soon as the root's subtree reaches it.
        # Without this, an early contributor would be blocked until the
        # *last* rank arrived — wrong semantics (and exits in the past).
        alpha, inv_bw = self._comm_cost(comm)
        if instance.op in coll.N_TO_1_OPS and my_comm_rank != instance.root:
            exit_time = now + alpha + req.size * inv_bw
            self._schedule_coll_exit(comm, instance, my_comm_rank, exit_time)
        elif instance.op in coll.ONE_TO_N_OPS:
            if my_comm_rank == instance.root:
                self._schedule_coll_exit(
                    comm, instance, my_comm_rank, now + alpha + req.size * inv_bw
                )
                # Release every non-root already waiting for the root.
                for waiting_rank in sorted(instance.enter_times):
                    if waiting_rank not in instance.resumed:
                        self._schedule_one_to_n_exit(
                            comm, instance, waiting_rank, alpha, inv_bw
                        )
            elif instance.root in instance.enter_times:
                self._schedule_one_to_n_exit(
                    comm, instance, my_comm_rank, alpha, inv_bw
                )
        elif instance.op in coll.PREFIX_OPS:
            # A scan rank may leave once every lower comm rank has entered;
            # release the whole frontier of complete prefixes.
            self._release_scan_frontier(comm, instance, alpha, inv_bw)

        if len(instance.enter_times) == comm.size:
            self._complete_collective(comm, instance)

    def _release_scan_frontier(
        self,
        comm: CommunicatorData,
        instance: _CollectiveInstance,
        alpha: float,
        inv_bw: float,
    ) -> None:
        import math as _math

        stages = max(1, _math.ceil(_math.log2(max(2, comm.size))))
        stage_cost = alpha + instance.size * inv_bw
        prefix_max = float("-inf")
        for comm_rank in range(comm.size):
            enter = instance.enter_times.get(comm_rank)
            if enter is None:
                break  # frontier ends at the first missing rank
            prefix_max = max(prefix_max, enter)
            if comm_rank not in instance.resumed:
                self._schedule_coll_exit(
                    comm,
                    instance,
                    comm_rank,
                    max(enter, prefix_max) + stages * stage_cost,
                )

    def _comm_cost(self, comm: CommunicatorData) -> Tuple[float, float]:
        """(alpha, 1/bandwidth) of the communicator's slowest spanned link.

        Cached per communicator id: membership is immutable after creation,
        so the O(size²)-ish link scan ran redundantly on every collective
        entry of every rank.
        """
        cost = self._comm_costs.get(comm.id)
        if cost is None:
            locations = [self.placement.location(g) for g in comm.global_ranks]
            cost = coll.comm_alpha_beta(self.metacomputer, locations, self.params)
            self._comm_costs[comm.id] = cost
        return cost

    def _schedule_one_to_n_exit(
        self,
        comm: CommunicatorData,
        instance: _CollectiveInstance,
        comm_rank: int,
        alpha: float,
        inv_bw: float,
    ) -> None:
        root_enter = instance.enter_times[instance.root]
        depth = coll.binomial_depth(comm_rank, instance.root, comm.size)
        stage_cost = alpha + instance.size * inv_bw
        exit_time = (
            max(instance.enter_times[comm_rank], root_enter) + depth * stage_cost
        )
        self._schedule_coll_exit(comm, instance, comm_rank, exit_time)

    def _schedule_coll_exit(
        self,
        comm: CommunicatorData,
        instance: _CollectiveInstance,
        comm_rank: int,
        exit_time: float,
    ) -> None:
        if comm_rank in instance.resumed:
            raise SimulationError(
                f"comm rank {comm_rank} resumed twice in {instance.op}"
            )
        instance.resumed.add(comm_rank)
        global_rank = comm.global_rank(comm_rank)
        proc = self._procs[global_rank]
        result = self._collective_result(instance, comm_rank)
        sent, recvd = coll.bytes_moved(
            instance.op, instance.size, comm.size, comm_rank, instance.root
        )
        root_global = comm.global_rank(instance.root)
        op, cid = instance.op, comm.id

        def finish() -> None:
            self._trace_coll_exit(proc.slot, self.engine.now, op, cid, root_global, sent, recvd)
            self.record_exit(proc.slot, op)
            self._advance(proc, result)

        self.engine.call_at(max(exit_time, self.engine.now), finish)

    def _complete_collective(self, comm: CommunicatorData, instance: _CollectiveInstance) -> None:
        self.stats.collectives += 1
        locations = self._comm_locations.get(comm.id)
        if locations is None:
            locations = {
                comm.comm_rank(g): self.placement.location(g)
                for g in comm.global_ranks
            }
            self._comm_locations[comm.id] = locations
        timing = coll.collective_exit_times(
            instance.op,
            instance.enter_times,
            instance.root,
            instance.size,
            self.metacomputer,
            locations,
            self.params,
        )
        for comm_rank, exit_time in timing.exit_times.items():
            if comm_rank in instance.resumed:
                continue  # released early by the rooted-op fast path
            self._schedule_coll_exit(comm, instance, comm_rank, exit_time)
        instance.done = True

    # -- fork-join threading ------------------------------------------------------

    def _do_omp_parallel(self, proc: SimProcess, req: OmpParallelReq) -> None:
        """Run a fork-join region: wall time = slowest thread's work."""
        speed = proc.slot.cpu.speed_factor
        busy = [w / speed for w in req.work_seconds]
        busy_max = max(busy)
        busy_sum = sum(busy)
        nthreads = len(busy)
        self.record_enter(proc.slot, req.region)
        proc.blocked_on = req.region

        def finish() -> None:
            if self.tracer is not None:
                self.tracer.omp_region(
                    proc.slot, self.engine.now, req.region, nthreads, busy_sum, busy_max
                )
            self.record_exit(proc.slot, req.region)
            self._advance(proc, None)

        self.engine.call_later(busy_max, finish)

    # -- communicator splitting -------------------------------------------------

    def _do_split(self, proc: SimProcess, req: SplitReq) -> None:
        """MPI_Comm_split: synchronizes like an allgather of (color, key)."""
        comm = self.comm_by_id(req.comm_id)
        if not comm.contains(proc.rank):
            raise MPIUsageError(
                f"rank {proc.rank} called split on communicator "
                f"{comm.name!r} it does not belong to"
            )
        region = "MPI_Comm_split"
        now = self.engine.now
        self.record_enter(proc.slot, region)
        proc.blocked_on = region

        key = (req.comm_id, "split")
        pending = self._split_pending.setdefault(key, [])
        index_key = (req.comm_id, proc.rank, "split")
        index = self._coll_next.get(index_key, 0)
        self._coll_next[index_key] = index + 1
        while len(pending) <= index:
            pending.append({})
        instance = pending[index]
        instance[proc.rank] = (req.color, req.key, now)

        if len(instance) == comm.size:
            self._complete_split(comm, instance, index)

    def _complete_split(self, comm: CommunicatorData, instance: Dict, index: int) -> None:
        self.stats.collectives += 1
        # Exchange of (color, key) behaves like a small allgather.
        alpha, inv_bw = self._comm_cost(comm)
        import math as _math

        stages = max(1, _math.ceil(_math.log2(max(2, comm.size))))
        finish = max(t for (_c, _k, t) in instance.values()) + stages * (
            alpha + 8 * inv_bw
        )
        # Group by color; order members by (key, old comm rank).
        by_color: Dict[int, List[Tuple[int, int, int]]] = {}
        for global_rank, (color, key, _t) in instance.items():
            if color is None:
                continue
            by_color.setdefault(color, []).append(
                (key, comm.comm_rank(global_rank), global_rank)
            )
        new_comms: Dict[int, CommunicatorData] = {}
        for color in sorted(by_color):
            members = [g for (_k, _old, g) in sorted(by_color[color])]
            name = f"{comm.name}.split{index}.c{color}"
            counter = 0
            base = name
            while name in self._comms_by_name:
                counter += 1
                name = f"{base}#{counter}"
            new_comms[color] = self.new_communicator(name, members)

        for global_rank, (color, _key, _t) in instance.items():
            proc = self._procs[global_rank]
            data = new_comms.get(color) if color is not None else None
            result = (
                Communicator(data, global_rank) if data is not None else None
            )

            def make_finish(p: SimProcess, res: Any) -> Callable[[], None]:
                def finish() -> None:
                    self._trace_coll_exit(
                        p.slot, self.engine.now, "MPI_Comm_split", comm.id,
                        comm.global_rank(0), 8, 8 * comm.size,
                    )
                    self.record_exit(p.slot, "MPI_Comm_split")
                    self._advance(p, res)

                return finish

            self.engine.call_at(max(finish, self.engine.now), make_finish(proc, result))

    @staticmethod
    def _collective_result(instance: _CollectiveInstance, comm_rank: int) -> Any:
        op = instance.op
        if op == coll.BARRIER:
            return None
        if op in coll.ONE_TO_N_OPS:
            return instance.data.get(instance.root)
        if op in coll.N_TO_1_OPS:
            return dict(instance.data) if comm_rank == instance.root else None
        if op in coll.PREFIX_OPS:
            # Inclusive prefix: contributions of comm ranks 0..self.
            return {r: d for r, d in instance.data.items() if r <= comm_rank}
        # n-to-n: everyone sees all contributions.
        return dict(instance.data)
