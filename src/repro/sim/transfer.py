"""Point-to-point message timing: eager and rendezvous protocols.

Short messages use the *eager* protocol — the sender deposits the message
and returns after a copy overhead; the payload travels asynchronously and
arrives ``latency + size/bandwidth`` later.  Long messages use *rendezvous*
— the transfer only starts once the receiver has posted a matching receive,
so the sender blocks until then (this is what makes the *Late Receiver*
pattern observable).

Per-(sender, receiver) FIFO delivery is enforced by clamping each arrival to
be no earlier than the previous arrival on that channel, matching MPI's
non-overtaking rule even though individual latency samples are random.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import isfinite

from repro.errors import SimulationError


@dataclass(frozen=True)
class RetryPolicy:
    """Sender-side retransmission policy for lost messages.

    When a fault plan drops (or blacks out) a message, the sending transport
    retransmits after an exponentially growing backoff until the message
    gets through, the attempt budget is exhausted, or the accumulated
    backoff exceeds ``timeout_s`` — whichever comes first.  Exhaustion
    surfaces as :class:`~repro.errors.CommunicationTimeoutError` (permanent
    link death).  With no faults injected the policy is never consulted.

    Parameters
    ----------
    max_attempts:
        Total delivery attempts (original send + retransmits), >= 1.
    base_backoff_s:
        Backoff before the first retransmit.
    backoff_multiplier:
        Factor applied to the backoff after every failed attempt.
    timeout_s:
        Give up once the summed backoff would exceed this bound.
    """

    max_attempts: int = 5
    base_backoff_s: float = 200e-6
    backoff_multiplier: float = 2.0
    timeout_s: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError("retry policy needs at least one attempt")
        if self.base_backoff_s < 0 or self.timeout_s <= 0:
            raise SimulationError("retry backoff/timeout must be non-negative/positive")
        if self.backoff_multiplier < 1.0:
            raise SimulationError("backoff multiplier must be >= 1")
        if not (
            isfinite(self.base_backoff_s)
            and isfinite(self.backoff_multiplier)
            and isfinite(self.timeout_s)
        ):
            # `x < 0` is False for NaN — without this, a NaN backoff would
            # pass the range checks and poison every retransmit schedule.
            raise SimulationError("retry policy parameters must be finite")

    def backoff_s(self, attempt: int) -> float:
        """Backoff delay before retransmission number *attempt* (1-based)."""
        if attempt < 1:
            raise SimulationError(f"retransmit attempt must be >= 1: {attempt}")
        return self.base_backoff_s * self.backoff_multiplier ** (attempt - 1)


@dataclass(frozen=True)
class SimParams:
    """Tunable constants of the MPI timing model.

    Parameters
    ----------
    eager_threshold_bytes:
        Messages up to this size use the eager protocol (MPICH-like 64 KiB
        default).
    send_overhead_s / recv_overhead_s:
        CPU-side cost of issuing a send / completing a receive.
    copy_bandwidth_bps:
        Memory-copy bandwidth for eager buffering (sender-side cost).
    collective_alpha_factor:
        Multiplier on the per-stage latency term of collective cost models.
    nonblocking_overhead_s:
        CPU cost of posting an isend/irecv and of a (no-wait) test.
    measurement_exchanges:
        Ping-pong count used by clock-offset measurements at run start/end.
    retry:
        Retransmission policy consulted when a fault plan interferes with
        message delivery; inert without fault injection.
    """

    eager_threshold_bytes: int = 65536
    send_overhead_s: float = 1.0e-6
    recv_overhead_s: float = 1.0e-6
    copy_bandwidth_bps: float = 2.0e9
    collective_alpha_factor: float = 1.0
    nonblocking_overhead_s: float = 0.5e-6
    measurement_exchanges: int = 8
    retry: RetryPolicy = RetryPolicy()

    def __post_init__(self) -> None:
        if self.eager_threshold_bytes < 0:
            raise SimulationError("eager threshold must be non-negative")
        if min(self.send_overhead_s, self.recv_overhead_s, self.nonblocking_overhead_s) < 0:
            raise SimulationError("overheads must be non-negative")
        if self.copy_bandwidth_bps <= 0:
            raise SimulationError("copy bandwidth must be positive")
        if self.measurement_exchanges < 1:
            raise SimulationError("need at least one measurement exchange")
        if not all(
            isfinite(v)
            for v in (
                self.send_overhead_s,
                self.recv_overhead_s,
                self.nonblocking_overhead_s,
                self.copy_bandwidth_bps,
                self.collective_alpha_factor,
            )
        ):
            # NaN overheads pass every `< 0` check and would become NaN
            # event times; the engine now rejects those, so fail at the
            # source with a message naming the actual misconfiguration.
            raise SimulationError("timing constants must be finite")

    def is_eager(self, size_bytes: int) -> bool:
        return size_bytes <= self.eager_threshold_bytes

    def eager_send_cost_s(self, size_bytes: int) -> float:
        """Sender-side busy time of an eager send (overhead + buffer copy)."""
        return self.send_overhead_s + size_bytes / self.copy_bandwidth_bps


class ChannelClock:
    """Per-(src, dst, comm) FIFO arrival clamp (MPI non-overtaking rule)."""

    __slots__ = ("_last",)

    def __init__(self) -> None:
        self._last: dict = {}

    def clamp(self, channel: tuple, arrival: float) -> float:
        """Return the FIFO-consistent arrival time and remember it."""
        last = self._last.get(channel, float("-inf"))
        arrival = max(arrival, last)
        self._last[channel] = arrival
        return arrival
