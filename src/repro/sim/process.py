"""Generator-based simulated processes.

An application "process" is a Python generator that yields request objects
(compute blocks and MPI calls) and is resumed with the request's result once
the simulated operation completes.  This mirrors how trace-replay tools
think about a rank: a sequence of regions and communication operations.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.topology.metacomputer import ProcessSlot

#: Type of application generators: they yield request objects and receive
#: operation results.
AppGenerator = Generator[Any, Any, None]


class ProcessState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class SimProcess:
    """One simulated MPI rank driving an application generator."""

    def __init__(self, slot: ProcessSlot, generator: AppGenerator) -> None:
        self.slot = slot
        self.generator = generator
        self.state = ProcessState.READY
        self.finish_time: Optional[float] = None
        #: Exception that terminated the process, if any.
        self.failure: Optional[BaseException] = None
        #: Set by the world while an MPI call is in flight (diagnostics).
        self.blocked_on: Optional[str] = None

    @property
    def rank(self) -> int:
        return self.slot.rank

    @property
    def done(self) -> bool:
        return self.state in (ProcessState.DONE, ProcessState.FAILED)

    def step(self, value: Any = None) -> Any:
        """Resume the generator with *value*; return the next request.

        Returns ``None`` when the generator finished.  Exceptions raised by
        application code are recorded and re-raised wrapped in
        :class:`SimulationError` so the world can report the failing rank.
        """
        if self.done:
            raise SimulationError(f"rank {self.rank} already finished")
        self.state = ProcessState.RUNNING
        try:
            request = self.generator.send(value)
        except StopIteration:
            self.state = ProcessState.DONE
            return None
        except BaseException as exc:  # noqa: BLE001 - reported with context
            self.state = ProcessState.FAILED
            self.failure = exc
            from repro.errors import ReproError

            if isinstance(exc, ReproError):
                # Toolkit errors (bad rank, bad size, ...) keep their type.
                raise
            raise SimulationError(f"rank {self.rank} raised {exc!r}") from exc
        self.state = ProcessState.BLOCKED
        return request

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return (
            f"SimProcess(rank={self.rank}, state={self.state.value}, "
            f"blocked_on={self.blocked_on!r})"
        )
