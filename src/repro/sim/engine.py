"""Minimal deterministic discrete-event engine.

A binary heap of ``(time, sequence, callback)`` entries.  The sequence
number breaks ties in insertion order, which — together with seeding every
random draw from one :class:`numpy.random.Generator` — makes entire
simulations bit-reproducible from a single seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Cancelable reference to a scheduled callback."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    def cancel(self) -> None:
        self._entry.cancelled = True

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled


class Engine:
    """The event loop.  Time is in (true) seconds and never runs backwards."""

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current true simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far (engine statistics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* at absolute time *time* (must not precede now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        entry = _Entry(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in time order.

        Stops when the heap is empty, when the next event lies beyond
        *until*, or after *max_events* callbacks (a runaway-loop backstop).
        """
        executed = 0
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self._now = until
                return
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            self._now = entry.time
            entry.callback()
            self._processed += 1
            executed += 1
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events — likely livelock"
                )

    def empty(self) -> bool:
        return all(e.cancelled for e in self._heap)
