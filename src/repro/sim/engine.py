"""Minimal deterministic discrete-event engine.

A binary heap of plain ``[time, seq, callback, pooled]`` list entries.  The
sequence number breaks ties in insertion order (and is unique, so comparison
never reaches the callback slot), which — together with seeding every random
draw from one :class:`numpy.random.Generator` — makes entire simulations
bit-reproducible from a single seed.

Cancellation flips the callback slot to ``None`` and decrements a live-entry
counter, so :meth:`Engine.pending_events` and :meth:`Engine.empty` are O(1)
and cancelled entries cost one heap pop when their time comes instead of a
full-heap scan on every query.

Two scheduling surfaces exist.  :meth:`Engine.schedule` /
:meth:`Engine.schedule_at` return an :class:`EventHandle` for callers that
may cancel.  :meth:`Engine.call_later` / :meth:`Engine.call_at` are the hot
path: no handle is created, and the entry list itself is recycled through a
small free pool once its callback has run — per-message scheduling then
allocates nothing in the steady state.  Only handle-less entries are pooled;
an entry referenced by an :class:`EventHandle` is never reused, so a stale
handle can never cancel an unrelated later event.

All four reject non-finite times: ``delay < 0`` is ``False`` for NaN, so the
old guard let ``NaN``/``inf`` stamps into the heap, where a single NaN
poisons the heap invariant (every comparison with NaN is ``False``) and
corrupts event ordering for the rest of the run.
"""

from __future__ import annotations

import heapq
from math import isfinite
from typing import Callable, List, Optional

from repro.errors import SimulationError

#: Callback-slot sentinel for entries whose callback already ran (or was
#: skipped as cancelled); distinguishes them from cancelled-but-pending
#: entries (``None``) so a late ``cancel()`` cannot corrupt the counter.
_DONE = object()

# Entry layout: [time, seq, callback, pooled]; callback is None once
# cancelled and _DONE once consumed by the run loop.  ``pooled`` marks
# handle-less entries eligible for recycling.
_TIME, _SEQ, _CALLBACK, _POOLED = 0, 1, 2, 3

#: Upper bound on recycled entry lists kept around (covers scheduling
#: bursts; beyond this, entries are simply dropped to the allocator).
_POOL_MAX = 1024


class EventHandle:
    """Cancelable reference to a scheduled callback."""

    __slots__ = ("_entry", "_engine")

    def __init__(self, entry: list, engine: "Engine") -> None:
        self._entry = entry
        self._engine = engine

    def cancel(self) -> None:
        if self._entry[_CALLBACK] is not None and self._entry[_CALLBACK] is not _DONE:
            self._entry[_CALLBACK] = None
            self._engine._live -= 1

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        return self._entry[_CALLBACK] is None


class Engine:
    """The event loop.  Time is in (true) seconds and never runs backwards."""

    def __init__(self) -> None:
        self._heap: List[list] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0
        self._live = 0  # non-cancelled entries still in the heap
        self._pool: List[list] = []  # recycled handle-less entries

    @property
    def now(self) -> float:
        """Current true simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far (engine statistics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) scheduled callbacks — O(1)."""
        return self._live

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* ``delay`` seconds from now."""
        if delay < 0 or not isfinite(delay):
            raise SimulationError(
                f"cannot schedule a negative or non-finite delay: delay={delay}"
            )
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* at absolute time *time* (must not precede now)."""
        if time < self._now or not isfinite(time):
            raise SimulationError(
                f"cannot schedule into the past or at a non-finite time: "
                f"t={time}, now={self._now}"
            )
        entry = [time, self._seq, callback, False]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        self._live += 1
        return EventHandle(entry, self)

    def call_later(self, delay: float, callback: Callable[[], None]) -> None:
        """Handle-less :meth:`schedule` (hot path; cannot be cancelled)."""
        if delay < 0 or not isfinite(delay):
            raise SimulationError(
                f"cannot schedule a negative or non-finite delay: delay={delay}"
            )
        self.call_at(self._now + delay, callback)

    def call_at(self, time: float, callback: Callable[[], None]) -> None:
        """Handle-less :meth:`schedule_at` (hot path; cannot be cancelled).

        The entry list is drawn from (and eventually returned to) the free
        pool, so steady-state scheduling performs no allocation.
        """
        if time < self._now or not isfinite(time):
            raise SimulationError(
                f"cannot schedule into the past or at a non-finite time: "
                f"t={time}, now={self._now}"
            )
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[_TIME] = time
            entry[_SEQ] = self._seq
            entry[_CALLBACK] = callback
        else:
            entry = [time, self._seq, callback, True]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        self._live += 1

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in time order.

        Stops when the heap is empty, when the next event lies beyond
        *until*, or after *max_events* callbacks (a runaway-loop backstop).
        In every stop case with *until* set, ``now`` ends up at *until*
        (never beyond it, never stale behind it).

        Same-timestamp wakeups are drained in one batch: ``now`` is written
        and the stop condition re-checked once per distinct timestamp, not
        once per callback — timer-heavy workloads schedule many completions
        at identical times (eager arrivals, collective exits).
        """
        heap = self._heap
        pool = self._pool
        pop = heapq.heappop
        executed = 0
        while heap:
            batch_time = heap[0][_TIME]
            if until is not None and batch_time > until:
                self._now = until
                return
            self._now = batch_time
            while heap and heap[0][_TIME] == batch_time:
                entry = pop(heap)
                callback = entry[_CALLBACK]
                if callback is None:  # cancelled; stays marked cancelled forever
                    continue  # (never pooled: only handles can cancel)
                entry[_CALLBACK] = _DONE
                self._live -= 1
                callback()
                self._processed += 1
                executed += 1
                if entry[_POOLED] and len(pool) < _POOL_MAX:
                    pool.append(entry)
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events — likely livelock"
                    )
        # Heap drained before reaching *until*: idle time still passes.
        if until is not None and until > self._now:
            self._now = until

    def empty(self) -> bool:
        """True when no live callbacks remain — O(1)."""
        return self._live == 0
