"""Cost models for collective operations.

Collectives are simulated centrally: once every rank of the communicator
has entered the operation, per-rank exit times are computed from the enter
times plus an algorithmic cost model.  The models are deliberately simple
(logarithmic latency terms, bandwidth terms on the slowest link spanned by
the communicator) — the wait-state patterns depend on the *synchronization
semantics*, which are modeled exactly:

* n-to-n operations (allreduce, allgather, alltoall, barrier): no rank can
  finish before the last rank has started (→ *Wait at N×N* / *Wait at
  Barrier*).
* 1-to-n operations (bcast, scatter): no non-root can finish before the
  root has started (→ *Late Broadcast*).
* n-to-1 operations (reduce, gather): the root cannot finish before the
  last rank has started; non-roots leave after injecting their data
  (→ *Early Reduce*).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import MPIUsageError
from repro.ids import Location
from repro.sim.transfer import SimParams
from repro.topology.metacomputer import Metacomputer

#: Collective operation names (the MPI region names recorded in traces).
BARRIER = "MPI_Barrier"
BCAST = "MPI_Bcast"
REDUCE = "MPI_Reduce"
ALLREDUCE = "MPI_Allreduce"
GATHER = "MPI_Gather"
ALLGATHER = "MPI_Allgather"
ALLTOALL = "MPI_Alltoall"
SCATTER = "MPI_Scatter"
SCAN = "MPI_Scan"

#: Operations with n-to-n synchronization semantics (Wait at N×N applies).
N_TO_N_OPS = frozenset({ALLREDUCE, ALLGATHER, ALLTOALL})
#: Operations with 1-to-n semantics (Late Broadcast applies).
ONE_TO_N_OPS = frozenset({BCAST, SCATTER})
#: Operations with n-to-1 semantics (Early Reduce applies).
N_TO_1_OPS = frozenset({REDUCE, GATHER})
#: Prefix operations: rank i depends on ranks 0..i (Early Scan applies).
PREFIX_OPS = frozenset({SCAN})

ALL_COLLECTIVES = frozenset(
    {BARRIER} | N_TO_N_OPS | ONE_TO_N_OPS | N_TO_1_OPS | PREFIX_OPS
)


@dataclass(frozen=True)
class CollectiveTiming:
    """Per-rank exit times of one collective instance (keyed by comm rank)."""

    exit_times: Dict[int, float]


def comm_alpha_beta(
    metacomputer: Metacomputer,
    locations: Sequence[Location],
    params: SimParams,
) -> tuple:
    """Worst-case per-stage latency (alpha) and inverse bandwidth (beta).

    Collective algorithms are dominated by their slowest hop; we use the
    most expensive link class spanned by the communicator.
    """
    alpha = 0.0
    inv_bw = 0.0
    machines = {loc.machine for loc in locations}
    if len(machines) > 1:
        machines_sorted = sorted(machines)
        for i, a in enumerate(machines_sorted):
            for b in machines_sorted[i + 1 :]:
                link = metacomputer.external_link(a, b)
                alpha = max(alpha, link.latency_s)
                inv_bw = max(inv_bw, 1.0 / link.bandwidth_bps)
    for machine in sorted(machines):
        link = metacomputer.internal_link(machine)
        alpha = max(alpha, link.latency_s)
        inv_bw = max(inv_bw, 1.0 / link.bandwidth_bps)
    return alpha * params.collective_alpha_factor, inv_bw


def _stages(nprocs: int) -> int:
    return max(1, math.ceil(math.log2(max(2, nprocs))))


def binomial_depth(comm_rank: int, root: int, nprocs: int) -> int:
    """Depth of *comm_rank* in a binomial tree rooted at *root*."""
    distance = (comm_rank - root) % nprocs
    return max(1, distance.bit_length())


def collective_exit_times(
    op: str,
    enter_times: Dict[int, float],
    root: int,
    size_bytes: int,
    metacomputer: Metacomputer,
    locations: Dict[int, Location],
    params: SimParams,
) -> CollectiveTiming:
    """Compute per-rank exit times for one collective instance.

    Parameters
    ----------
    op:
        One of the module's collective name constants.
    enter_times:
        Comm-rank → true time the rank entered the operation.  All ranks of
        the communicator must be present.
    root:
        Root comm rank for rooted operations (ignored otherwise).
    size_bytes:
        Per-rank payload size.
    locations:
        Comm-rank → location, used to derive the spanned link classes.
    """
    if op not in ALL_COLLECTIVES:
        raise MPIUsageError(f"unknown collective operation {op!r}")
    ranks: List[int] = sorted(enter_times)
    if not ranks:
        raise MPIUsageError("collective with empty communicator")
    if op in ONE_TO_N_OPS or op in N_TO_1_OPS:
        if root not in enter_times:
            raise MPIUsageError(f"root {root} not in communicator ranks {ranks}")
    nprocs = len(ranks)
    alpha, inv_bw = comm_alpha_beta(
        metacomputer, [locations[r] for r in ranks], params
    )
    stages = _stages(nprocs)
    last_enter = max(enter_times.values())
    stage_cost = alpha + size_bytes * inv_bw

    exits: Dict[int, float] = {}
    if op == BARRIER:
        # Dissemination barrier: everyone leaves together, one latency round
        # per stage after the last arrival.
        finish = last_enter + stages * alpha
        exits = {r: finish for r in ranks}
    elif op in N_TO_N_OPS:
        # Butterfly/recursive-doubling: nobody finishes before the last
        # entry; log(p) stages each moving the payload.
        volume_factor = nprocs if op == ALLTOALL else 1
        finish = last_enter + stages * stage_cost * volume_factor
        exits = {r: finish for r in ranks}
    elif op in ONE_TO_N_OPS:
        # Binomial tree from the root: a non-root may have to wait for the
        # root to arrive; the root leaves after injecting into the tree.
        root_enter = enter_times[root]
        for r in ranks:
            if r == root:
                exits[r] = root_enter + stage_cost
            else:
                depth = binomial_depth(r, root, nprocs)
                exits[r] = max(enter_times[r], root_enter) + depth * stage_cost
    elif op in N_TO_1_OPS:
        # Non-roots inject and leave; the root must wait for the slowest
        # contributor.
        for r in ranks:
            if r == root:
                exits[r] = last_enter + stages * stage_cost
            else:
                exits[r] = enter_times[r] + stage_cost
    elif op in PREFIX_OPS:
        # Prefix reduction: rank i cannot finish before every lower rank
        # has started (its result depends on their contributions).
        for r in ranks:
            prefix_last = max(enter_times[j] for j in ranks if j <= r)
            exits[r] = max(enter_times[r], prefix_last) + stages * stage_cost
    # Exit must never precede entry.
    for r in ranks:
        exits[r] = max(exits[r], enter_times[r])
    return CollectiveTiming(exit_times=exits)


def bytes_moved(op: str, size_bytes: int, nprocs: int, comm_rank: int, root: int) -> tuple:
    """(sent, received) byte counts recorded in a rank's COLLEXIT event.

    Mirrors the bookkeeping of EPILOG collective-exit records; the pattern
    analysis itself only needs the op semantics, but reports use the
    volumes.
    """
    if op == BARRIER:
        return (0, 0)
    if op in N_TO_N_OPS:
        if op == ALLTOALL:
            return (size_bytes * (nprocs - 1), size_bytes * (nprocs - 1))
        return (size_bytes, size_bytes * (nprocs - 1))
    if op in ONE_TO_N_OPS:
        if comm_rank == root:
            return (size_bytes * (nprocs - 1), 0)
        return (0, size_bytes)
    if op in N_TO_1_OPS:
        if comm_rank == root:
            return (0, size_bytes * (nprocs - 1))
        return (size_bytes, 0)
    if op in PREFIX_OPS:
        # Each rank forwards its prefix once and receives one contribution.
        sent = size_bytes if comm_rank < nprocs - 1 else 0
        recvd = size_bytes if comm_rank > 0 else 0
        return (sent, recvd)
    raise MPIUsageError(f"unknown collective operation {op!r}")
