"""Skeleton re-execution on a target metacomputer.

The replay application walks each rank's action list: compute segments are
rescaled by the CPU-speed ratio, communication operations are re-issued
through the target world's MPI layer — their timing (including every wait
state) emerges from the target machine's latency/bandwidth/speed model.
The re-timed run is traced and archived like a real one, so the standard
analyzer produces a *predicted* wait-state report for the target machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.replay import AnalysisResult, analyze_run
from repro.errors import ConfigurationError
from repro.predict.skeleton import (
    CollectiveAction,
    ComputeAction,
    ProgramSkeleton,
    RecvAction,
    RegionAction,
    SendAction,
    SendrecvAction,
    WaitSendsAction,
)
from repro.sim.mpi import Communicator
from repro.sim.runtime import MetaMPIRuntime, RunResult
from repro.sim.transfer import SimParams
from repro.topology.metacomputer import Metacomputer, Placement


@dataclass
class PredictionOutcome:
    """A predicted run plus its analysis."""

    run: RunResult
    result: AnalysisResult
    skeleton: ProgramSkeleton

    @property
    def predicted_seconds(self) -> float:
        """Predicted wall time of the slowest rank."""
        return self.run.stats.finish_time


def _make_replay_app(skeleton: ProgramSkeleton, comm_names: Dict[int, str]):
    def app(ctx):
        actions = skeleton.actions.get(ctx.rank, [])
        speed_ratio = skeleton.source_speed[ctx.rank] / ctx.slot.cpu.speed_factor
        comms: Dict[int, Optional[Communicator]] = {}

        def comm_for(comm_id: int) -> Communicator:
            if comm_id not in comms:
                name = comm_names[comm_id]
                comms[comm_id] = ctx.comm if name == "world" else ctx.get_comm(name)
            comm = comms[comm_id]
            if comm is None:
                raise ConfigurationError(
                    f"rank {ctx.rank} replays an op on communicator "
                    f"{comm_names[comm_id]!r} it does not belong to"
                )
            return comm

        pending_sends = []
        open_region: Optional[str] = None
        for action in actions:
            if isinstance(action, ComputeAction):
                yield ctx.sleep(action.seconds * speed_ratio)
            elif isinstance(action, RegionAction):
                if open_region is not None:
                    ctx.exit(open_region)
                ctx.enter(action.name)
                open_region = action.name
            elif isinstance(action, SendAction):
                comm = comm_for(action.comm)
                dest = comm.data.comm_rank(action.dest_global)
                if action.nonblocking:
                    handle = yield comm.isend(dest, action.size, tag=action.tag)
                    pending_sends.append(handle)
                elif action.synchronous:
                    yield comm.ssend(dest, action.size, tag=action.tag)
                else:
                    yield comm.send(dest, action.size, tag=action.tag)
            elif isinstance(action, RecvAction):
                comm = comm_for(action.comm)
                yield comm.recv(comm.data.comm_rank(action.source_global), action.tag)
            elif isinstance(action, SendrecvAction):
                comm = comm_for(action.comm)
                yield comm.sendrecv(
                    dest=comm.data.comm_rank(action.dest_global),
                    send_size=action.send_size,
                    send_tag=action.send_tag,
                    source=comm.data.comm_rank(action.source_global),
                    recv_tag=action.recv_tag,
                )
            elif isinstance(action, WaitSendsAction):
                if action.all_pending:
                    if pending_sends:
                        yield ctx.comm.waitall(pending_sends)
                        pending_sends = []
                elif pending_sends:
                    yield ctx.comm.wait(pending_sends.pop(0))
            elif isinstance(action, CollectiveAction):
                comm = comm_for(action.comm)
                root = comm.data.comm_rank(action.root_global)
                op = action.op
                if op == "MPI_Barrier":
                    yield comm.barrier()
                elif op == "MPI_Allreduce":
                    yield comm.allreduce(action.size)
                elif op == "MPI_Allgather":
                    yield comm.allgather(action.size)
                elif op == "MPI_Alltoall":
                    yield comm.alltoall(action.size)
                elif op == "MPI_Bcast":
                    yield comm.bcast(action.size, root=root)
                elif op == "MPI_Scatter":
                    yield comm.scatter(action.size, root=root)
                elif op == "MPI_Reduce":
                    yield comm.reduce(action.size, root=root)
                elif op == "MPI_Gather":
                    yield comm.gather(action.size, root=root)
                elif op == "MPI_Scan":
                    yield comm.scan(action.size)
                else:
                    raise ConfigurationError(f"cannot replay collective {op!r}")
            else:  # pragma: no cover - closed union
                raise ConfigurationError(f"unknown action {action!r}")
        if pending_sends:
            yield ctx.comm.waitall(pending_sends)
        if open_region is not None:
            ctx.exit(open_region)

    return app


def predict_run(
    skeleton: ProgramSkeleton,
    target: Metacomputer,
    placement: Placement,
    params: SimParams = SimParams(),
    seed: int = 0,
) -> PredictionOutcome:
    """Re-execute *skeleton* on the target machine and analyze the result.

    The placement must provide exactly the skeleton's world size; rank *i*
    of the skeleton runs on slot *i* of the target placement.
    """
    if placement.size != skeleton.world_size:
        raise ConfigurationError(
            f"skeleton has {skeleton.world_size} ranks but the target "
            f"placement provides {placement.size}"
        )
    comm_names = {cid: name for cid, (name, _r) in skeleton.communicators.items()}
    subcomms = {
        name: list(ranks)
        for cid, (name, ranks) in skeleton.communicators.items()
        if name != "world"
    }
    runtime = MetaMPIRuntime(
        target,
        placement,
        params=params,
        seed=seed,
        subcomms=subcomms,
        archive_path="/work/epik_predicted",
    )
    run = runtime.run(_make_replay_app(skeleton, comm_names))
    result = analyze_run(run)
    return PredictionOutcome(run=run, result=result, skeleton=skeleton)
