"""Trace-driven performance prediction (DIMEMAS-style what-if analysis).

The paper's related work (Section 2) cites Badia et al., who "used the
prediction tool DIMEMAS to predict the performance on a metacomputer based
on execution traces from a single machine in combination with measured
network parameters".  This package implements that workflow on top of the
reproduction's own substrates: a *program skeleton* — per-rank sequences of
compute segments and communication operations — is extracted from an
analyzed trace, compute segments are rescaled by CPU-speed ratios, and the
skeleton is re-executed on any target metacomputer by the discrete-event
simulator.  The re-timed run can then be traced and analyzed like a real
one, closing the loop: *predict the wait states of a metacomputer port
before running it*.
"""

from repro.predict.skeleton import (
    ProgramSkeleton,
    extract_skeleton,
    skeleton_from_run,
)
from repro.predict.predictor import predict_run, PredictionOutcome

__all__ = [
    "ProgramSkeleton",
    "extract_skeleton",
    "skeleton_from_run",
    "predict_run",
    "PredictionOutcome",
]
