"""Program-skeleton extraction from analyzed traces.

A skeleton is, per rank, the ordered sequence of

* **compute segments** — the gaps between consecutive MPI operations
  (application work, *excluding* any waiting, which lives inside the MPI
  operations and is re-derived by the target simulation), and
* **communication operations** — sends/receives/collectives with their
  byte counts, tags, communicators and (global-rank) peers.

Limitations, by design: non-blocking receives are replayed as blocking
receives at their completion point (the posting ``MPI_Irecv`` carries no
matching information in the trace); an ``MPI_Wait``/``MPI_Waitall`` without
receive records is replayed as completing the oldest / all outstanding
non-blocking sends.  Region structure is flattened to the innermost user
region enclosing each operation, so predicted severities can still be
localized to functions like ``cgiteration``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.callpath import ROOT_PATH, CallPathRegistry
from repro.analysis.instances import MPIOpInstance
from repro.analysis.replay import AnalysisResult
from repro.errors import AnalysisError, ConfigurationError
from repro.trace.regions import RegionRegistry, is_mpi_region

# -- actions -----------------------------------------------------------------


@dataclass(frozen=True)
class ComputeAction:
    """Source-machine wall seconds of application work."""

    seconds: float


@dataclass(frozen=True)
class SendAction:
    dest_global: int
    size: int
    tag: int
    comm: int
    synchronous: bool = False
    nonblocking: bool = False


@dataclass(frozen=True)
class RecvAction:
    source_global: int
    tag: int
    comm: int


@dataclass(frozen=True)
class SendrecvAction:
    dest_global: int
    send_size: int
    send_tag: int
    source_global: int
    recv_tag: int
    comm: int


@dataclass(frozen=True)
class WaitSendsAction:
    """Complete outstanding non-blocking sends (oldest one, or all)."""

    all_pending: bool


@dataclass(frozen=True)
class CollectiveAction:
    op: str
    comm: int
    root_global: int
    size: int


@dataclass(frozen=True)
class RegionAction:
    """Switch the active (flattened) user region."""

    name: str


Action = Union[
    ComputeAction,
    SendAction,
    RecvAction,
    SendrecvAction,
    WaitSendsAction,
    CollectiveAction,
    RegionAction,
]


@dataclass
class ProgramSkeleton:
    """Everything needed to re-execute a traced program elsewhere."""

    actions: Dict[int, List[Action]] = field(default_factory=dict)
    #: Communicator id → (name, global ranks), copied from the source run.
    communicators: Dict[int, Tuple[str, Tuple[int, ...]]] = field(default_factory=dict)
    #: Source CPU speed factor per rank (for compute rescaling).
    source_speed: Dict[int, float] = field(default_factory=dict)

    @property
    def world_size(self) -> int:
        return len(self.actions)

    def action_count(self) -> int:
        return sum(len(a) for a in self.actions.values())

    def compute_seconds(self, rank: int) -> float:
        return sum(
            a.seconds for a in self.actions.get(rank, []) if isinstance(a, ComputeAction)
        )


def invert_bytes_moved(
    op: str, sent: int, recvd: int, nprocs: int, is_root: bool
) -> int:
    """Recover the per-rank payload size from a COLLEXIT's byte counters."""
    others = max(1, nprocs - 1)
    if op == "MPI_Barrier":
        return 0
    if op == "MPI_Alltoall":
        return sent // others
    if op in ("MPI_Allreduce", "MPI_Allgather"):
        return sent
    if op in ("MPI_Bcast", "MPI_Scatter"):
        return (sent // others) if is_root else recvd
    if op in ("MPI_Reduce", "MPI_Gather"):
        return (recvd // others) if is_root else sent
    if op == "MPI_Scan":
        return max(sent, recvd)
    raise AnalysisError(f"unknown collective {op!r}")


def _enclosing_user_region(
    op: MPIOpInstance, callpaths: CallPathRegistry, regions: RegionRegistry
) -> Optional[str]:
    """Innermost non-MPI region on the op's call path."""
    cpid = callpaths.path(op.cpid).parent
    while cpid != ROOT_PATH:
        name = regions.name_of(callpaths.path(cpid).region)
        if not is_mpi_region(name):
            return name
        cpid = callpaths.path(cpid).parent
    return None


def _op_actions(op: MPIOpInstance) -> List[Action]:
    """Translate one MPI op instance into replayable actions."""
    name = op.op_name
    if op.coll is not None:
        if name == "MPI_Comm_split":
            # The created communicator's membership is not recorded in the
            # trace; replay the operation's synchronization effect (it
            # behaves like a small allgather) as a barrier.
            name = "MPI_Barrier"
        return [
            CollectiveAction(
                op=name,
                comm=op.coll.comm,
                root_global=op.coll.root,
                size=invert_bytes_moved(
                    name,
                    op.coll.sent,
                    op.coll.recvd,
                    nprocs=0,  # patched by the caller, needs comm size
                    is_root=False,
                ),
            )
        ]
    if name == "MPI_Sendrecv":
        if len(op.sends) != 1 or len(op.recvs) != 1:
            raise AnalysisError("sendrecv op without exactly one send and recv")
        send, recv = op.sends[0], op.recvs[0]
        return [
            SendrecvAction(
                dest_global=send.dest,
                send_size=send.size,
                send_tag=send.tag,
                source_global=recv.source,
                recv_tag=recv.tag,
                comm=send.comm,
            )
        ]
    actions: List[Action] = []
    for send in op.sends:
        actions.append(
            SendAction(
                dest_global=send.dest,
                size=send.size,
                tag=send.tag,
                comm=send.comm,
                synchronous=(name == "MPI_Ssend"),
                nonblocking=(name == "MPI_Isend"),
            )
        )
    for recv in op.recvs:
        actions.append(RecvAction(source_global=recv.source, tag=recv.tag, comm=recv.comm))
    if name == "MPI_Waitall":
        actions.append(WaitSendsAction(all_pending=True))
    elif name == "MPI_Wait" and not op.recvs:
        actions.append(WaitSendsAction(all_pending=False))
    # MPI_Irecv instances carry nothing (their RECV lands in the wait).
    return actions


def extract_skeleton(
    result: AnalysisResult,
    source_speed: Dict[int, float],
) -> ProgramSkeleton:
    """Extract the skeleton of an analyzed run.

    Parameters
    ----------
    result:
        The analysis of the source run (its timelines drive extraction).
    source_speed:
        Rank → CPU speed factor of the *source* machine, used later to
        rescale compute segments (``target_time = source_time × source_speed
        / target_speed``).
    """
    skeleton = ProgramSkeleton(
        communicators=dict(result.definitions.communicators),
        source_speed=dict(source_speed),
    )
    comm_sizes = {
        cid: len(ranks) for cid, (_name, ranks) in skeleton.communicators.items()
    }
    callpaths = result.callpaths
    regions = result.definitions.regions

    for rank, timeline in result.timelines.items():
        if rank not in source_speed:
            raise ConfigurationError(f"no source CPU speed for rank {rank}")
        actions: List[Action] = []
        cursor = timeline.first_time
        current_region: Optional[str] = None
        for op in timeline.mpi_ops:
            # The compute gap leading up to an op is attributed to that
            # op's enclosing region, so the region switch comes first.
            region = _enclosing_user_region(op, callpaths, regions)
            if region != current_region:
                actions.append(RegionAction(region or "untracked"))
                current_region = region
            gap = op.enter - cursor
            if gap > 0:
                actions.append(ComputeAction(gap))
            cursor = max(cursor, op.exit)
            for action in _op_actions(op):
                if isinstance(action, CollectiveAction):
                    nprocs = comm_sizes.get(action.comm)
                    if nprocs is None:
                        raise AnalysisError(
                            f"collective on unknown communicator {action.comm}"
                        )
                    is_root = action.root_global == rank
                    size = invert_bytes_moved(
                        action.op,
                        op.coll.sent,
                        op.coll.recvd,
                        nprocs=nprocs,
                        is_root=is_root,
                    )
                    action = CollectiveAction(
                        op=action.op,
                        comm=action.comm,
                        root_global=action.root_global,
                        size=size,
                    )
                actions.append(action)
        tail = timeline.last_time - cursor
        if tail > 0:
            actions.append(ComputeAction(tail))
        skeleton.actions[rank] = actions
    return skeleton


def skeleton_from_run(run_result, analysis: Optional[AnalysisResult] = None) -> ProgramSkeleton:
    """Extract a skeleton directly from a :class:`RunResult`.

    Analyzes the run first when *analysis* is not supplied (hierarchical
    synchronization), and reads the source CPU speeds off the placement.
    """
    if analysis is None:
        from repro.analysis.replay import analyze_run

        analysis = analyze_run(run_result)
    speeds = {
        slot.rank: slot.cpu.speed_factor for slot in run_result.placement.slots
    }
    return extract_skeleton(analysis, speeds)
