"""The checked-in suppression baseline.

The linter's contract with CI is "fail only on *new* violations": sites
that were reviewed and accepted live in ``checks_baseline.json``, each
entry carrying the reason it is allowed to stand.  Baseline entries match
findings on the line-number-free identity ``(rule, file, symbol,
snippet)`` — see :meth:`repro.check.findings.Finding.identity` — so edits
elsewhere in a file do not invalidate them, while any edit to the flagged
line itself does.

The baseline polices itself with two meta-rules:

* ``BASE001`` — an entry that matches no current finding is stale: the
  violation was fixed (delete the entry) or the line changed (re-review
  it).  Stale entries fail the run so the baseline never silently rots.
* ``BASE002`` — an entry with no ``reason`` string fails: a suppression
  nobody can justify is a suppression nobody reviewed.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.check.findings import Finding


class BaselineError(ValueError):
    """The baseline file is malformed (not JSON / wrong shape)."""


@dataclass
class Baseline:
    """Accepted findings, keyed by line-number-free identity."""

    entries: List[Dict[str, Any]] = field(default_factory=list)
    path: str = ""

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return cls(entries=[], path=path)
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"unreadable baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or not isinstance(
            payload.get("entries"), list
        ):
            raise BaselineError(
                f"baseline {path} must be an object with an 'entries' list"
            )
        entries = []
        for entry in payload["entries"]:
            if not isinstance(entry, dict):
                raise BaselineError(
                    f"baseline {path}: every entry must be an object"
                )
            entries.append(entry)
        return cls(entries=entries, path=path)

    @staticmethod
    def _identity(entry: Dict[str, Any]) -> Tuple[str, str, str, str]:
        return (
            str(entry.get("rule", "")),
            str(entry.get("file", "")),
            str(entry.get("symbol", "")),
            str(entry.get("snippet", "")),
        )

    def apply(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into (active, suppressed) and append meta-findings.

        Stale entries (BASE001) and reason-less entries (BASE002) come
        back as *active* findings against the baseline file itself.
        """
        by_identity: Dict[Tuple[str, str, str, str], Dict[str, Any]] = {}
        for entry in self.entries:
            by_identity[self._identity(entry)] = entry
        used: set = set()
        active: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            identity = finding.identity()
            if identity in by_identity:
                used.add(identity)
                suppressed.append(finding)
            else:
                active.append(finding)
        baseline_file = self.path or "checks_baseline.json"
        for entry in self.entries:
            identity = self._identity(entry)
            if identity not in used:
                active.append(
                    Finding(
                        rule="BASE001",
                        file=baseline_file,
                        line=0,
                        symbol=identity[2],
                        message=(
                            f"stale baseline entry {identity[0]} at "
                            f"{identity[1]} matches no finding"
                        ),
                        hint="the site was fixed or its line changed — "
                        "delete the entry (or re-run with "
                        "--update-baseline after review)",
                        snippet=identity[3],
                    )
                )
            elif not str(entry.get("reason", "")).strip():
                active.append(
                    Finding(
                        rule="BASE002",
                        file=baseline_file,
                        line=0,
                        symbol=identity[2],
                        message=(
                            f"baseline entry {identity[0]} at {identity[1]} "
                            "has no reason"
                        ),
                        hint="every accepted violation needs its "
                        "justification recorded next to it",
                        snippet=identity[3],
                    )
                )
        return active, suppressed

    @classmethod
    def from_findings(
        cls, findings: List[Finding], path: str = ""
    ) -> "Baseline":
        """A fresh baseline accepting every given finding (reasons blank)."""
        entries = []
        for finding in sorted(findings, key=lambda f: f.identity()):
            entries.append(
                {
                    "rule": finding.rule,
                    "file": finding.file,
                    "symbol": finding.symbol,
                    "snippet": finding.snippet,
                    "reason": "",
                }
            )
        return cls(entries=entries, path=path)

    def merge_reasons(self, previous: "Baseline") -> None:
        """Carry reasons forward from a previous baseline on update."""
        reasons = {
            previous._identity(e): str(e.get("reason", ""))
            for e in previous.entries
        }
        for entry in self.entries:
            if not entry.get("reason"):
                entry["reason"] = reasons.get(self._identity(entry), "")

    def save(self, path: str) -> None:
        payload = {"version": 1, "entries": self.entries}
        directory = os.path.dirname(os.path.abspath(path)) or "."
        fd, tmp = tempfile.mkstemp(prefix=".baseline-", dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
