"""Typed findings and the check report — the linter's output contract.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`~Finding.identity` deliberately excludes the line *number*: baseline
entries match on ``(rule, file, enclosing symbol, source line text)`` so
unrelated edits above a baselined site do not invalidate the baseline,
while any edit *to* the flagged line does — exactly the stability a
checked-in suppression list needs.

:class:`CheckReport` aggregates findings and suppressions and renders the
two CLI formats.  The JSON form is schema-stable (pinned by
``tests/test_check_cli.py``): top-level keys ``version``, ``root``,
``ok``, ``findings``, ``suppressed``, ``rules``; each finding carries
``rule``, ``file``, ``line``, ``symbol``, ``message``, ``hint``,
``snippet``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: Rule id → one-line contract, the catalogue ``docs/CHECKS.md`` expands.
RULES: Dict[str, str] = {
    "DET101": "no unseeded random generators (np.random.default_rng() / "
    "random.* / np.random.* module-level state)",
    "DET102": "no clock reads (time.time/monotonic/perf_counter, "
    "datetime.now) in result-bearing packages",
    "DET103": "wall-clock reads outside result-bearing packages must "
    "route through repro.wallclock.wallclock()",
    "DET104": "no iteration over set/frozenset or os.listdir feeding "
    "results — wrap in sorted()",
    "ATM201": "no bare open(..., 'w'/'wb') writes in durable-file "
    "packages — use the atomic temp-file + replace helpers",
    "ATM202": "os.rename is not atomic-overwrite on all platforms — "
    "use os.replace",
    "CON301": "lock-acquisition order must be acyclic within a module",
    "CON302": "no blocking call without a timeout while holding a lock",
    "CON303": "no untimed blocking calls (.wait()/.get()/.join()/.recv()) "
    "in the threaded packages",
    "CON304": "threading.Thread needs an explicit daemon= story",
    "API401": "repro.api.__all__ must match the snapshot contract "
    "(api_snapshot.json)",
    "API402": "DeprecationWarning shims must be registered with an "
    "unexpired removal window",
    "BASE001": "baseline entry matches no finding — remove the stale entry",
    "BASE002": "baseline entry carries no justification — add a reason",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    file: str  # posix-style path relative to the scan root's parent
    line: int
    symbol: str  # enclosing def/class qualname; "" at module level
    message: str
    hint: str
    snippet: str  # stripped source line, the baseline's match anchor

    def identity(self) -> Tuple[str, str, str, str]:
        """Line-number-free identity used for baseline matching."""
        return (self.rule, self.file, self.symbol, self.snippet)

    def location(self) -> str:
        return f"{self.file}:{self.line}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "hint": self.hint,
            "snippet": self.snippet,
        }


@dataclass
class CheckReport:
    """Everything one ``repro check`` run produced."""

    root: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def sort(self) -> None:
        self.findings.sort(key=lambda f: (f.file, f.line, f.rule))
        self.suppressed.sort(key=lambda f: (f.file, f.line, f.rule))

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self) -> Dict[str, Any]:
        """Schema-stable JSON form (see module docstring)."""
        return {
            "version": 1,
            "root": self.root,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": len(self.suppressed),
            "rules": self.by_rule(),
        }

    def to_text(self) -> str:
        lines: List[str] = []
        for finding in self.findings:
            lines.append(
                f"{finding.location()}: {finding.rule} "
                f"[{finding.symbol or '<module>'}] {finding.message}"
            )
            lines.append(f"    {finding.snippet}")
            lines.append(f"    hint: {finding.hint}")
        if self.findings:
            counts = ", ".join(
                f"{rule} x{n}" for rule, n in sorted(self.by_rule().items())
            )
            lines.append("")
            lines.append(
                f"{len(self.findings)} finding(s) ({counts}); "
                f"{len(self.suppressed)} baselined"
            )
        else:
            lines.append(
                f"repro check: clean ({len(self.suppressed)} baselined site(s))"
            )
        return "\n".join(lines)
