"""API-drift rules (``API4xx``).

The public surface of :mod:`repro.api` is a contract: downstream
notebooks and the service layer import from it by name.  Two rules pin
it:

* ``API401`` — the literal ``__all__`` list in ``repro/api.py`` must
  equal the ``api_all`` list in the checked-in snapshot
  (``api_snapshot.json``).  Adding a name is a one-line snapshot update
  made *in the same commit* — the rule exists so the surface never
  changes silently, not so it never changes.
* ``API402`` — every ``warnings.warn(..., DeprecationWarning)`` site
  must appear in the snapshot's ``deprecations`` registry with an
  ``added_in``/``remove_by`` version window.  A shim whose ``remove_by``
  is ≤ the current :data:`repro.__version__` has overstayed its
  one-release welcome and must be deleted; a registry entry matching no
  site is stale and must be removed.

Both rules are tree-wide, not per-module, so they run once per scan in
the engine rather than inside the per-module rule loop.  When the
scanned tree has no ``repro/api.py`` (rule-family fixture trees), API401
is skipped rather than failed — absence of the facade is not drift.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.check.findings import Finding
from repro.check.visitors import Module, RuleVisitor, import_table, resolve

API_MODULE = "repro/api.py"


def _parse_version(text: str) -> Tuple[int, ...]:
    parts = []
    for chunk in text.split("."):
        digits = "".join(ch for ch in chunk if ch.isdigit())
        parts.append(int(digits) if digits else 0)
    return tuple(parts)


def _literal_all(tree: ast.Module) -> Optional[List[str]]:
    """The ``__all__`` list literal of a module, if statically present."""
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                try:
                    names = ast.literal_eval(value)
                except (ValueError, SyntaxError):
                    return None
                if isinstance(names, (list, tuple)):
                    return [str(n) for n in names]
    return None


def check_api_surface(
    modules: Iterable[Module], snapshot: Dict[str, Any]
) -> List[Finding]:
    """API401: ``repro.api.__all__`` vs the snapshot contract."""
    api_module = next((m for m in modules if m.file == API_MODULE), None)
    if api_module is None:
        return []
    findings: List[Finding] = []
    declared = _literal_all(api_module.tree)
    if declared is None:
        findings.append(
            Finding(
                rule="API401",
                file=API_MODULE,
                line=1,
                symbol="",
                message="repro.api.__all__ is not a static list literal",
                hint="keep __all__ a plain list of strings so the surface "
                "is statically checkable",
                snippet="",
            )
        )
        return findings
    expected = list(snapshot.get("api_all", []))
    missing = sorted(set(expected) - set(declared))
    unregistered = sorted(set(declared) - set(expected))
    anchor_line = 1
    for node in api_module.tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            anchor_line = node.lineno
            break
    for name in missing:
        findings.append(
            Finding(
                rule="API401",
                file=API_MODULE,
                line=anchor_line,
                symbol="",
                message=f"public name {name!r} in the snapshot contract is "
                "missing from __all__",
                hint="removing a public name is a breaking change: "
                "deprecate it first, then update api_snapshot.json in the "
                "removal commit",
                snippet=f"__all__ missing {name}",
            )
        )
    for name in unregistered:
        findings.append(
            Finding(
                rule="API401",
                file=API_MODULE,
                line=anchor_line,
                symbol="",
                message=f"public name {name!r} is not in the snapshot "
                "contract",
                hint="add the name to api_snapshot.json in the same commit "
                "that exports it",
                snippet=f"__all__ added {name}",
            )
        )
    return findings


class _DeprecationSites(RuleVisitor):
    """Collect every ``warnings.warn(..., DeprecationWarning)`` site."""

    def __init__(self, module: Module, imports: Dict[str, str]) -> None:
        super().__init__(module, imports)
        self.sites: List[Tuple[str, str, ast.Call]] = []

    def visit_Call(self, node: ast.Call) -> None:
        name = resolve(node.func, self.imports)
        if name == "warnings.warn":
            category = None
            if len(node.args) >= 2:
                category = resolve(node.args[1], self.imports)
            for keyword in node.keywords:
                if keyword.arg == "category":
                    category = resolve(keyword.value, self.imports)
            if category in ("DeprecationWarning", "FutureWarning"):
                self.sites.append((self.module.file, self.symbol, node))
        self.generic_visit(node)


def check_deprecations(
    modules: Iterable[Module],
    snapshot: Dict[str, Any],
    current_version: str,
) -> List[Finding]:
    """API402: deprecation shims vs the snapshot registry."""
    registry: List[Dict[str, Any]] = list(snapshot.get("deprecations", []))
    now = _parse_version(current_version)
    findings: List[Finding] = []
    matched = [False] * len(registry)
    for module in modules:
        collector = _DeprecationSites(module, import_table(module.tree))
        collector.visit(module.tree)
        for file, symbol, node in collector.sites:
            entry = None
            for index, candidate in enumerate(registry):
                if candidate.get("file") == file and symbol.startswith(
                    str(candidate.get("symbol", ""))
                ):
                    entry = candidate
                    matched[index] = True
                    break
            if entry is None:
                findings.append(
                    Finding(
                        rule="API402",
                        file=file,
                        line=node.lineno,
                        symbol=symbol,
                        message="DeprecationWarning shim is not registered "
                        "in api_snapshot.json",
                        hint="add a deprecations entry with added_in / "
                        "remove_by (one minor release later) / reason",
                        snippet=module.snippet(node),
                    )
                )
                continue
            remove_by = _parse_version(str(entry.get("remove_by", "0")))
            if remove_by <= now:
                findings.append(
                    Finding(
                        rule="API402",
                        file=file,
                        line=node.lineno,
                        symbol=symbol,
                        message=(
                            f"deprecation window expired: remove_by "
                            f"{entry.get('remove_by')} <= current version "
                            f"{current_version}"
                        ),
                        hint="the one-release compatibility window is "
                        "over — delete the shim and its registry entry",
                        snippet=module.snippet(node),
                    )
                )
    for index, entry in enumerate(registry):
        if not matched[index]:
            findings.append(
                Finding(
                    rule="API402",
                    file=str(entry.get("file", "")),
                    line=0,
                    symbol=str(entry.get("symbol", "")),
                    message="registry entry matches no DeprecationWarning "
                    "site — the shim is gone, the entry is stale",
                    hint="remove the entry from api_snapshot.json",
                    snippet="",
                )
            )
    return findings
