"""Concurrency rules (``CON3xx``) for the threaded packages.

The service and resilience layers are the only places this repository
runs threads, and their liveness story is simple to state: lock
acquisition order is acyclic, nothing blocks forever (every wait carries
a timeout), and no thread outlives its owner silently.  Four rules check
it mechanically, per module:

* ``CON301`` — a lock-acquisition graph is built from ``with <lock>:``
  nesting and explicit ``acquire()``/``release()`` pairs: an edge A → B
  means B was acquired while A was held.  A cycle in the graph is a
  deadlock waiting for the right interleaving.
  ``threading.Condition(existing_lock)`` aliases the wrapped lock, so a
  condition and its lock do not read as two resources.
* ``CON302`` — a blocking call (zero-argument ``.get()`` / ``.wait()`` /
  ``.join()`` / ``.recv()``) while holding a lock stalls every other
  thread contending for it; the timeout that bounds the wait must be
  explicit.
* ``CON303`` — the same zero-argument blocking calls *outside* any lock
  are still flagged in these packages: an untimed wait is an unbounded
  hang when the peer dies.  Deliberate blocking sites (a worker's task
  loop) are baselined with their justification.
* ``CON304`` — ``threading.Thread(...)`` without an explicit ``daemon=``
  keyword: the daemon/join story must be visible at the creation site.

Scope: :data:`CONCURRENCY_PACKAGES`.  The analysis itself is per module
and flow-insensitive by design — it reads straight-line acquisition
structure, not every interleaving — which is exactly what makes its
verdicts stable and reviewable.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.check.findings import Finding
from repro.check.visitors import (
    Module,
    RuleVisitor,
    has_timeout_argument,
    resolve,
)

#: The packages that run threads (and the chaos harness that pokes them).
CONCURRENCY_PACKAGES = frozenset({"service", "resilience", "chaos"})

#: Factories whose result is a mutex-like resource.
_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
}

_CONDITION_FACTORY = "threading.Condition"

#: Method names whose zero-argument form blocks indefinitely.
_BLOCKING_METHODS = {"get", "wait", "join", "recv"}


def _lock_key(dotted: Optional[str], owner: Optional[str]) -> Optional[str]:
    """Canonical lock id for an expression like ``self._lock`` or ``LOCK``."""
    if dotted is None:
        return None
    if dotted.startswith("self."):
        cls = owner or "<module>"
        return f"{cls}.{dotted[len('self.'):]}"
    return dotted


class _LockDefinitions(RuleVisitor):
    """First pass: which names are locks, and which alias which."""

    def __init__(self, module: Module, imports: Dict[str, str]) -> None:
        super().__init__(module, imports)
        self.locks: Dict[str, str] = {}  # lock key -> factory name

    def _canonical(self, key: str) -> str:
        seen = set()
        while key in self.locks and self.locks[key] in self.locks and key not in seen:
            seen.add(key)
            key = self.locks[key]
        return key

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            factory = resolve(value.func, self.imports)
            keys = [
                _lock_key(resolve(t, self.imports), self.enclosing_class)
                for t in node.targets
            ]
            if factory in _LOCK_FACTORIES:
                for key in keys:
                    if key:
                        self.locks[key] = factory
            elif factory == _CONDITION_FACTORY:
                # Condition(lock) shares the wrapped lock; Condition()
                # owns a private one.
                wrapped = None
                if value.args:
                    wrapped = _lock_key(
                        resolve(value.args[0], self.imports),
                        self.enclosing_class,
                    )
                for key in keys:
                    if not key:
                        continue
                    if wrapped and wrapped in self.locks:
                        self.locks[key] = wrapped  # alias
                    else:
                        self.locks[key] = factory
        self.generic_visit(node)

    def resolve_lock(self, expr: ast.expr, owner: Optional[str]) -> Optional[str]:
        """Lock key of an acquisition expression, following aliases."""
        key = _lock_key(resolve(expr, self.imports), owner)
        if key is None:
            return None
        if key in self.locks:
            canonical = self.locks[key]
            return canonical if canonical in self.locks else key
        return None


class ConcurrencyVisitor(RuleVisitor):
    def __init__(
        self,
        module: Module,
        imports: Dict[str, str],
        definitions: _LockDefinitions,
    ) -> None:
        super().__init__(module, imports)
        self.defs = definitions
        self._held: List[str] = []
        #: (held lock, acquired lock) -> node of the first occurrence.
        self.edges: Dict[Tuple[str, str], ast.AST] = {}

    # -- lock state --------------------------------------------------------

    def _acquire(self, key: str, node: ast.AST) -> None:
        for held in self._held:
            if held != key:
                self.edges.setdefault((held, key), node)
        self._held.append(key)

    def _release(self, key: str) -> None:
        if key in self._held:
            self._held.reverse()
            self._held.remove(key)
            self._held.reverse()

    def _with_lock_keys(self, node: ast.With) -> List[str]:
        keys = []
        for item in node.items:
            expr = item.context_expr
            key = self.defs.resolve_lock(expr, self.enclosing_class)
            if key is None and isinstance(expr, ast.Call):
                # ``with value.get_lock():`` — multiprocessing shared
                # values expose their lock through a call.
                if (
                    isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "get_lock"
                ):
                    key = f"{self.module.module_name}.<get_lock>"
            if key is not None:
                keys.append(key)
        return keys

    def visit_With(self, node: ast.With) -> None:
        keys = self._with_lock_keys(node)
        for key in keys:
            self._acquire(key, node)
        self.generic_visit(node)
        for key in reversed(keys):
            self._release(key)

    # -- function boundaries reset lock state ------------------------------

    def _enter_function(self, node) -> None:
        held, self._held = self._held, []
        self._enter(node, node.name)
        self._held = held

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    # -- calls: acquire/release, blocking, thread creation ------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = resolve(node.func, self.imports)
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in ("acquire", "release"):
                key = self.defs.resolve_lock(
                    node.func.value, self.enclosing_class
                )
                if key is not None:
                    if attr == "acquire":
                        self._acquire(key, node)
                    else:
                        self._release(key)
                self.generic_visit(node)
                return
            if attr in _BLOCKING_METHODS and not has_timeout_argument(node):
                receiver = resolve(node.func.value, self.imports) or "<expr>"
                if self._held:
                    self.add(
                        "CON302",
                        node,
                        f"untimed blocking call {receiver}.{attr}() while "
                        f"holding lock {self._held[-1]}",
                        "pass an explicit timeout and handle expiry; a "
                        "wedged peer must not stall every thread behind "
                        "this lock",
                    )
                else:
                    self.add(
                        "CON303",
                        node,
                        f"untimed blocking call {receiver}.{attr}()",
                        "pass an explicit timeout (or baseline this site "
                        "with the reason it may block forever)",
                    )
        if name == "threading.Thread":
            if not any(kw.arg == "daemon" for kw in node.keywords):
                self.add(
                    "CON304",
                    node,
                    "threading.Thread without an explicit daemon= story",
                    "pass daemon=True (supervised helper threads) or "
                    "daemon=False with a visible join on every exit path",
                )
        self.generic_visit(node)


def _find_cycles(edges: Dict[Tuple[str, str], ast.AST]) -> List[List[str]]:
    """Every elementary cycle (deduplicated by node set), as node paths."""
    graph: Dict[str, Set[str]] = {}
    for src, dst in edges:
        graph.setdefault(src, set()).add(dst)
    cycles: List[List[str]] = []
    seen_sets: Set[frozenset] = set()

    def dfs(start: str, node: str, path: List[str]) -> None:
        for succ in sorted(graph.get(node, ())):
            if succ == start:
                signature = frozenset(path)
                if signature not in seen_sets:
                    seen_sets.add(signature)
                    cycles.append(path + [start])
            elif succ not in path:
                dfs(start, succ, path + [succ])

    for start in sorted(graph):
        dfs(start, start, [start])
    return cycles


def check_concurrency(module: Module, imports: Dict[str, str]) -> List[Finding]:
    if module.package not in CONCURRENCY_PACKAGES:
        return []
    definitions = _LockDefinitions(module, imports)
    definitions.visit(module.tree)
    visitor = ConcurrencyVisitor(module, imports, definitions)
    findings = visitor.run()
    for cycle in _find_cycles(visitor.edges):
        # Anchor the finding at the first recorded edge of the cycle.
        first_edge = None
        for src, dst in zip(cycle, cycle[1:]):
            if (src, dst) in visitor.edges:
                first_edge = visitor.edges[(src, dst)]
                break
        anchor = first_edge if first_edge is not None else module.tree
        findings.append(
            Finding(
                rule="CON301",
                file=module.file,
                line=getattr(anchor, "lineno", 0),
                symbol="",
                message=(
                    "lock-order cycle: " + " -> ".join(cycle)
                ),
                hint=(
                    "impose one global acquisition order (acquire the "
                    "locks in a fixed sequence everywhere) or collapse "
                    "them into one lock"
                ),
                snippet=module.snippet(anchor),
            )
        )
    return findings
