"""Shared AST plumbing for the rule families.

The rules all need the same three capabilities:

* **dotted-name resolution** — turning ``np.random.default_rng`` back
  into ``numpy.random.default_rng`` through the module's import table, so
  rules match *meaning*, not spelling (``import numpy``, ``import numpy
  as np`` and ``from numpy import random`` all resolve identically);
* **scope tracking** — every finding names its enclosing function/class
  qualname, which is also half of the baseline's line-number-free match
  key;
* **module context** — which package a file belongs to decides which
  rules apply to it.

:class:`RuleVisitor` bundles all three; rule families subclass it and
call :meth:`RuleVisitor.add` to report.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.check.findings import Finding


@dataclass
class Module:
    """One parsed source file handed to every rule family."""

    file: str  # posix-style path, e.g. "repro/service/app.py"
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @property
    def package(self) -> str:
        """First package segment under the scan root ("" for top-level)."""
        parts = self.file.split("/")
        return parts[1] if len(parts) > 2 else ""

    @property
    def module_name(self) -> str:
        """Dotted module path, e.g. ``repro.service.app``."""
        trimmed = self.file[:-3] if self.file.endswith(".py") else self.file
        parts = trimmed.split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def snippet(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def import_table(tree: ast.Module) -> Dict[str, str]:
    """Local name → canonical dotted prefix, from the module's imports.

    ``import numpy as np`` maps ``np → numpy``; ``from numpy import
    random as nprand`` maps ``nprand → numpy.random``; ``from time import
    time`` maps ``time → time.time``.  Function-local imports are
    included too — a deferred import changes *when* a name binds, not
    what it means.
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: not used in this repo
                continue
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of an expression through the import table.

    Returns e.g. ``numpy.random.default_rng`` for ``np.random.default_rng``
    under ``import numpy as np``, or the literal dotted path when the head
    is not an imported name (``self._lock`` stays ``self._lock``).
    """
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    base = imports.get(head)
    if base is None:
        return name
    return f"{base}.{rest}" if rest else base


def call_keyword(node: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def has_timeout_argument(node: ast.Call) -> bool:
    """True when a call passes any positional argument or a timeout= kw.

    The blocking primitives this checker cares about (``Queue.get``,
    ``Event.wait``, ``Thread.join``, ``Popen.wait``, ``Condition.wait``)
    all take their timeout as the first positional or as ``timeout=`` —
    a call with neither blocks indefinitely.
    """
    return bool(node.args) or call_keyword(node, "timeout") is not None


class RuleVisitor(ast.NodeVisitor):
    """Base visitor: scope tracking + finding collection for one module."""

    def __init__(self, module: Module, imports: Dict[str, str]) -> None:
        self.module = module
        self.imports = imports
        self.findings: List[Finding] = []
        self._scope: List[str] = []

    # -- scope bookkeeping -------------------------------------------------

    @property
    def symbol(self) -> str:
        return ".".join(self._scope)

    @property
    def enclosing_class(self) -> Optional[str]:
        for name in reversed(self._scope):
            if name[:1].isupper():  # repo convention: classes are CapWords
                return name
        return None

    def _enter(self, node: ast.AST, name: str) -> None:
        self._scope.append(name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter(node, node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter(node, node.name)

    # -- reporting ---------------------------------------------------------

    def add(self, rule: str, node: ast.AST, message: str, hint: str) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                file=self.module.file,
                line=getattr(node, "lineno", 0),
                symbol=self.symbol,
                message=message,
                hint=hint,
                snippet=self.module.snippet(node),
            )
        )

    def run(self) -> List[Finding]:
        self.visit(self.module.tree)
        return self.findings


def iter_withitem_locks(
    node: ast.With, imports: Dict[str, str]
) -> List[Tuple[ast.expr, Optional[str]]]:
    """(context expression, resolved dotted name) for each with-item."""
    return [
        (item.context_expr, resolve(item.context_expr, imports))
        for item in node.items
    ]
