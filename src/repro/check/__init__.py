"""``repro check`` — an AST-based invariant linter for this repository.

Every guarantee the pipeline sells — byte-identical replay for a fixed
seed, SIGKILL-safe journals, deadline propagation — rests on source-level
contracts that golden tests can only catch *after* a violation corrupts a
result.  This package enforces them mechanically, at the source level:

* **Determinism** (``DET1xx``): no unseeded random generators anywhere;
  no wall-clock reads in result-bearing packages; wall-clock in the
  service/resilience layers routed through the one auditable
  :func:`repro.wallclock.wallclock` helper; no iteration over
  ``set``/``frozenset`` or ``os.listdir`` whose order could leak into
  serialized output.
* **Atomicity** (``ATM2xx``): no bare ``open(..., "w")`` writes in the
  archive/store/journal packages — durable files go through the
  temp-file + ``os.replace`` helpers; no ``os.rename``.
* **Concurrency** (``CON3xx``): a per-module lock-acquisition graph over
  the threaded packages with lock-order-cycle detection; no blocking
  call without a timeout while holding a lock; no untimed blocking calls
  in the threaded packages; every ``threading.Thread`` carries an
  explicit daemon/join story.
* **API drift** (``API4xx``): ``repro.api.__all__`` must match the
  checked-in snapshot contract, and every ``DeprecationWarning`` shim is
  registered with a removal window that has not lapsed.

Rules report typed :class:`~repro.check.findings.Finding`\\ s with
``file:line``, a rule id and a fix hint.  The checked-in
``checks_baseline.json`` suppresses accepted pre-existing sites (each
entry carries a justification); stale or unjustified baseline entries are
themselves findings (``BASE0xx``), so the baseline can only shrink
honestly.

Entry points: :func:`run_checks` (also exported via :mod:`repro.api`)
and the ``repro check`` CLI command (exit 0 clean / 1 findings /
2 usage).
"""

from repro.check.baseline import Baseline, BaselineError
from repro.check.engine import (
    DEFAULT_BASELINE_PATH,
    DEFAULT_SNAPSHOT_PATH,
    check_source,
    run_checks,
)
from repro.check.findings import RULES, CheckReport, Finding

__all__ = [
    "Baseline",
    "BaselineError",
    "CheckReport",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_SNAPSHOT_PATH",
    "Finding",
    "RULES",
    "check_source",
    "run_checks",
]
