"""The check engine: walk the tree, run every rule family, apply baseline.

:func:`run_checks` is the one entry point the CLI and :mod:`repro.api`
expose.  It walks the scanned package (by default the installed
``repro`` tree itself), parses every ``.py`` file once, runs the
per-module rule families (determinism, atomicity, concurrency), then the
tree-wide ones (API surface, deprecation registry), applies the
checked-in baseline, and returns a :class:`~repro.check.findings.CheckReport`.

File ordering is sorted, findings are sorted, and nothing consults a
clock or an environment variable: two runs over the same tree produce
byte-identical reports — the linter holds itself to the determinism
rules it enforces.

:func:`check_source` runs the per-module families over a single source
string, which is how the rule-family tests feed fixture snippets through
the real pipeline without materialising trees on disk.
"""

from __future__ import annotations

import ast
import json
import os
from typing import Any, Dict, List, Optional

from repro.check.api_drift import API_MODULE, check_api_surface, check_deprecations
from repro.check.atomicity import check_atomicity
from repro.check.baseline import Baseline, BaselineError
from repro.check.concurrency import check_concurrency
from repro.check.determinism import check_determinism
from repro.check.findings import CheckReport, Finding
from repro.check.visitors import Module, import_table

_HERE = os.path.dirname(os.path.abspath(__file__))

#: The shipped suppression baseline (package data, next to this module).
DEFAULT_BASELINE_PATH = os.path.join(_HERE, "checks_baseline.json")

#: The shipped API surface + deprecation registry snapshot.
DEFAULT_SNAPSHOT_PATH = os.path.join(_HERE, "api_snapshot.json")


def default_root() -> str:
    """The installed ``repro`` package directory."""
    return os.path.dirname(_HERE)


def _iter_source_files(root: str) -> List[str]:
    paths: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__" and not d.startswith(".")
        )
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                paths.append(os.path.join(dirpath, filename))
    return paths


def _parse_module(path: str, rel_file: str) -> Module:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=rel_file)
    return Module(file=rel_file, tree=tree, lines=source.splitlines())


def load_snapshot(path: str) -> Optional[Dict[str, Any]]:
    """The API snapshot, or None when the file does not exist."""
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"unreadable snapshot {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise BaselineError(f"snapshot {path} must be a JSON object")
    return payload


def _module_findings(module: Module) -> List[Finding]:
    imports = import_table(module.tree)
    findings: List[Finding] = []
    findings.extend(check_determinism(module, imports))
    findings.extend(check_atomicity(module, imports))
    findings.extend(check_concurrency(module, imports))
    return findings


def check_source(source: str, rel_file: str) -> List[Finding]:
    """Run the per-module rule families over one source string.

    ``rel_file`` decides which package rules apply — pass paths like
    ``"repro/sim/fixture.py"`` to place the snippet inside a package.
    """
    tree = ast.parse(source, filename=rel_file)
    module = Module(file=rel_file, tree=tree, lines=source.splitlines())
    return _module_findings(module)


def run_checks(
    root: Optional[str] = None,
    baseline_path: Optional[str] = DEFAULT_BASELINE_PATH,
    snapshot_path: Optional[str] = DEFAULT_SNAPSHOT_PATH,
    update_baseline: bool = False,
    version: Optional[str] = None,
) -> CheckReport:
    """Run every rule family over a source tree.

    Parameters
    ----------
    root:
        Directory to scan (default: the installed ``repro`` package).
    baseline_path:
        Suppression baseline to apply; ``None`` disables baselining.
    snapshot_path:
        API snapshot to enforce; ``None`` (or a missing file) skips the
        API-drift rules.
    update_baseline:
        Rewrite ``baseline_path`` to accept every current finding,
        carrying existing reasons forward.  New entries get an empty
        reason and therefore still fail with ``BASE002`` until someone
        writes the justification down.
    version:
        Current release version for the deprecation-window rule
        (default: :data:`repro.__version__`).
    """
    scan_root = os.path.abspath(root or default_root())
    rel_base = os.path.dirname(scan_root)
    modules: List[Module] = []
    for path in _iter_source_files(scan_root):
        rel_file = os.path.relpath(path, rel_base).replace(os.sep, "/")
        modules.append(_parse_module(path, rel_file))

    findings: List[Finding] = []
    for module in modules:
        findings.extend(_module_findings(module))

    snapshot = load_snapshot(snapshot_path) if snapshot_path else None
    has_facade = any(m.file == API_MODULE for m in modules)
    if snapshot is not None and has_facade:
        # The snapshot describes the real tree; a fixture tree without
        # the facade is not in drift, it is out of scope.
        if version is None:
            from repro import __version__ as version  # noqa: F811
        findings.extend(check_api_surface(modules, snapshot))
        findings.extend(check_deprecations(modules, snapshot, version))

    report = CheckReport(root=os.path.basename(scan_root))
    if baseline_path is None:
        report.findings = findings
    elif update_baseline:
        previous = Baseline.load(baseline_path)
        fresh = Baseline.from_findings(findings, path=baseline_path)
        fresh.merge_reasons(previous)
        fresh.save(baseline_path)
        report.findings, report.suppressed = fresh.apply(findings)
    else:
        baseline = Baseline.load(baseline_path)
        report.findings, report.suppressed = baseline.apply(findings)
    report.sort()
    return report
