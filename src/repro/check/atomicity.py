"""Atomicity rules (``ATM2xx``).

The crash-safety story (SIGKILL at any instant leaves loadable state)
rests on one discipline: durable files are written to a same-directory
temp file and moved into place with ``os.replace``.  Two rules keep every
write site honest:

* ``ATM201`` — in the packages that own durable files
  (:data:`DURABLE_PACKAGES`: the trace archive, the simulated file
  systems, the job store/journal layers), calling the builtin
  ``open(path, "w"/"wb"/"a"/"x")`` directly is flagged: a crash
  mid-write leaves a torn file at its final path.  The sanctioned
  helpers (``MountNamespace.write_file_atomic``,
  ``CheckpointJournal._flush``) build on ``tempfile.mkstemp`` +
  ``os.fdopen`` + ``os.replace`` and are not matched by this rule.
* ``ATM202`` — ``os.rename`` is flagged everywhere: it raises on
  cross-device moves and on Windows on existing targets; ``os.replace``
  has the atomic-overwrite semantics every call site here wants.
"""

from __future__ import annotations

import ast
from typing import Dict, List

from repro.check.findings import Finding
from repro.check.visitors import Module, RuleVisitor, call_keyword, resolve

#: Packages whose files must survive a crash loadable.
DURABLE_PACKAGES = frozenset({"trace", "fs", "service", "resilience"})

_WRITE_MODE_CHARS = set("wax+")


def _write_mode(node: ast.Call) -> str:
    """The literal write mode of an ``open`` call, or "" when read-only."""
    mode_node = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    else:
        mode_node = call_keyword(node, "mode")
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        if _WRITE_MODE_CHARS & set(mode_node.value):
            return mode_node.value
    return ""


class AtomicityVisitor(RuleVisitor):
    def __init__(self, module: Module, imports: Dict[str, str]) -> None:
        super().__init__(module, imports)
        self.in_durable_package = module.package in DURABLE_PACKAGES

    def visit_Call(self, node: ast.Call) -> None:
        name = resolve(node.func, self.imports)
        if name == "open" and self.in_durable_package:
            mode = _write_mode(node)
            if mode:
                self.add(
                    "ATM201",
                    node,
                    f"bare open(..., {mode!r}) in durable-file package "
                    f"{self.module.package!r} — a crash mid-write leaves a "
                    "torn file at its final path",
                    "write to a same-directory temp file and os.replace() "
                    "it into place (see MountNamespace.write_file_atomic / "
                    "CheckpointJournal._flush)",
                )
        elif name == "os.rename":
            self.add(
                "ATM202",
                node,
                "os.rename is not atomic-overwrite on every platform",
                "use os.replace, which overwrites atomically everywhere",
            )
        self.generic_visit(node)


def check_atomicity(module: Module, imports: Dict[str, str]) -> List[Finding]:
    return AtomicityVisitor(module, imports).run()
