"""Determinism rules (``DET1xx``).

The replay-clock property — same seed, byte-identical results — only
holds if result-bearing code never consults an unseeded entropy source.
Four rules encode that:

* ``DET101`` — ``np.random.default_rng()`` without a seed, the legacy
  module-level ``np.random.*`` distributions, and the stdlib ``random``
  module are banned everywhere in the tree.  Every generator must be
  constructed from an explicit seed argument.
* ``DET102`` — result-bearing packages (:data:`RESULT_PACKAGES`) may not
  read any clock at all: no ``time.time``/``monotonic``/``perf_counter``,
  no ``datetime.now``.  Simulated time is the only time they know.
* ``DET103`` — outside the result-bearing packages (the service,
  resilience and chaos layers legitimately need wall time for job
  records and drain bookkeeping), wall-clock reads must route through
  :func:`repro.wallclock.wallclock` so every wall-clock dependency in
  the tree is auditable at one import site.  ``time.monotonic`` is
  allowed there — interval measurement is not wall-clock.
* ``DET104`` — iterating a ``set``/``frozenset`` (whose order is
  randomized per process by string-hash randomization) or ``os.listdir``
  (whose order the OS does not define) inside a result-bearing package
  is flagged unless wrapped in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.check.findings import Finding
from repro.check.visitors import Module, RuleVisitor, resolve

#: Packages whose output feeds results (reports, archives, severity
#: cubes).  Clock reads and order-unstable iteration are banned here.
RESULT_PACKAGES = frozenset(
    {
        "sim",
        "analysis",
        "trace",
        "report",
        "clocks",
        "predict",
        "topology",
        "faults",
        "apps",
        "experiments",
        "instrument",
        "fs",
    }
)

#: The one module allowed to touch the wall clock directly.
WALLCLOCK_MODULE = "repro/wallclock.py"

#: Canonical dotted names that read the wall clock.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Clock reads of any kind — banned outright in result-bearing packages.
_ANY_CLOCK = _WALL_CLOCK | {
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
}

#: numpy's legacy global-state distributions (np.random.<fn>(...)).
_NP_RANDOM_GLOBAL_PREFIX = "numpy.random."
_NP_SEEDED_FACTORIES = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.SeedSequence",
}


class DeterminismVisitor(RuleVisitor):
    def __init__(self, module: Module, imports: Dict[str, str]) -> None:
        super().__init__(module, imports)
        self.in_result_package = module.package in RESULT_PACKAGES
        self.is_wallclock_module = module.file == WALLCLOCK_MODULE
        #: Function-local names bound to set-producing expressions, used
        #: by DET104's light dataflow pass.
        self._set_names: List[Set[str]] = [set()]

    # -- DET101: unseeded generators --------------------------------------

    def _check_rng(self, node: ast.Call, name: str) -> None:
        if name == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                self.add(
                    "DET101",
                    node,
                    "np.random.default_rng() without a seed draws from OS "
                    "entropy — results become irreproducible",
                    "pass an explicit seed derived from the run's seed "
                    "(e.g. default_rng(seed))",
                )
            return
        if name in _NP_SEEDED_FACTORIES:
            return
        if name.startswith(_NP_RANDOM_GLOBAL_PREFIX):
            self.add(
                "DET101",
                node,
                f"{name} uses numpy's hidden global random state",
                "draw from an explicitly seeded Generator instead",
            )
            return
        if name == "random" or name.startswith("random."):
            self.add(
                "DET101",
                node,
                f"stdlib {name} uses interpreter-global random state",
                "use a seeded numpy Generator threaded from the run's seed",
            )

    # -- DET102/DET103: clock reads ---------------------------------------

    def _check_clock(self, node: ast.Call, name: str) -> None:
        if self.in_result_package:
            if name in _ANY_CLOCK or name == "repro.wallclock.wallclock":
                self.add(
                    "DET102",
                    node,
                    f"{name} read in result-bearing package "
                    f"{self.module.package!r}",
                    "result-bearing code must use simulated time only; "
                    "move the measurement to the caller",
                )
            return
        if self.is_wallclock_module:
            return
        if name in _WALL_CLOCK:
            self.add(
                "DET103",
                node,
                f"direct wall-clock read {name}",
                "route through repro.wallclock.wallclock() so wall-clock "
                "dependencies stay auditable at one site",
            )

    # -- DET104: order-unstable iteration ---------------------------------

    def _is_set_expr(self, node: ast.expr) -> bool:
        """Does this expression statically produce a set?"""
        if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call):
            name = resolve(node.func, self.imports)
            if name in ("set", "frozenset"):
                return True
            # set(...).union(...) / .intersection(...) / .difference(...)
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self._is_set_expr(node.func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return any(node.id in frame for frame in self._set_names)
        return False

    def _is_listdir(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and resolve(node.func, self.imports) == "os.listdir"
        )

    def _check_iteration(self, iterable: ast.expr, node: ast.AST) -> None:
        if not self.in_result_package:
            return
        if self._is_set_expr(iterable):
            self.add(
                "DET104",
                node,
                "iteration over a set — order varies with string-hash "
                "randomization and can leak into results",
                "wrap the iterable in sorted(...)",
            )
        elif self._is_listdir(iterable):
            self.add(
                "DET104",
                node,
                "iteration over os.listdir — the OS does not define its "
                "order",
                "wrap the call in sorted(...)",
            )

    # -- visitor hooks -----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = resolve(node.func, self.imports)
        if name is not None:
            self._check_rng(node, name)
            self._check_clock(node, name)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_names[-1].add(target.id)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def visit_comprehension_generators(self, generators) -> None:
        for comp in generators:
            self._check_iteration(comp.iter, comp.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def _enter_function(self, node) -> None:
        self._set_names.append(set())
        self._enter(node, node.name)
        self._set_names.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)


def check_determinism(
    module: Module, imports: Dict[str, str]
) -> List[Finding]:
    return DeterminismVisitor(module, imports).run()
