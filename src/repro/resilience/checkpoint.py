"""Checkpoint journal: resumable (config, seed) cells for long sweeps.

An experiment sweep — three schemes of Table 2, five rungs of the fault
ladder, a seed matrix — is a list of independent *cells*.  The journal
persists each completed cell's payload to real disk so an interrupted
sweep, rerun with ``--resume``, skips straight past the work it already
finished and reproduces the same outputs (every cell is deterministic in
its configuration and seed, so a cached payload and a recomputed one are
interchangeable).

Write discipline: the journal is rewritten through a temporary file in the
same directory, fsync'd, then moved over the old journal with
:func:`os.replace` — an interrupted run can lose at most the cell being
recorded, never corrupt the cells already recorded, and a resume can
therefore always trust what it reads.  The on-disk format is one JSON
object per line (``{"cell": {...}, "payload": ...}``); unparsable lines
are skipped on load, so even a journal damaged by external means degrades
to recomputing a few cells instead of failing the sweep.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Mapping, Optional

from repro.errors import CheckpointError

__all__ = ["CheckpointJournal"]

_FORMAT_VERSION = 1


def _canonical(cell: Mapping[str, Any]) -> str:
    """Stable identity of one cell: canonical-JSON of its config mapping."""
    try:
        return json.dumps(cell, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"cell is not JSON-serializable: {exc}") from exc


class CheckpointJournal:
    """Persistent map of completed cells → payloads, with atomic writes."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._cells: Dict[str, Any] = {}
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError as exc:
            raise CheckpointError(f"cannot read journal {self.path}: {exc}") from exc
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                cell = record["cell"]
                payload = record["payload"]
            except (json.JSONDecodeError, KeyError, TypeError):
                # A torn tail from an interrupted append or external
                # damage: skip the line — the cell is simply recomputed.
                continue
            if not isinstance(cell, dict):
                continue
            self._cells[_canonical(cell)] = payload

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cells)

    def has(self, cell: Mapping[str, Any]) -> bool:
        return _canonical(cell) in self._cells

    def get(self, cell: Mapping[str, Any], default: Any = None) -> Any:
        """Payload of a completed cell, or *default* when not recorded."""
        return self._cells.get(_canonical(cell), default)

    def cells(self) -> Dict[str, Any]:
        """Snapshot of every recorded cell (canonical key → payload)."""
        return dict(self._cells)

    # -- recording ---------------------------------------------------------------

    def record(self, cell: Mapping[str, Any], payload: Any) -> None:
        """Mark a cell completed and persist the journal atomically."""
        key = _canonical(cell)
        try:
            json.dumps(payload)
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"payload for cell {key} is not JSON-serializable: {exc}"
            ) from exc
        self._cells[key] = payload
        self._flush()

    def _flush(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        lines = [
            json.dumps(
                {"version": _FORMAT_VERSION, "cell": json.loads(key), "payload": value},
                sort_keys=True,
            )
            for key, value in self._cells.items()
        ]
        data = ("\n".join(lines) + "\n").encode("utf-8")
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(self.path) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except OSError as exc:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise CheckpointError(f"cannot write journal {self.path}: {exc}") from exc


def open_journal(path: Optional[str]) -> Optional[CheckpointJournal]:
    """``None``-propagating constructor for optional-journal call sites."""
    return CheckpointJournal(path) if path else None
