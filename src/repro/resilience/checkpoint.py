"""Checkpoint journal: resumable (config, seed) cells for long sweeps.

An experiment sweep — three schemes of Table 2, five rungs of the fault
ladder, a seed matrix — is a list of independent *cells*.  The journal
persists each completed cell's payload to real disk so an interrupted
sweep, rerun with ``--resume``, skips straight past the work it already
finished and reproduces the same outputs (every cell is deterministic in
its configuration and seed, so a cached payload and a recomputed one are
interchangeable).

Write discipline: the journal is rewritten through a temporary file in the
same directory, fsync'd, then moved over the old journal with
:func:`os.replace` — an interrupted run can lose at most the cell being
recorded, never corrupt the cells already recorded, and a resume can
therefore always trust what it reads.  The on-disk format is one JSON
object per line (``{"cell": {...}, "payload": ...}``); unparsable lines
are skipped on load, so even a journal damaged by external means degrades
to recomputing a few cells instead of failing the sweep.

Single-writer discipline: the rewrite cycle is atomic against crashes but
not against a *second writer* — two processes recording cells into one
journal would overwrite each other's rewrites and silently lose cells.  A
journal therefore takes an advisory ``fcntl`` lock (on a ``<path>.lock``
sidecar) before its first write — or already at open with
``exclusive=True``, the mode long-lived owners such as the job store and
``--resume`` sweeps use — and holds it until :meth:`close`.  A second
writer fails fast with :class:`~repro.errors.CheckpointLockError` instead
of corrupting the store.  Pure readers never lock.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Mapping, Optional

from repro.errors import CheckpointError, CheckpointLockError

try:  # POSIX only; on other platforms the journal degrades to lock-free.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

__all__ = ["CheckpointJournal"]

_FORMAT_VERSION = 1


def _canonical(cell: Mapping[str, Any]) -> str:
    """Stable identity of one cell: canonical-JSON of its config mapping."""
    try:
        return json.dumps(cell, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"cell is not JSON-serializable: {exc}") from exc


class CheckpointJournal:
    """Persistent map of completed cells → payloads, with atomic writes.

    ``exclusive=True`` acquires the writer lock at open (failing fast when
    another writer holds it); the default acquires it lazily on the first
    :meth:`record`.  Use the journal as a context manager — or call
    :meth:`close` — to release the lock deterministically.
    """

    def __init__(self, path: str, *, exclusive: bool = False) -> None:
        self.path = os.fspath(path)
        self._cells: Dict[str, Any] = {}
        self._lock_fd: Optional[int] = None
        if exclusive:
            self._acquire_lock()
        self._load()

    # -- the writer lock -------------------------------------------------------

    @property
    def lock_path(self) -> str:
        return self.path + ".lock"

    def _acquire_lock(self) -> None:
        if self._lock_fd is not None or fcntl is None:
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        try:
            fd = os.open(self.lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        except OSError as exc:
            raise CheckpointError(
                f"cannot open journal lock {self.lock_path}: {exc}"
            ) from exc
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            holder = ""
            try:
                holder = os.pread(fd, 64, 0).decode("ascii", "replace").strip()
            except OSError:
                pass
            os.close(fd)
            held = f" (held by pid {holder})" if holder else ""
            raise CheckpointLockError(
                f"journal {self.path} already has a writer{held}; "
                "concurrent writers would corrupt the store",
                path=self.path,
                holder=holder,
            ) from exc
        try:
            os.ftruncate(fd, 0)
            os.pwrite(fd, str(os.getpid()).encode("ascii"), 0)
        except OSError:  # diagnostics only — the lock itself is what matters
            pass
        self._lock_fd = fd

    def close(self) -> None:
        """Release the writer lock (if held).  Idempotent."""
        if self._lock_fd is None:
            return
        fd, self._lock_fd = self._lock_fd, None
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- loading ---------------------------------------------------------------

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError as exc:
            raise CheckpointError(f"cannot read journal {self.path}: {exc}") from exc
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                cell = record["cell"]
                payload = record["payload"]
            except (json.JSONDecodeError, KeyError, TypeError):
                # A torn tail from an interrupted append or external
                # damage: skip the line — the cell is simply recomputed.
                continue
            if not isinstance(cell, dict):
                continue
            self._cells[_canonical(cell)] = payload

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cells)

    def has(self, cell: Mapping[str, Any]) -> bool:
        return _canonical(cell) in self._cells

    def get(self, cell: Mapping[str, Any], default: Any = None) -> Any:
        """Payload of a completed cell, or *default* when not recorded."""
        return self._cells.get(_canonical(cell), default)

    def cells(self) -> Dict[str, Any]:
        """Snapshot of every recorded cell (canonical key → payload)."""
        return dict(self._cells)

    # -- recording ---------------------------------------------------------------

    def record(self, cell: Mapping[str, Any], payload: Any) -> None:
        """Mark a cell completed and persist the journal atomically."""
        key = _canonical(cell)
        try:
            json.dumps(payload)
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"payload for cell {key} is not JSON-serializable: {exc}"
            ) from exc
        self._acquire_lock()
        self._cells[key] = payload
        self._flush()

    def _flush(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        lines = [
            json.dumps(
                {"version": _FORMAT_VERSION, "cell": json.loads(key), "payload": value},
                sort_keys=True,
            )
            for key, value in self._cells.items()
        ]
        data = ("\n".join(lines) + "\n").encode("utf-8")
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(self.path) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except OSError as exc:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise CheckpointError(f"cannot write journal {self.path}: {exc}") from exc


def open_journal(path: Optional[str], *, exclusive: bool = False) -> Optional[CheckpointJournal]:
    """``None``-propagating constructor for optional-journal call sites."""
    return CheckpointJournal(path, exclusive=exclusive) if path else None
