"""Resilient execution layer: supervised workers and resumable sweeps.

``repro.resilience`` owns the machinery that keeps long analyses alive on
unreliable infrastructure: a supervised process pool with crash/hang
detection, retry, and serial fallback (:mod:`repro.resilience.pool`), and
a checkpoint journal that lets interrupted experiment sweeps resume
without redoing completed cells (:mod:`repro.resilience.checkpoint`).
"""

from repro.resilience.checkpoint import CheckpointJournal, open_journal
from repro.resilience.deadline import Deadline
from repro.resilience.pool import (
    ExecutionReport,
    PoolConfig,
    SupervisedPool,
    TaskExecution,
)

__all__ = [
    "CheckpointJournal",
    "Deadline",
    "ExecutionReport",
    "PoolConfig",
    "SupervisedPool",
    "TaskExecution",
    "open_journal",
]
