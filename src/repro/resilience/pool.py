"""A supervised worker pool for re-runnable analysis tasks.

``multiprocessing.Pool`` gives no recourse when a worker dies: ``map``
blocks forever waiting for a result that will never arrive, and the caller
learns nothing about which task was lost.  On a metacomputer — the paper's
operating assumption — *no* component may be trusted that far, least of
all the analysis processes themselves (they are the first victims of node
OOM kills and batch-system preemption).

:class:`SupervisedPool` dispatches each task to a worker process and
actively supervises it:

* **crash detection** — a worker that exits without delivering a result
  (segfault, SIGKILL, OOM) is noticed within one poll interval;
* **hang detection** — each task has a wall-clock *deadline*, and each
  worker carries a heartbeat thread; a worker whose heartbeat goes stale
  (process alive but wedged, e.g. SIGSTOP or a hung syscall) is killed
  before its deadline expires;
* **bounded retry** — an infrastructure failure re-dispatches the task to
  a *fresh* worker after exponential backoff, up to ``max_retries`` times
  (safe because shard analysis is pure and deterministically re-runnable —
  the replay-clock property);
* **quarantine** — a task that keeps killing workers is declared poisoned
  and executed serially in the supervising process as a last resort;
* **determinism** — results are returned in task order, application
  exceptions are re-raised for the lowest-indexed failing task, and a
  run with zero infrastructure failures is observably identical to a
  plain ``Pool.map``.

Workers run a task loop, so one pool can serve many :meth:`run` calls.  A
pool constructed with ``persistent=True`` keeps its healthy workers warm
between runs — the serving-layer configuration, where respawning a pool
per job would dominate small-job latency — until :meth:`close` reaps
them; a non-persistent pool (the default) reaps everything at the end of
each run, preserving the original one-shot behaviour.

Interruption is first-class: :meth:`request_shutdown` (called directly,
from another thread, or by the SIGTERM/SIGINT handlers the pool installs
around main-thread runs) drains in-flight tasks for a bounded grace
period, kills and reaps what remains — no orphaned workers — and raises
:class:`~repro.errors.PoolShutdown` carrying the partial results and the
final :class:`ExecutionReport`.

Every dispatch, failure, retry, and fallback is recorded in an
:class:`ExecutionReport` so callers can attach the recovery story to their
results instead of silently absorbing it.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import PoolShutdown, ReproError, TimeBudgetExceeded
from repro.resilience.deadline import Deadline

__all__ = [
    "PoolConfig",
    "TaskExecution",
    "ExecutionReport",
    "SupervisedPool",
]


@dataclass(frozen=True)
class PoolConfig:
    """Supervision parameters of a :class:`SupervisedPool`.

    The defaults suit shard replay analysis: shards finish in seconds, so
    a five-minute deadline only ever fires on a genuinely wedged worker,
    and two retries absorb transient kills without stalling a poisoned
    shard for long.
    """

    #: Maximum concurrently running worker processes.
    max_workers: int = 2
    #: Per-task wall-clock deadline (seconds) before the worker is killed.
    timeout_s: float = 300.0
    #: Re-dispatches allowed after an infrastructure failure, per task.
    max_retries: int = 2
    #: First retry backoff; doubles (``backoff_factor``) per further retry.
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    #: Worker heartbeat period.
    heartbeat_interval_s: float = 0.5
    #: Stale-heartbeat window after which a live worker counts as wedged.
    heartbeat_grace_s: float = 30.0
    #: Supervisor poll period.
    poll_interval_s: float = 0.02
    #: How long a graceful shutdown waits for in-flight tasks to finish
    #: before killing their workers.
    drain_grace_s: float = 10.0
    #: Install SIGTERM/SIGINT handlers around main-thread runs so an
    #: interrupted parent drains and reaps its workers instead of
    #: orphaning them.  Runs on non-main threads never install handlers.
    handle_signals: bool = True
    #: Multiprocessing start method (``"fork"``/``"spawn"``/...);
    #: ``None`` uses the platform default.
    mp_context: Optional[str] = None
    #: Test-only fault hook, run inside the worker before the task function
    #: (chaos harnesses use it to SIGKILL/SIGSTOP/stall the worker).
    chaos_hook: Optional[Callable[[Any], None]] = None

    def with_workers(self, max_workers: int) -> "PoolConfig":
        return replace(self, max_workers=max(1, max_workers))


@dataclass
class TaskExecution:
    """How one task was executed: every dispatch, failure, and recovery."""

    index: int
    #: Worker dispatches (1 for a clean run; retries add one each).
    attempts: int = 0
    #: The task exhausted its retries and ran serially in the supervisor.
    fallback: bool = False
    #: One human-readable entry per infrastructure failure.
    failures: List[str] = field(default_factory=list)
    #: First dispatch → final settlement, wall seconds.
    wall_time_s: float = 0.0

    @property
    def retries(self) -> int:
        """Re-dispatches to a fresh worker after a failure."""
        return max(0, self.attempts - 1)

    @property
    def clean(self) -> bool:
        return not self.failures and not self.fallback


@dataclass
class ExecutionReport:
    """Aggregate account of one supervised pool run.

    Attached to :class:`~repro.analysis.replay.AnalysisResult` by the
    parallel analyzer so a recovered analysis carries the evidence of its
    recovery.
    """

    tasks: List[TaskExecution] = field(default_factory=list)
    workers: int = 0
    wall_time_s: float = 0.0

    @property
    def attempts(self) -> int:
        return sum(t.attempts for t in self.tasks)

    @property
    def retries(self) -> int:
        return sum(t.retries for t in self.tasks)

    @property
    def fallbacks(self) -> int:
        return sum(1 for t in self.tasks if t.fallback)

    @property
    def failures(self) -> List[str]:
        """All infrastructure failures, in task order."""
        return [msg for t in self.tasks for msg in t.failures]

    @property
    def clean(self) -> bool:
        """True when no worker failed — the execution was uneventful."""
        return all(t.clean for t in self.tasks)

    def summary(self) -> str:
        slowest = max((t.wall_time_s for t in self.tasks), default=0.0)
        return (
            f"{len(self.tasks)} task(s) on {self.workers} worker(s): "
            f"{self.attempts} attempt(s), {self.retries} retr{'y' if self.retries == 1 else 'ies'}, "
            f"{self.fallbacks} serial fallback(s); "
            f"wall {self.wall_time_s:.2f}s (slowest task {slowest:.2f}s)"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (job stores persist this with results)."""
        return {
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
            "attempts": self.attempts,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "clean": self.clean,
            "summary": self.summary(),
            "tasks": [
                {
                    "index": t.index,
                    "attempts": t.attempts,
                    "fallback": t.fallback,
                    "failures": list(t.failures),
                    "wall_time_s": t.wall_time_s,
                }
                for t in self.tasks
            ],
        }


def _heartbeat_loop(beat, interval_s: float, stop: threading.Event) -> None:
    """Worker-side daemon thread: bump the shared counter until told to stop."""
    while not stop.wait(interval_s):
        with beat.get_lock():
            beat.value += 1


def _worker_main(fn, conn, beat, interval_s, chaos_hook) -> None:
    """Worker entry point: loop over tasks, send back ("ok"|"error", value).

    Tasks arrive over the duplex pipe as one-tuples; ``None`` is the
    graceful-exit sentinel.  Application exceptions travel back over the
    pipe as values — only the *infrastructure* (process death, deadline,
    heartbeat loss) is the supervisor's business.  The heartbeat thread is
    a daemon: it dies with the process, which is exactly the signal the
    supervisor listens for.
    """
    stop = threading.Event()
    threading.Thread(
        target=_heartbeat_loop, args=(beat, interval_s, stop), daemon=True
    ).start()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            (task,) = message
            try:
                if chaos_hook is not None:
                    chaos_hook(task)
                payload = ("ok", fn(task))
            except BaseException as exc:  # noqa: BLE001 - forwarded, not swallowed
                payload = ("error", exc)
            try:
                conn.send(payload)
            except Exception as exc:  # unpicklable result/exception
                conn.send(("error", ReproError(f"task payload not picklable: {exc!r}")))
    finally:
        stop.set()
        conn.close()


@dataclass
class _Worker:
    """One live worker process and its supervisor-side plumbing."""

    process: Any
    conn: Any
    beat: Any


@dataclass
class _Attempt:
    """Supervisor-side state of one dispatched task."""

    worker: _Worker
    started: float
    last_beat_value: int = 0
    last_beat_seen: float = 0.0


class SupervisedPool:
    """Run ``fn`` over tasks with crash/hang supervision and bounded retry.

    ``fn`` must be a module-level callable (it crosses the process
    boundary) and pure with respect to each task: a retry re-runs it from
    scratch and must produce the same result.

    ``persistent=True`` keeps healthy workers warm between :meth:`run`
    calls so a long-lived owner (the analysis service) pays the spawn cost
    once; call :meth:`close` (or use the pool as a context manager) to
    reap them.  The default reaps all workers at the end of every run.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        config: Optional[PoolConfig] = None,
        *,
        persistent: bool = False,
    ):
        self.fn = fn
        self.config = config or PoolConfig()
        self.persistent = persistent
        self._idle: List[_Worker] = []
        self._shutdown = threading.Event()
        self._shutdown_reason = "shutdown requested"

    # -- lifecycle -------------------------------------------------------------

    def request_shutdown(self, reason: str = "shutdown requested") -> None:
        """Ask the active run to drain and stop (thread- and signal-safe).

        The run drains in-flight tasks for ``drain_grace_s``, kills and
        reaps whatever is still running, and raises
        :class:`~repro.errors.PoolShutdown` unless every task had already
        settled.  The request is sticky: a subsequent :meth:`run` raises
        immediately.
        """
        self._shutdown_reason = reason
        self._shutdown.set()

    def close(self) -> None:
        """Reap every warm worker.  Idempotent."""
        while self._idle:
            self._release(self._idle.pop())

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- worker lifecycle ------------------------------------------------------

    def _context(self):
        if self.config.mp_context:
            return multiprocessing.get_context(self.config.mp_context)
        return multiprocessing.get_context()

    def _spawn(self, ctx) -> _Worker:
        parent_conn, child_conn = ctx.Pipe()
        beat = ctx.Value("Q", 0)
        process = ctx.Process(
            target=_worker_main,
            args=(
                self.fn,
                child_conn,
                beat,
                self.config.heartbeat_interval_s,
                self.config.chaos_hook,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process=process, conn=parent_conn, beat=beat)

    def _checkout(self, ctx, fresh: bool) -> _Worker:
        """A warm idle worker, or a newly spawned one.

        ``fresh=True`` always spawns — retries go to a worker whose runtime
        state cannot have been poisoned by the failed attempt.
        """
        while not fresh and self._idle:
            worker = self._idle.pop()
            if worker.process.is_alive():
                return worker
            self._release(worker, kill=True)
        return self._spawn(ctx)

    def _dispatch(self, ctx, task: Any, now: float, fresh: bool) -> _Attempt:
        worker = self._checkout(ctx, fresh)
        try:
            worker.conn.send((task,))
        except (OSError, ValueError):
            # The reused worker died between checkout and send: replace it.
            self._release(worker, kill=True)
            worker = self._spawn(ctx)
            worker.conn.send((task,))
        return _Attempt(
            worker=worker,
            started=now,
            last_beat_value=worker.beat.value,
            last_beat_seen=now,
        )

    @staticmethod
    def _release(worker: _Worker, kill: bool = False) -> None:
        """Retire one worker: sentinel + join when healthy, kill otherwise."""
        if not kill and worker.process.is_alive():
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
            worker.process.join(timeout=5.0)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:
            pass

    def _receive(self, attempt: _Attempt) -> Tuple[str, Any]:
        """Drain the worker's result pipe; pipe damage is a failure."""
        try:
            kind, value = attempt.worker.conn.recv()
        except EOFError:
            # A dead worker's closed pipe reads as EOF before is_alive()
            # notices the exit: this *is* the crash signal.
            attempt.worker.process.join(timeout=5.0)
            return ("failed", self._death_reason(attempt))
        except (OSError, ValueError, ImportError, AttributeError) as exc:
            return ("failed", f"worker result unreadable: {exc!r}")
        return (kind, value)

    @staticmethod
    def _death_reason(attempt: _Attempt) -> str:
        code = attempt.worker.process.exitcode
        death = f"signal {-code}" if code is not None and code < 0 else f"exit code {code}"
        return f"worker died before returning a result ({death})"

    def _poll(
        self, attempt: _Attempt, now: float, config: PoolConfig
    ) -> Optional[Tuple[str, Any]]:
        """One supervision pass over a running worker.

        Returns None while the worker is healthy and still running, else
        ``("ok", result)``, ``("error", exception)``, or
        ``("failed", reason)`` for an infrastructure failure.
        """
        if attempt.worker.conn.poll():
            return self._receive(attempt)
        if not attempt.worker.process.is_alive():
            # The result may have raced the exit notification.
            if attempt.worker.conn.poll():
                return self._receive(attempt)
            return ("failed", self._death_reason(attempt))
        if now - attempt.started > config.timeout_s:
            return (
                "failed",
                f"deadline of {config.timeout_s:g}s exceeded "
                f"(worker killed after {now - attempt.started:.1f}s)",
            )
        beat_value = attempt.worker.beat.value
        if beat_value != attempt.last_beat_value:
            attempt.last_beat_value = beat_value
            attempt.last_beat_seen = now
        elif now - attempt.last_beat_seen > config.heartbeat_grace_s:
            return (
                "failed",
                f"heartbeat lost for {now - attempt.last_beat_seen:.1f}s "
                "(worker presumed wedged)",
            )
        return None

    # -- signal wiring ---------------------------------------------------------

    def _install_signal_handlers(self):
        """SIGTERM/SIGINT → graceful drain, for main-thread runs only."""
        if not self.config.handle_signals:
            return None
        if threading.current_thread() is not threading.main_thread():
            return None

        def on_signal(signum, frame):
            self.request_shutdown(f"signal {signum} ({signal.Signals(signum).name})")

        previous = {}
        try:
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous[signum] = signal.signal(signum, on_signal)
        except (ValueError, OSError):  # pragma: no cover - exotic embedding
            for signum, old in previous.items():
                signal.signal(signum, old)
            return None
        return previous

    @staticmethod
    def _restore_signal_handlers(previous) -> None:
        if previous:
            for signum, old in previous.items():
                signal.signal(signum, old)

    # -- the supervisor loop ---------------------------------------------------

    def run(
        self,
        tasks: Sequence[Any],
        *,
        timeout_s: Optional[float] = None,
        max_retries: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[List[Any], ExecutionReport]:
        """Execute every task; returns ``(results in task order, report)``.

        ``timeout_s`` and ``max_retries`` override the pool's configured
        deadline/retry budget for this run only — a shared long-lived pool
        serves jobs with differing budgets without being reconfigured.
        ``deadline`` bounds the *whole run*: per-attempt timeouts are
        clamped to the remaining budget, and when it expires (or is
        cancelled) in-flight workers are killed immediately and
        :class:`~repro.errors.TimeBudgetExceeded` carries out whatever
        settled — unlike :meth:`request_shutdown`, the run is cut without
        a drain grace and the pool itself stays usable.

        Application exceptions (raised by ``fn``) abort the run once every
        lower-indexed task has settled, re-raising the lowest-indexed one —
        the serial executor's semantics.  Infrastructure failures never
        raise; they are retried, then quarantined to a serial fallback.  A
        shutdown request (signal or :meth:`request_shutdown`) drains, reaps,
        and raises :class:`~repro.errors.PoolShutdown`.
        """
        tasks = list(tasks)
        config = self.config
        if timeout_s is not None:
            config = replace(config, timeout_s=float(timeout_s))
        if max_retries is not None:
            config = replace(config, max_retries=int(max_retries))
        if deadline is not None:
            remaining = deadline.remaining()
            if remaining != float("inf"):
                # Per-shard budgets derive from what is left end to end:
                # no single attempt may outlive the request's deadline.
                config = replace(
                    config, timeout_s=min(config.timeout_s, max(remaining, 0.001))
                )
        began = time.monotonic()
        report = ExecutionReport(
            tasks=[TaskExecution(index=i) for i in range(len(tasks))],
            workers=min(config.max_workers, len(tasks)),
        )
        if not tasks:
            return [], report

        ctx = self._context()
        results: Dict[int, Any] = {}
        errors: Dict[int, BaseException] = {}
        first_dispatch: Dict[int, float] = {}
        #: (not-before time, task index, needs-fresh-worker) — failed tasks
        #: re-enter with backoff and a fresh worker.
        pending: List[Tuple[float, int, bool]] = [
            (began, i, False) for i in range(len(tasks))
        ]
        running: Dict[int, _Attempt] = {}
        drain_deadline: Optional[float] = None
        budget_reason: Optional[str] = None

        def settle(index: int) -> None:
            report.tasks[index].wall_time_s = time.monotonic() - first_dispatch[index]

        def run_fallback(index: int) -> None:
            """Quarantine: the task poisoned its workers; run it here."""
            record = report.tasks[index]
            record.fallback = True
            try:
                results[index] = self.fn(tasks[index])
            except BaseException as exc:  # noqa: BLE001 - application error
                errors[index] = exc
            settle(index)

        def on_failure(index: int, reason: str, attempt: _Attempt) -> None:
            self._release(attempt.worker, kill=True)
            record = report.tasks[index]
            record.failures.append(reason)
            if record.retries < config.max_retries:
                delay = config.backoff_base_s * (
                    config.backoff_factor ** (record.attempts - 1)
                )
                pending.append((time.monotonic() + delay, index, True))
            else:
                run_fallback(index)

        previous_handlers = self._install_signal_handlers()
        try:
            while len(results) + len(errors) < len(tasks):
                now = time.monotonic()
                if deadline is not None and budget_reason is None:
                    budget_reason = deadline.reason()
                    if budget_reason is not None:
                        # The budget IS the bound: no drain grace — kill
                        # in-flight attempts (finally block) and report
                        # what settled.
                        break
                if self._shutdown.is_set():
                    # Drain: no new dispatches; give in-flight tasks one
                    # bounded grace window, then stop.
                    if drain_deadline is None:
                        drain_deadline = now + config.drain_grace_s
                    if not running or now >= drain_deadline:
                        break
                else:
                    # Dispatch ready pending tasks into free worker slots.
                    while pending and len(running) < config.max_workers:
                        ready = [p for p in pending if p[0] <= now]
                        if not ready:
                            break
                        entry = min(ready)
                        pending.remove(entry)
                        _not_before, index, fresh = entry
                        report.tasks[index].attempts += 1
                        first_dispatch.setdefault(index, now)
                        running[index] = self._dispatch(ctx, tasks[index], now, fresh)

                progressed = False
                for index in list(running):
                    attempt = running[index]
                    outcome = self._poll(attempt, now, config)
                    if outcome is None:
                        continue
                    progressed = True
                    kind, value = outcome
                    del running[index]
                    if kind == "failed":
                        on_failure(index, value, attempt)
                        continue
                    # The worker answered and is healthy: keep it warm.
                    self._idle.append(attempt.worker)
                    if kind == "ok":
                        results[index] = value
                    else:
                        errors[index] = value
                    settle(index)

                if errors:
                    lowest = min(errors)
                    if all(
                        i in results or i in errors for i in range(lowest)
                    ):
                        # Everything that could preempt this error has
                        # settled: cancel the rest and raise it.
                        break
                if not progressed:
                    time.sleep(config.poll_interval_s)
        finally:
            for attempt in running.values():
                self._release(attempt.worker, kill=True)
            running.clear()
            if not self.persistent:
                self.close()
            report.wall_time_s = time.monotonic() - began
            self._restore_signal_handlers(previous_handlers)

        if budget_reason is not None and len(results) + len(errors) < len(tasks):
            for record in report.tasks:
                if record.index not in results and record.index not in errors:
                    record.failures.append(f"cancelled: {budget_reason}")
            raise TimeBudgetExceeded(budget_reason, results=results, report=report)
        if self._shutdown.is_set() and len(results) + len(errors) < len(tasks):
            for record in report.tasks:
                if record.index not in results and record.index not in errors:
                    record.failures.append(f"cancelled: {self._shutdown_reason}")
            raise PoolShutdown(self._shutdown_reason, results=results, report=report)
        if errors:
            raise errors[min(errors)]
        return [results[i] for i in range(len(tasks))], report
