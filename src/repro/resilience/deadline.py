"""A shared, cancellable wall-clock budget for one analysis request.

A :class:`Deadline` is created once per request (from
``AnalysisRequest.deadline_s`` or by the service per job) and handed down
through every layer that does open-ended work: the streaming replay pump
polls it between chunks, the supervised pool derives per-shard budgets
from :meth:`Deadline.remaining`, and the service keeps the handle so a
``DELETE /jobs/<key>`` can :meth:`cancel` it from another thread.

The clock is :func:`time.monotonic`.  Cancellation is a single attribute
assignment, so the object is safe to share between the service threads
and the analysis without extra locking; worker *processes* never see the
object — only budgets derived from it.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import TimeBudgetExceeded

__all__ = ["Deadline", "TimeBudgetExceeded"]


class Deadline:
    """Wall-clock budget that can also be cancelled explicitly.

    Parameters
    ----------
    budget_s:
        Total seconds allowed from construction.  ``None`` means
        unbounded: the deadline never expires on its own but can still
        be cancelled.
    """

    __slots__ = ("budget_s", "_expires_at", "_cancel_reason")

    def __init__(self, budget_s: Optional[float] = None) -> None:
        if budget_s is not None and budget_s <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_s!r}")
        self.budget_s = budget_s
        self._expires_at = (
            None if budget_s is None else time.monotonic() + budget_s
        )
        self._cancel_reason: Optional[str] = None

    def cancel(self, reason: str = "cancelled") -> None:
        """Expire the deadline immediately (idempotent, thread-safe)."""
        if self._cancel_reason is None:
            self._cancel_reason = reason

    @property
    def cancelled(self) -> bool:
        return self._cancel_reason is not None

    def remaining(self) -> float:
        """Seconds left in the budget; ``inf`` when unbounded, 0 when spent."""
        if self._cancel_reason is not None:
            return 0.0
        if self._expires_at is None:
            return float("inf")
        return max(0.0, self._expires_at - time.monotonic())

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def reason(self) -> Optional[str]:
        """Why the budget ended, or ``None`` while it is still open."""
        if self._cancel_reason is not None:
            return self._cancel_reason
        if self._expires_at is not None and time.monotonic() >= self._expires_at:
            return f"deadline of {self.budget_s}s exceeded"
        return None

    def check(self) -> None:
        """Raise :class:`TimeBudgetExceeded` if the budget has ended."""
        reason = self.reason()
        if reason is not None:
            raise TimeBudgetExceeded(reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._cancel_reason is not None:
            state = f"cancelled: {self._cancel_reason}"
        elif self.budget_s is None:
            state = "unbounded"
        else:
            state = f"{self.remaining():.3f}s of {self.budget_s}s left"
        return f"Deadline({state})"
