"""Worker-side chaos hooks (must be module-level to cross fork/pickle).

The supervised pool runs its ``chaos_hook`` inside the worker process
immediately before the task function.  Victim election uses ``O_EXCL``
marker files in a per-episode directory, so concurrent workers cannot
both claim the same victim slot and re-dispatched attempts of the same
task are spared — exactly one SIGKILL (or SIGSTOP) per slot per episode,
whatever the scheduling order.
"""

from __future__ import annotations

import os
import signal

__all__ = ["process_chaos"]


def _claim(marker_dir: str, slot: str) -> bool:
    try:
        fd = os.open(
            os.path.join(marker_dir, slot), os.O_CREAT | os.O_EXCL | os.O_WRONLY
        )
    except FileExistsError:
        return False
    os.close(fd)
    return True


def process_chaos(marker_dir: str, kills: int, stalls: int, task) -> None:
    """Kill or stall this worker if an unclaimed victim slot remains.

    Bind ``marker_dir``/``kills``/``stalls`` with :func:`functools.partial`
    and pass the result as ``PoolConfig.chaos_hook``.
    """
    for slot in range(kills):
        if _claim(marker_dir, f"kill-{slot}"):
            os.kill(os.getpid(), signal.SIGKILL)
    for slot in range(stalls):
        if _claim(marker_dir, f"stall-{slot}"):
            os.kill(os.getpid(), signal.SIGSTOP)
