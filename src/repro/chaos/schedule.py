"""Seeded chaos schedules: what breaks, where, and how hard.

A :class:`ChaosSchedule` composes the existing trace/storage fault specs
(:class:`~repro.faults.FaultPlan`) with process chaos the supervised pool
must absorb (worker SIGKILL / SIGSTOP), journal torn-tail writes, and an
optional wall-clock deadline.  :func:`schedule_for_seed` maps a seed onto
a fixed severity ladder (level ``seed % 5``) so a seed range like
``0..4`` sweeps from "nothing breaks" to "everything breaks at once"
deterministically:

========  =============================================================
level     chaos
========  =============================================================
L0        empty — the control episode (byte-identity invariant)
L1        one analysis worker SIGKILLed (recovers by retry, still
          byte-identical)
L2        L1 + one rank's trace corrupted (degraded analysis)
L3        two ranks corrupted + one worker SIGSTOPped + one transient
          storage failure during archive creation
L4        L3 + a SIGKILLed worker + a torn-tail journal write + a
          (generous) deadline on the whole analysis
========  =============================================================

The seed also feeds the fault plan, so two seeds on the same level place
their random fault details differently while the *structure* (which
ranks, which fractions) stays fixed — that structure is what makes the
completeness-monotonicity invariant decidable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults import FaultPlan
from repro.faults.plan import FileSystemFault, TraceCorruption

__all__ = ["ChaosSchedule", "schedule_for_seed"]


@dataclass(frozen=True)
class ChaosSchedule:
    """One episode's worth of composed chaos (immutable, seed-derived)."""

    name: str
    seed: int
    #: Severity rung on the ladder; the monotonicity invariant orders by it.
    level: int
    #: Trace/storage faults injected into the *simulation* (or ``None``).
    fault_plan: Optional[FaultPlan] = None
    #: Analysis workers SIGKILLed (one each, first-come via marker files).
    kill_workers: int = 0
    #: Analysis workers SIGSTOPped (caught by the heartbeat, not the exit).
    stall_workers: int = 0
    #: Bytes torn off the episode journal's tail after writing it.
    torn_tail_bytes: int = 0
    #: Wall-clock budget for the episode's analysis (``None`` = unbounded).
    deadline_s: Optional[float] = None

    @property
    def empty(self) -> bool:
        return (
            (self.fault_plan is None or self.fault_plan.is_empty)
            and self.kill_workers == 0
            and self.stall_workers == 0
            and self.torn_tail_bytes == 0
            and self.deadline_s is None
        )

    @property
    def degrades_traces(self) -> bool:
        """Whether the schedule damages trace data itself.

        Process chaos (kill/stall) is fully recoverable — the analysis
        retries and the result stays byte-identical.  Damaged traces are
        not: those episodes run in degraded mode and are the ones allowed
        to lose completeness.
        """
        if self.fault_plan is None:
            return False
        return bool(self.fault_plan.of_type(TraceCorruption))

    def describe(self) -> str:
        parts = []
        if self.fault_plan is not None and not self.fault_plan.is_empty:
            parts.append(f"{len(self.fault_plan.specs)} fault spec(s)")
        if self.kill_workers:
            parts.append(f"kill {self.kill_workers} worker(s)")
        if self.stall_workers:
            parts.append(f"stall {self.stall_workers} worker(s)")
        if self.torn_tail_bytes:
            parts.append(f"tear {self.torn_tail_bytes}B off the journal")
        if self.deadline_s is not None:
            parts.append(f"deadline {self.deadline_s}s")
        return ", ".join(parts) if parts else "no chaos"


def schedule_for_seed(seed: int) -> ChaosSchedule:
    """The fixed severity ladder, keyed by ``seed % 5``."""
    if seed < 0:
        raise ValueError(f"chaos seed must be non-negative, got {seed}")
    level = seed % 5
    name = f"chaos-L{level}-seed{seed}"
    if level == 0:
        return ChaosSchedule(name=name, seed=seed, level=0)
    if level == 1:
        return ChaosSchedule(name=name, seed=seed, level=1, kill_workers=1)
    if level == 2:
        plan = FaultPlan(
            name=name,
            seed=seed,
            specs=(TraceCorruption(rank=3, at_fraction=0.5, length=8),),
        )
        return ChaosSchedule(
            name=name, seed=seed, level=2, fault_plan=plan, kill_workers=1
        )
    if level == 3:
        plan = FaultPlan(
            name=name,
            seed=seed,
            specs=(
                # Rank 3 is hit *earlier* than on L2 so per-rank
                # completeness is ordered by level, not just rank count.
                TraceCorruption(rank=3, at_fraction=0.4, length=8),
                TraceCorruption(rank=5, at_fraction=0.5, length=8),
                FileSystemFault(machine="*", fail_count=1),
            ),
        )
        return ChaosSchedule(
            name=name, seed=seed, level=3, fault_plan=plan, stall_workers=1
        )
    plan = FaultPlan(
        name=name,
        seed=seed,
        specs=(
            TraceCorruption(rank=3, at_fraction=0.4, length=8),
            TraceCorruption(rank=5, at_fraction=0.5, length=8),
            FileSystemFault(machine="*", fail_count=1),
        ),
    )
    return ChaosSchedule(
        name=name,
        seed=seed,
        level=4,
        fault_plan=plan,
        kill_workers=1,
        stall_workers=1,
        torn_tail_bytes=7,
        # Generous on purpose: the deadline must not fire on a healthy
        # machine — the termination invariant proves it *bounds* the
        # episode, not that it truncates it.
        deadline_s=300.0,
    )
