"""Seeded chaos harness: composed faults, invariants, episode replay.

The package turns the repo's individual resilience mechanisms (trace
fault injection, supervised-pool crash/hang recovery, deadlines, the
crash-safe journal) into a single *closed-loop* harness: a seeded
:class:`~repro.chaos.schedule.ChaosSchedule` describes what breaks, one
episode runs a full simulate→analyze pipeline under that schedule, and
the harness asserts invariants that must hold no matter what broke:

1. an **empty schedule** (and any schedule whose chaos is fully
   recoverable) produces a result byte-identical to the clean run;
2. every episode **terminates** within ``deadline + grace`` — wedged
   workers are bounded by supervision, never waited on;
3. analysis **completeness is monotone**: more severe chaos never
   reports *more* complete analysis than less severe chaos.

``repro chaos --seeds 0..4`` is the CLI entry point; CI runs the same
fixed-seed matrix.
"""

from repro.chaos.harness import (
    ChaosReport,
    EpisodeResult,
    render_report,
    run_chaos,
    run_episode,
)
from repro.chaos.schedule import ChaosSchedule, schedule_for_seed

__all__ = [
    "ChaosReport",
    "ChaosSchedule",
    "EpisodeResult",
    "render_report",
    "run_chaos",
    "run_episode",
    "schedule_for_seed",
]
