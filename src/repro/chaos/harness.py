"""Chaos episodes and the invariants every episode must satisfy.

One episode = one simulate→analyze pipeline run under one
:class:`~repro.chaos.schedule.ChaosSchedule`: the fault plan is injected
into the simulation, the process chaos into the parallel analysis pool,
the torn tail into the episode journal, and the deadline around the whole
analysis.  :func:`run_chaos` runs a seed matrix and checks the
cross-episode invariants; violations are *returned*, not raised, so the
CLI (and CI) can render every episode before failing.

The workload is deliberately small and fixed (8 ranks, 2 metahosts, the
deterministic imbalance app): chaos severity is the only thing that
varies between episodes, which is what makes the monotonicity invariant
a statement about the *analyzer* rather than about the workload.
"""

from __future__ import annotations

import functools
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.chaos.hooks import process_chaos
from repro.chaos.schedule import ChaosSchedule, schedule_for_seed
from repro.errors import TimeBudgetExceeded
from repro.resilience import CheckpointJournal, Deadline
from repro.resilience.pool import PoolConfig

__all__ = [
    "EpisodeResult",
    "ChaosReport",
    "run_episode",
    "run_chaos",
    "render_report",
]

#: Fixed workload: the chaos seed must never change *what* is analyzed.
_SIM_SEED = 5
_RANKS = 8


@dataclass
class EpisodeResult:
    """Everything one episode observed (plus its local invariant checks)."""

    schedule: ChaosSchedule
    wall_s: float
    #: ``None`` when the analysis ran to completion, else the budget reason.
    interrupted: Optional[str]
    #: Ranks whose analysis is complete / total ranks.
    complete_ranks: int
    total_ranks: int
    #: Whether the severity cube matches the clean baseline exactly
    #: (``None`` when the episode produced no result at all).
    byte_identical: Optional[bool]
    #: ``None`` when the schedule tears no journal; else whether the
    #: journal survived the torn tail losing at most the torn record.
    journal_recovered: Optional[bool]
    violations: List[str] = field(default_factory=list)

    def summary(self) -> str:
        flags = []
        if self.byte_identical is not None:
            flags.append("identical" if self.byte_identical else "diverged")
        if self.interrupted is not None:
            flags.append(f"interrupted: {self.interrupted}")
        if self.journal_recovered is not None:
            flags.append(
                "journal recovered"
                if self.journal_recovered
                else "journal LOST DATA"
            )
        flag_text = f" ({', '.join(flags)})" if flags else ""
        return (
            f"L{self.schedule.level} seed {self.schedule.seed}: "
            f"{self.complete_ranks}/{self.total_ranks} ranks complete "
            f"in {self.wall_s:.1f}s{flag_text} — {self.schedule.describe()}"
        )


@dataclass
class ChaosReport:
    episodes: List[EpisodeResult]
    violations: List[str]

    @property
    def ok(self) -> bool:
        return not self.violations


def _simulate(fault_plan, sim_seed: int):
    from repro.api import Placement, simulate
    from repro.apps.imbalance import make_imbalance_app
    from repro.topology.presets import uniform_metacomputer

    metacomputer = uniform_metacomputer(
        metahost_count=2, node_count=2, cpus_per_node=2
    )
    work = {rank: 0.005 * (1 + rank % 3) for rank in range(_RANKS)}
    return simulate(
        make_imbalance_app(work, iterations=3),
        metacomputer,
        Placement.block(metacomputer, _RANKS),
        seed=sim_seed,
        fault_plan=fault_plan,
    )


def _pool_config(schedule: ChaosSchedule, marker_dir: str, jobs: int) -> PoolConfig:
    hook = None
    if schedule.kill_workers or schedule.stall_workers:
        hook = functools.partial(
            process_chaos,
            marker_dir,
            schedule.kill_workers,
            schedule.stall_workers,
        )
    return PoolConfig(
        max_workers=max(2, jobs),
        timeout_s=60.0,
        max_retries=2,
        backoff_base_s=0.01,
        poll_interval_s=0.01,
        heartbeat_interval_s=0.05,
        # A SIGSTOPped worker is silent, not dead: only the heartbeat
        # notices.  Keep the grace short so stall episodes stay fast.
        heartbeat_grace_s=1.0,
        chaos_hook=hook,
    )


def _tear_journal(path: str, completeness: Dict, torn_bytes: int) -> bool:
    """Write per-rank completeness, tear the tail, verify recovery.

    Returns ``True`` when the reopened journal kept every record except
    (at most) the one the tear landed in — the crash-safety contract of
    the checkpoint journal under torn writes.
    """
    journal = CheckpointJournal(path, exclusive=True)
    try:
        for rank in sorted(completeness):
            entry = completeness[rank]
            journal.record(
                {"rank": rank},
                {"complete": entry.complete, "events": entry.events},
            )
    finally:
        journal.close()
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(max(0, size - torn_bytes))
    reopened = CheckpointJournal(path)
    try:
        kept = len(reopened.cells())
    finally:
        reopened.close()
    return len(completeness) - 1 <= kept <= len(completeness)


def run_episode(
    schedule: ChaosSchedule,
    *,
    jobs: int = 4,
    grace_s: float = 120.0,
    workdir: Optional[str] = None,
    baseline=None,
) -> EpisodeResult:
    """Run one chaos episode; returns observations + local violations.

    ``baseline`` is the clean-run :class:`~repro.api.AnalysisResult` to
    compare against (computed on demand when omitted).
    """
    from repro.analysis.parallel import ParallelReplayAnalyzer
    from repro.api import analyze

    workdir = workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    marker_dir = os.path.join(workdir, f"markers-{schedule.name}")
    os.makedirs(marker_dir, exist_ok=True)

    if baseline is None:
        baseline = analyze(_simulate(None, _SIM_SEED))
    run = _simulate(schedule.fault_plan, _SIM_SEED)
    degraded = schedule.degrades_traces
    deadline = (
        Deadline(schedule.deadline_s) if schedule.deadline_s is not None else None
    )
    analyzer = ParallelReplayAnalyzer(
        {machine: run.reader(machine) for machine in run.machines_used},
        degraded=degraded,
        jobs=jobs,
        pool_config=_pool_config(schedule, marker_dir, jobs),
        deadline=deadline,
    )
    began = time.monotonic()
    try:
        result = analyzer.analyze()
        interrupted = result.interrupted
    except TimeBudgetExceeded as exc:
        # Nothing settled before the budget ended: an honest empty
        # partial, still within the termination bound.
        result = None
        interrupted = exc.reason
    wall_s = time.monotonic() - began

    total_ranks = _RANKS
    if result is not None:
        # A clean, uninterrupted analysis records no per-rank
        # completeness at all — absence of an entry means "complete".
        completeness = result.completeness
        complete_ranks = total_ranks - sum(
            1 for entry in completeness.values() if not entry.complete
        )
    else:
        completeness = {}
        complete_ranks = 0
    byte_identical: Optional[bool] = None
    if result is not None:
        byte_identical = result.cube.data == baseline.cube.data

    journal_recovered: Optional[bool] = None
    if schedule.torn_tail_bytes and completeness:
        journal_recovered = _tear_journal(
            os.path.join(workdir, f"{schedule.name}.jsonl"),
            completeness,
            schedule.torn_tail_bytes,
        )

    episode = EpisodeResult(
        schedule=schedule,
        wall_s=wall_s,
        interrupted=interrupted,
        complete_ranks=complete_ranks,
        total_ranks=total_ranks,
        byte_identical=byte_identical,
        journal_recovered=journal_recovered,
    )

    # Local invariants: termination, recoverable-chaos byte-identity,
    # torn-tail recovery.
    allowed = (schedule.deadline_s or 0.0) + grace_s
    if wall_s > allowed:
        episode.violations.append(
            f"{schedule.name}: episode took {wall_s:.1f}s, bound is "
            f"deadline+grace = {allowed:.1f}s"
        )
    if not degraded and schedule.deadline_s is None and not byte_identical:
        episode.violations.append(
            f"{schedule.name}: recoverable chaos changed the result "
            "(must be byte-identical to the clean run)"
        )
    if journal_recovered is False:
        episode.violations.append(
            f"{schedule.name}: torn-tail journal lost more than the torn record"
        )
    return episode


def run_chaos(
    seeds: Sequence[int],
    *,
    jobs: int = 4,
    grace_s: float = 120.0,
    workdir: Optional[str] = None,
) -> ChaosReport:
    """Run the seed matrix and check the cross-episode invariants."""
    from repro.api import analyze

    workdir = workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    baseline = analyze(_simulate(None, _SIM_SEED))
    episodes: List[EpisodeResult] = []
    for seed in seeds:
        episodes.append(
            run_episode(
                schedule_for_seed(seed),
                jobs=jobs,
                grace_s=grace_s,
                workdir=workdir,
                baseline=baseline,
            )
        )
    violations = [v for episode in episodes for v in episode.violations]
    # Monotonicity: order by severity level; a harsher schedule must not
    # report a *more* complete analysis than a gentler one.
    by_level = sorted(episodes, key=lambda e: e.schedule.level)
    for gentler, harsher in zip(by_level, by_level[1:]):
        if harsher.complete_ranks > gentler.complete_ranks:
            violations.append(
                f"completeness not monotone: L{harsher.schedule.level} "
                f"(seed {harsher.schedule.seed}) has "
                f"{harsher.complete_ranks} complete ranks, more than "
                f"L{gentler.schedule.level} (seed {gentler.schedule.seed}) "
                f"with {gentler.complete_ranks}"
            )
    return ChaosReport(episodes=episodes, violations=violations)


def render_report(report: ChaosReport) -> str:
    lines = ["== chaos episodes =="]
    lines.extend(episode.summary() for episode in report.episodes)
    lines.append("")
    if report.ok:
        lines.append(
            f"all invariants held across {len(report.episodes)} episode(s)"
        )
    else:
        lines.append(f"{len(report.violations)} invariant violation(s):")
        lines.extend(f"  - {violation}" for violation in report.violations)
    return "\n".join(lines)
