"""Instrumentation: turns simulated execution into local event traces.

The paper's applications were instrumented "by inserting directives which
were automatically translated into tracing API calls by a preprocessor";
here the simulator calls the tracing API directly through the hook
interface of :class:`~repro.instrument.tracer.Tracer`.
"""

from repro.instrument.tracer import Tracer

__all__ = ["Tracer"]
