"""The tracing backend invoked by the simulated MPI world.

Every hook receives the acting process slot and the *true* simulation time;
the tracer immediately converts the true time to the node-local clock
stamp — exactly what a real tracing library does when it reads the
unsynchronized hardware timer — and appends a record to the process's
buffer.  Nothing downstream of this point ever sees true time again; the
analysis must recover a global time base via offset measurements, which is
the entire point of the paper's synchronization machinery.

Hooks run once per simulated event, so the per-rank state they need — the
trace buffer and the node clock's bound ``local_time`` — is resolved once
per rank and cached, not re-looked-up through the location/ensemble tables
on every event.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.clocks.clock import ClockEnsemble
from repro.errors import TraceError
from repro.ids import node_of
from repro.topology.metacomputer import ProcessSlot
from repro.trace.buffer import TraceBuffer
from repro.trace.regions import RegionRegistry


class Tracer:
    """Per-run tracing state: region table plus one buffer per rank."""

    def __init__(
        self,
        clocks: ClockEnsemble,
        regions: Optional[RegionRegistry] = None,
    ) -> None:
        self.clocks = clocks
        self.regions = regions if regions is not None else RegionRegistry()
        self._buffers: Dict[int, TraceBuffer] = {}
        #: rank -> (buffer, node clock's bound local_time) hot-path cache.
        self._per_rank: Dict[int, Tuple[TraceBuffer, Callable[[float], float]]] = {}

    def buffer(self, rank: int) -> TraceBuffer:
        buf = self._buffers.get(rank)
        if buf is None:
            buf = TraceBuffer(rank)
            self._buffers[rank] = buf
        return buf

    def buffers(self) -> Dict[int, TraceBuffer]:
        return self._buffers

    def _stamp(self, slot: ProcessSlot, true_time: float) -> float:
        return self.clocks.clock(node_of(slot.location)).local_time(true_time)

    def _hot(self, slot: ProcessSlot) -> Tuple[TraceBuffer, Callable[[float], float]]:
        entry = self._per_rank.get(slot.rank)
        if entry is None:
            entry = (
                self.buffer(slot.rank),
                self.clocks.clock(node_of(slot.location)).local_time,
            )
            self._per_rank[slot.rank] = entry
        return entry

    # -- hook interface used by the world -----------------------------------

    def enter(self, slot: ProcessSlot, region: str, true_time: float) -> None:
        buf, stamp = self._hot(slot)
        buf.enter(stamp(true_time), self.regions.register(region))

    def exit(self, slot: ProcessSlot, region: str, true_time: float) -> None:
        buf, stamp = self._hot(slot)
        buf.exit(stamp(true_time), self.regions.register(region))

    def send(
        self,
        slot: ProcessSlot,
        true_time: float,
        dest_global: int,
        tag: int,
        comm_id: int,
        size: int,
    ) -> None:
        buf, stamp = self._hot(slot)
        buf.send(stamp(true_time), dest_global, tag, comm_id, size)

    def recv(
        self,
        slot: ProcessSlot,
        true_time: float,
        source_global: int,
        tag: int,
        comm_id: int,
        size: int,
    ) -> None:
        buf, stamp = self._hot(slot)
        buf.recv(stamp(true_time), source_global, tag, comm_id, size)

    def coll_exit(
        self,
        slot: ProcessSlot,
        true_time: float,
        region: str,
        comm_id: int,
        root_global: int,
        sent: int,
        recvd: int,
    ) -> None:
        buf, stamp = self._hot(slot)
        buf.coll_exit(
            stamp(true_time), self.regions.register(region), comm_id, root_global,
            sent, recvd,
        )

    def omp_region(
        self,
        slot: ProcessSlot,
        true_time: float,
        region: str,
        nthreads: int,
        busy_sum: float,
        busy_max: float,
    ) -> None:
        buf, stamp = self._hot(slot)
        buf.omp_region(
            stamp(true_time), self.regions.register(region), nthreads, busy_sum,
            busy_max,
        )

    # -- lifecycle -------------------------------------------------------------

    def finalize(self, world_size: int) -> None:
        """Close all buffers; ranks without events get empty (valid) traces."""
        for rank in range(world_size):
            buf = self.buffer(rank)
            if not buf.finalized:
                buf.finalize()

    def require_finalized(self) -> None:
        for rank, buf in self._buffers.items():
            if not buf.finalized:
                raise TraceError(f"trace buffer of rank {rank} not finalized")
