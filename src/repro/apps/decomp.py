"""Cartesian domain decompositions for halo-exchange workloads.

Trace (the flow submodel of MetaTrace) "applies a three-dimensional domain
decomposition with nearest-neighbor communication" — this helper maps
communicator ranks onto a 3-D process grid and enumerates the neighbors for
the per-dimension halo exchanges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

Coord = Tuple[int, int, int]


@dataclass(frozen=True)
class CartesianDecomposition:
    """A non-periodic 3-D process grid.

    Parameters
    ----------
    dims:
        Grid extents ``(nx, ny, nz)``; their product must equal the number
        of participating ranks.
    coord_of_rank:
        Optional explicit rank → coordinate mapping.  The default is
        x-major order; MetaTrace's Experiment-1 configuration uses an
        explicit interleaved mapping so that metahost boundaries cut
        through the x dimension.
    """

    dims: Coord
    coords: Tuple[Coord, ...]

    @classmethod
    def build(
        cls,
        dims: Coord,
        coord_of_rank: Optional[Sequence[Coord]] = None,
    ) -> "CartesianDecomposition":
        nx, ny, nz = dims
        if nx <= 0 or ny <= 0 or nz <= 0:
            raise ConfigurationError(f"grid dims must be positive: {dims}")
        size = nx * ny * nz
        if coord_of_rank is None:
            coord_of_rank = [
                (x, y, z)
                for x in range(nx)
                for y in range(ny)
                for z in range(nz)
            ]
        coords = tuple(tuple(c) for c in coord_of_rank)  # type: ignore[arg-type]
        if len(coords) != size:
            raise ConfigurationError(
                f"{len(coords)} coordinates for a {size}-cell grid"
            )
        if len(set(coords)) != size:
            raise ConfigurationError("duplicate coordinates in decomposition")
        for x, y, z in coords:
            if not (0 <= x < nx and 0 <= y < ny and 0 <= z < nz):
                raise ConfigurationError(f"coordinate {(x, y, z)} outside {dims}")
        return cls(dims=dims, coords=coords)

    @property
    def size(self) -> int:
        return len(self.coords)

    def coord(self, rank: int) -> Coord:
        if not 0 <= rank < len(self.coords):
            raise ConfigurationError(f"rank {rank} outside decomposition")
        return self.coords[rank]

    def rank_at(self, coord: Coord) -> int:
        try:
            return self.coords.index(coord)
        except ValueError:
            raise ConfigurationError(f"no rank at coordinate {coord}") from None

    def neighbors(self, rank: int) -> List[Tuple[int, int, int]]:
        """``(dimension, direction, neighbor_rank)`` for all existing neighbors.

        Ordered by dimension then direction (+1 before −1), which fixes the
        halo-exchange schedule.
        """
        x, y, z = self.coord(rank)
        out: List[Tuple[int, int, int]] = []
        index: Dict[Coord, int] = {c: r for r, c in enumerate(self.coords)}
        for dim in range(3):
            for direction in (+1, -1):
                nbr = [x, y, z]
                nbr[dim] += direction
                candidate = (nbr[0], nbr[1], nbr[2])
                other = index.get(candidate)
                if other is not None:
                    out.append((dim, direction, other))
        return out
