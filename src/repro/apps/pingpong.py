"""Ping-pong latency benchmark (Table 1 workload).

Measures one-way message latency between selected rank pairs the way the
paper measured VIOLA's internal and external networks with MetaMPICH: many
round trips, half the round-trip time each.  Pairs are exercised one after
another so measurements do not interfere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class PingPongResults:
    """Half-RTT samples per measured pair, filled in by the app."""

    samples: Dict[Tuple[int, int], List[float]] = field(default_factory=dict)

    def mean_s(self, pair: Tuple[int, int]) -> float:
        return float(np.mean(self.samples[pair]))

    def std_s(self, pair: Tuple[int, int]) -> float:
        return float(np.std(self.samples[pair], ddof=1))

    def summary(self) -> Dict[Tuple[int, int], Tuple[float, float]]:
        """Pair → (mean, standard deviation) in seconds."""
        return {pair: (self.mean_s(pair), self.std_s(pair)) for pair in self.samples}


def make_pingpong_app(
    results: PingPongResults,
    pairs: Sequence[Tuple[int, int]],
    repetitions: int = 500,
    size_bytes: int = 64,
    warmup: int = 10,
):
    """Build the benchmark app.

    Parameters
    ----------
    results:
        Output container; ``results.samples[(a, b)]`` receives
        *repetitions* half-RTT values measured by rank *a*.
    pairs:
        ``(initiator, responder)`` global-rank pairs, measured sequentially.
    warmup:
        Untimed round trips before sampling (protocol warm-up).
    """
    if repetitions < 2:
        raise ConfigurationError("need at least two repetitions for a std deviation")
    for a, b in pairs:
        if a == b:
            raise ConfigurationError(f"ping-pong pair ({a}, {b}) must be distinct")

    pair_list = [tuple(p) for p in pairs]

    def app(ctx):
        with ctx.region("pingpong"):
            for a, b in pair_list:
                if ctx.rank == a:
                    with ctx.region(f"measure_{a}_{b}"):
                        samples: List[float] = []
                        for i in range(warmup + repetitions):
                            t0 = ctx.now
                            yield ctx.comm.send(b, size_bytes, tag=1)
                            yield ctx.comm.recv(b, tag=2)
                            if i >= warmup:
                                samples.append((ctx.now - t0) / 2.0)
                        results.samples[(a, b)] = samples
                elif ctx.rank == b:
                    for _ in range(warmup + repetitions):
                        yield ctx.comm.recv(a, tag=1)
                        yield ctx.comm.send(a, size_bytes, tag=2)
                # All ranks synchronize between pair measurements so the
                # next pair starts from a quiet network.
                yield ctx.comm.barrier()

    return app
