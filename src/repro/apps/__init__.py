"""Workloads: benchmark kernels and the MetaTrace multi-physics skeleton.

Applications are factory functions returning generator apps for
:class:`~repro.sim.mpi.World` / :class:`~repro.sim.runtime.MetaMPIRuntime`.
"""

from repro.apps.decomp import CartesianDecomposition
from repro.apps.pingpong import PingPongResults, make_pingpong_app
from repro.apps.clockbench import ClockBenchConfig, make_clockbench_app, pair_schedule
from repro.apps.imbalance import make_imbalance_app, make_barrier_imbalance_app
from repro.apps.metatrace import MetaTraceConfig, make_metatrace_app

__all__ = [
    "CartesianDecomposition",
    "PingPongResults",
    "make_pingpong_app",
    "ClockBenchConfig",
    "make_clockbench_app",
    "pair_schedule",
    "make_imbalance_app",
    "make_barrier_imbalance_app",
    "MetaTraceConfig",
    "make_metatrace_app",
]
