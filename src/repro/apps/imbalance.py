"""Synthetic imbalance generators for tests, examples, and pattern studies.

Small, fully-controllable workloads whose wait states are analytically
predictable — the unit tests of the pattern catalogue are built on them.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigurationError


def make_imbalance_app(
    work_of_rank: Dict[int, float],
    message_bytes: int = 1024,
    iterations: int = 1,
):
    """Ring exchange after per-rank compute phases of different lengths.

    Each iteration, rank *r* computes ``work_of_rank[r]`` reference seconds,
    then exchanges a message with its ring successor via sendrecv.  Ranks
    following a slower predecessor accumulate Late Sender waiting time.
    """
    if iterations < 1:
        raise ConfigurationError("need at least one iteration")

    def app(ctx):
        work = work_of_rank.get(ctx.rank, 0.0)
        succ = (ctx.rank + 1) % ctx.size
        pred = (ctx.rank - 1) % ctx.size
        with ctx.region("main"):
            for _ in range(iterations):
                with ctx.region("work"):
                    yield ctx.compute(work)
                with ctx.region("ring"):
                    yield ctx.comm.sendrecv(
                        dest=succ,
                        send_size=message_bytes,
                        send_tag=3,
                        source=pred,
                        recv_tag=3,
                    )
        yield ctx.comm.barrier()

    return app


def make_barrier_imbalance_app(
    work_of_rank: Dict[int, float],
    iterations: int = 1,
    comm_name: Optional[str] = None,
):
    """Compute phases of different lengths separated by barriers.

    The fast ranks wait at every barrier for the slowest rank — the
    textbook Wait at Barrier situation (grid-flavored when the ranks span
    metahosts).
    """
    if iterations < 1:
        raise ConfigurationError("need at least one iteration")

    def app(ctx):
        comm = ctx.comm if comm_name is None else ctx.get_comm(comm_name)
        work = work_of_rank.get(ctx.rank, 0.0)
        with ctx.region("main"):
            for _ in range(iterations):
                with ctx.region("work"):
                    yield ctx.compute(work)
                if comm is not None:
                    with ctx.region("sync"):
                        yield comm.barrier()

    return app


def make_nxn_imbalance_app(
    work_of_rank: Dict[int, float],
    payload_bytes: int = 4096,
    iterations: int = 1,
):
    """Unequal compute followed by allreduce (the Wait at N×N situation)."""
    if iterations < 1:
        raise ConfigurationError("need at least one iteration")

    def app(ctx):
        work = work_of_rank.get(ctx.rank, 0.0)
        with ctx.region("main"):
            for _ in range(iterations):
                with ctx.region("work"):
                    yield ctx.compute(work)
                with ctx.region("reduce"):
                    yield ctx.comm.allreduce(payload_bytes)

    return app


def make_master_worker_app(
    work_of_rank: Dict[int, float],
    chunk_bytes: int = 2048,
    rounds: int = 1,
):
    """Rank 0 collects one message per worker per round (Late Sender mix)."""
    if rounds < 1:
        raise ConfigurationError("need at least one round")

    def app(ctx):
        with ctx.region("main"):
            for _ in range(rounds):
                if ctx.rank == 0:
                    with ctx.region("collect"):
                        for _ in range(ctx.size - 1):
                            yield ctx.comm.recv()
                else:
                    with ctx.region("produce"):
                        yield ctx.compute(work_of_rank.get(ctx.rank, 0.0))
                        yield ctx.comm.send(0, chunk_bytes, tag=9)
        yield ctx.comm.barrier()

    return app
