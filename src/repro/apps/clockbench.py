"""The clock-condition benchmark (Table 2 workload).

The paper verified the hierarchical synchronization "using a benchmark that
has been specifically designed to exchange a large number of short messages
between varying pairs of processes.  This way, the benchmark produces pairs
of send and receive events that are chronologically close to each other" —
the send→receive gap is just one message latency, so any synchronization
error larger than the link latency flips the observed order and the
parallel analyzer reports a clock-condition violation.

Pairing uses the self-inverse schedule ``partner(r, i) = (r − i) mod n``:
in round *r* process *i* talks to ``(r − i) mod n`` (skipping the fixed
point), which cycles every process through every partner — internal and
external pairs alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError


def pair_schedule(nprocs: int, round_index: int) -> List[Tuple[int, int]]:
    """The (lower, higher) pairs of one round of the benchmark."""
    if nprocs < 2:
        raise ConfigurationError("clock benchmark needs at least two processes")
    pairs = []
    for i in range(nprocs):
        j = (round_index - i) % nprocs
        if i < j:
            pairs.append((i, j))
    return pairs


def partner_of(rank: int, nprocs: int, round_index: int) -> Optional[int]:
    """Partner of *rank* in a round, or None when it pairs with itself."""
    j = (round_index - rank) % nprocs
    return None if j == rank else j


@dataclass(frozen=True)
class ClockBenchConfig:
    """Benchmark parameters.

    ``rounds`` rounds are executed; in each, every pair exchanges
    ``exchanges_per_round`` ping-pongs of ``size_bytes``-byte messages, and
    all processes then advance by ``inter_round_gap_s`` of computation so
    the run spans enough wall time for clock drift to matter.
    """

    rounds: int = 200
    exchanges_per_round: int = 2
    size_bytes: int = 64
    inter_round_gap_s: float = 0.05

    def __post_init__(self) -> None:
        if self.rounds < 1 or self.exchanges_per_round < 1:
            raise ConfigurationError("rounds and exchanges must be positive")
        if self.size_bytes < 0 or self.inter_round_gap_s < 0:
            raise ConfigurationError("sizes and gaps must be non-negative")

    @property
    def total_messages(self) -> int:
        """Messages per full run for n processes ≈ rounds · n · exchanges."""
        return self.rounds * self.exchanges_per_round


def make_clockbench_app(config: ClockBenchConfig):
    """Build the varying-pairs short-message benchmark app."""

    def app(ctx):
        n = ctx.size
        with ctx.region("clockbench"):
            for round_index in range(config.rounds):
                partner = partner_of(ctx.rank, n, round_index)
                if partner is not None:
                    lower = ctx.rank < partner
                    with ctx.region("exchange"):
                        for _ in range(config.exchanges_per_round):
                            if lower:
                                yield ctx.comm.send(
                                    partner, config.size_bytes, tag=round_index
                                )
                                yield ctx.comm.recv(partner, tag=round_index)
                            else:
                                yield ctx.comm.recv(partner, tag=round_index)
                                yield ctx.comm.send(
                                    partner, config.size_bytes, tag=round_index
                                )
                yield ctx.sleep(config.inter_round_gap_s)
        yield ctx.comm.barrier()

    return app
