"""MetaTrace: the coupled multi-physics workload of the paper's Section 5.

MetaTrace "simulates solute transport in heterogeneous soil-aquifer systems"
and consists of two submodels: **Trace** computes the water-flow velocity
field with a parallel conjugate-gradient solver on a 3-D domain
decomposition with nearest-neighbor communication; **Partrace** tracks
individual particles through that field.  Periodically, Trace sends the
velocity field (200 MB, in parallel chunks) to Partrace, and Partrace sends
steering information back.

This package reproduces the *communication structure and relative compute
costs* of that application — which is what drives every wait state the
paper's Figures 6 and 7 report — not the numerics.
"""

from repro.apps.metatrace.config import MetaTraceConfig
from repro.apps.metatrace.coupled import make_metatrace_app

__all__ = ["MetaTraceConfig", "make_metatrace_app"]
