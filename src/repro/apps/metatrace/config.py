"""MetaTrace configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.apps.decomp import CartesianDecomposition
from repro.errors import ConfigurationError

Coord = Tuple[int, int, int]

#: Names of the sub-communicators the application needs.
TRACE_COMM = "trace"
PARTRACE_COMM = "partrace"
COUPLED_COMM = "coupled"


@dataclass(frozen=True)
class MetaTraceConfig:
    """Workload parameters of the coupled simulation.

    Parameters
    ----------
    trace_ranks / partrace_ranks:
        Global ranks of the two submodels.  Counts must match ("we assigned
        the same number of processors to Trace and Partrace"); the *i*-th
        trace rank couples with the *i*-th partrace rank.
    dims:
        3-D process grid of the Trace domain decomposition.
    trace_coords:
        Optional explicit trace-comm-rank → grid-coordinate mapping;
        defaults to x-major order.  Experiment 1 uses an interleaved
        mapping so metahost boundaries cut through the x dimension.
    coupling_intervals:
        Number of velocity-field transfers ("every 10–15 seconds" in the
        original; the interval length here follows from the work sizes).
    cg_iterations / cg_work_s:
        CG iterations per interval and reference compute per iteration.
    finelassdt_work_s:
        Reference compute of the MPI-free Trace function ``finelassdt``.
    partrace_work_s:
        Reference compute of particle tracking per interval.
    velocity_field_bytes:
        Total velocity-field volume per transfer (split across pairs);
        200 MB in the paper.
    halo_bytes / dot_bytes / steering_bytes:
        Halo-face, CG-dot-product, and steering message sizes.
    work_jitter:
        Relative uniform noise on compute phases (per-rank RNG).
    """

    trace_ranks: Tuple[int, ...]
    partrace_ranks: Tuple[int, ...]
    dims: Coord = (4, 2, 2)
    trace_coords: Optional[Tuple[Coord, ...]] = None
    coupling_intervals: int = 6
    cg_iterations: int = 25
    cg_work_s: float = 0.02
    finelassdt_work_s: float = 0.08
    partrace_work_s: float = 0.66
    velocity_field_bytes: int = 200 * 1024 * 1024
    halo_bytes: int = 16 * 1024
    dot_bytes: int = 16
    steering_bytes: int = 1024
    work_jitter: float = 0.01

    def __post_init__(self) -> None:
        if not self.trace_ranks or not self.partrace_ranks:
            raise ConfigurationError("both submodels need at least one rank")
        if len(self.trace_ranks) != len(self.partrace_ranks):
            raise ConfigurationError(
                "Trace and Partrace must use the same number of processes "
                f"({len(self.trace_ranks)} vs {len(self.partrace_ranks)})"
            )
        if set(self.trace_ranks) & set(self.partrace_ranks):
            raise ConfigurationError("a rank cannot belong to both submodels")
        nx, ny, nz = self.dims
        if nx * ny * nz != len(self.trace_ranks):
            raise ConfigurationError(
                f"grid {self.dims} does not cover {len(self.trace_ranks)} "
                "trace ranks"
            )
        if self.coupling_intervals < 1 or self.cg_iterations < 1:
            raise ConfigurationError("intervals and iterations must be positive")
        if min(
            self.cg_work_s,
            self.finelassdt_work_s,
            self.partrace_work_s,
            self.work_jitter,
        ) < 0:
            raise ConfigurationError("work amounts must be non-negative")
        if self.work_jitter >= 1.0:
            raise ConfigurationError("work jitter must stay below 100%")

    # -- derived structure --------------------------------------------------

    def decomposition(self) -> CartesianDecomposition:
        return CartesianDecomposition.build(self.dims, self.trace_coords)

    def partner_of_trace(self, trace_index: int) -> int:
        """Global partrace rank coupled with the given trace-comm index."""
        return self.partrace_ranks[trace_index]

    def partner_of_partrace(self, partrace_index: int) -> int:
        """Global trace rank coupled with the given partrace-comm index."""
        return self.trace_ranks[partrace_index]

    @property
    def velocity_chunk_bytes(self) -> int:
        """Per-pair share of the velocity field."""
        return self.velocity_field_bytes // len(self.trace_ranks)

    def subcomms(self) -> Dict[str, Sequence[int]]:
        """Sub-communicators to register with the runtime."""
        return {
            TRACE_COMM: list(self.trace_ranks),
            PARTRACE_COMM: list(self.partrace_ranks),
            COUPLED_COMM: sorted(set(self.trace_ranks) | set(self.partrace_ranks)),
        }


def interleaved_x_coords(dims: Coord, first_count: int) -> Tuple[Coord, ...]:
    """Coordinate mapping placing the first *first_count* ranks on even x planes.

    Used by Experiment 1 so that every FH-BRS process has a CAESAR
    x-neighbor: the first block (FH-BRS) occupies x ∈ {0, 2, ...}, the
    second block (CAESAR) x ∈ {1, 3, ...}.
    """
    nx, ny, nz = dims
    if nx % 2 != 0:
        raise ConfigurationError("interleaved mapping needs an even x extent")
    plane = ny * nz
    if first_count != (nx // 2) * plane:
        raise ConfigurationError(
            f"first block of {first_count} ranks does not fill half the grid"
        )
    coords = []
    for block, x_start in ((0, 0), (1, 1)):
        for half_x in range(nx // 2):
            x = x_start + 2 * half_x
            for y in range(ny):
                for z in range(nz):
                    coords.append((x, y, z))
    return tuple(coords)
