"""Partrace: the particle-tracking submodel.

Per coupling interval, a Partrace process

1. synchronizes with Trace and receives its velocity-field chunk
   (``ReadVelFieldFromTrace`` — the function carrying the paper's dominant
   Wait at Barrier severity in the three-metahost experiment);
2. tracks its particles through the field (``trackparticles``);
3. sends steering information back to its Trace partner
   (``sendsteering``).
"""

from __future__ import annotations

from repro.apps.metatrace.config import COUPLED_COMM, PARTRACE_COMM, MetaTraceConfig
from repro.apps.metatrace.velocity import TAG_STEERING, TAG_VELOCITY, _jittered
from repro.errors import ConfigurationError


def partrace_process(ctx, config: MetaTraceConfig):
    """Generator body of one Partrace process (global rank in partrace_ranks)."""
    partrace_comm = ctx.get_comm(PARTRACE_COMM)
    coupled_comm = ctx.get_comm(COUPLED_COMM)
    if partrace_comm is None or coupled_comm is None:
        raise ConfigurationError(
            f"rank {ctx.rank} runs Partrace but lacks its communicators"
        )
    my_index = partrace_comm.rank
    partner_global = config.partner_of_partrace(my_index)
    partner_coupled = coupled_comm.data.comm_rank(partner_global)

    with ctx.region("partrace_main"):
        for _interval in range(config.coupling_intervals):
            # -- coupling: synchronize and receive the velocity field ------
            with ctx.region("ReadVelFieldFromTrace"):
                yield coupled_comm.barrier()
                yield coupled_comm.recv(partner_coupled, tag=TAG_VELOCITY)

            # -- particle tracking ---------------------------------------------
            with ctx.region("trackparticles"):
                yield ctx.compute(
                    _jittered(ctx, config.partrace_work_s, config.work_jitter)
                )

            # -- steering back to Trace ----------------------------------------
            with ctx.region("sendsteering"):
                yield coupled_comm.send(
                    partner_coupled, config.steering_bytes, tag=TAG_STEERING
                )
