"""The coupled MetaTrace driver.

"The entire simulation is provided as a single executable that integrates
the two submodels" — likewise here: one app function dispatches each rank
into its submodel based on the configuration.  Ranks outside both
submodels (if any) return immediately.
"""

from __future__ import annotations

from repro.apps.metatrace.config import MetaTraceConfig
from repro.apps.metatrace.partrace import partrace_process
from repro.apps.metatrace.velocity import trace_process


def make_metatrace_app(config: MetaTraceConfig):
    """Build the coupled application.

    The runtime must be given ``config.subcomms()`` so the ``trace``,
    ``partrace`` and ``coupled`` communicators exist.
    """
    decomp = config.decomposition()
    trace_set = set(config.trace_ranks)
    partrace_set = set(config.partrace_ranks)

    def app(ctx):
        if ctx.rank in trace_set:
            yield from trace_process(ctx, config, decomp)
        elif ctx.rank in partrace_set:
            yield from partrace_process(ctx, config)
        # Ranks outside the coupled simulation have nothing to do; they
        # must not join the coupled barrier.

    return app
