"""Trace: the flow submodel (velocity-field computation).

Per coupling interval, a Trace process

1. synchronizes with Partrace and ships its velocity-field chunk
   (``printtolink`` — "Trace waits at the barrier in function
   printtolink() ... before Trace unidirectionally sends the velocity
   field to Partrace");
2. runs MPI-free assembly work (``finelassdt`` — the function the paper
   uses to demonstrate the 2× CPU-speed gap between FH-BRS and CAESAR);
3. iterates the conjugate-gradient solver (``cgiteration``): per-iteration
   compute, nearest-neighbor halo exchange (isend-all-then-receive,
   deadlock-free), and two dot-product allreduces on the Trace
   communicator;
4. receives steering information back from its Partrace partner
   (``getsteering``).

The algorithm "assigns the same portion of work to every process", so all
imbalance comes from CPU-speed differences and jitter.
"""

from __future__ import annotations

from repro.apps.decomp import CartesianDecomposition
from repro.apps.metatrace.config import COUPLED_COMM, TRACE_COMM, MetaTraceConfig
from repro.errors import ConfigurationError

#: Message tags.
TAG_HALO_BASE = 10  # + dimension index
TAG_VELOCITY = 20
TAG_STEERING = 21


def _jittered(ctx, work: float, jitter: float) -> float:
    if jitter <= 0.0 or work <= 0.0:
        return work
    return work * float(ctx.rng.uniform(1.0 - jitter, 1.0 + jitter))


def trace_process(ctx, config: MetaTraceConfig, decomp: CartesianDecomposition):
    """Generator body of one Trace process (global rank in trace_ranks)."""
    trace_comm = ctx.get_comm(TRACE_COMM)
    coupled_comm = ctx.get_comm(COUPLED_COMM)
    if trace_comm is None or coupled_comm is None:
        raise ConfigurationError(
            f"rank {ctx.rank} runs Trace but lacks the trace/coupled communicators"
        )
    my_index = trace_comm.rank
    partner_global = config.partner_of_trace(my_index)
    partner_coupled = coupled_comm.data.comm_rank(partner_global)
    neighbors = decomp.neighbors(my_index)

    with ctx.region("trace_main"):
        for _interval in range(config.coupling_intervals):
            # -- coupling: synchronize and ship the velocity field --------
            with ctx.region("printtolink"):
                yield coupled_comm.barrier()
                yield coupled_comm.send(
                    partner_coupled, config.velocity_chunk_bytes, tag=TAG_VELOCITY
                )

            # -- MPI-free assembly ------------------------------------------
            with ctx.region("finelassdt"):
                yield ctx.compute(
                    _jittered(ctx, config.finelassdt_work_s, config.work_jitter)
                )

            # -- CG solve -----------------------------------------------------
            for _it in range(config.cg_iterations):
                with ctx.region("cgiteration"):
                    yield ctx.compute(
                        _jittered(ctx, config.cg_work_s, config.work_jitter)
                    )
                    # Halo exchange: post all sends up front, then receive
                    # from every neighbor; receives from slower neighbors
                    # exhibit the Late Sender pattern.
                    send_handles = []
                    for dim, _direction, nbr in neighbors:
                        handle = yield trace_comm.isend(
                            nbr, config.halo_bytes, tag=TAG_HALO_BASE + dim
                        )
                        send_handles.append(handle)
                    for dim, _direction, nbr in neighbors:
                        yield trace_comm.recv(nbr, tag=TAG_HALO_BASE + dim)
                    yield trace_comm.waitall(send_handles)
                    # Two dot products per CG iteration.
                    yield trace_comm.allreduce(config.dot_bytes)
                    yield trace_comm.allreduce(config.dot_bytes)

            # -- steering information from Partrace ------------------------
            with ctx.region("getsteering"):
                yield coupled_comm.recv(partner_coupled, tag=TAG_STEERING)
