"""Table 1: latencies of the internal and external networks in VIOLA.

Runs the ping-pong benchmark on the simulated testbed and reports mean and
standard deviation of the one-way latency for the same three rows as the
paper: FZJ–FH-BRS (external), FZJ internal, FH-BRS internal.

Expected shape: the external latency exceeds the internal latencies by two
orders of magnitude, and its standard deviation exceeds theirs as well —
"the standard deviation is an indicator for the precision of offset
measurements across these links".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.apps.pingpong import PingPongResults, make_pingpong_app
from repro.sim.mpi import World
from repro.topology.metacomputer import Placement
from repro.topology.presets import FH_BRS, FZJ_XD1, viola_testbed

#: The paper's Table 1 values (seconds), for shape comparison.
PAPER_TABLE1 = {
    "FZJ - FH-BRS (external network)": (9.88e-4, 3.86e-6),
    "FZJ (internal network)": (2.15e-5, 8.14e-7),
    "FH-BRS (internal network)": (4.44e-5, 3.60e-7),
}


@dataclass(frozen=True)
class Table1Row:
    label: str
    mean_s: float
    std_s: float
    paper_mean_s: float
    paper_std_s: float


def run_table1(seed: int = 0, repetitions: int = 400) -> List[Table1Row]:
    """Regenerate Table 1 on the simulated VIOLA testbed."""
    metacomputer = viola_testbed()
    placement = Placement.from_counts(
        metacomputer, [(FZJ_XD1, 2, 1), (FH_BRS, 2, 1)]
    )
    # Ranks: 0, 1 on two FZJ nodes; 2, 3 on two FH-BRS nodes.
    pairs = {
        "FZJ - FH-BRS (external network)": (0, 2),
        "FZJ (internal network)": (0, 1),
        "FH-BRS (internal network)": (2, 3),
    }
    results = PingPongResults()
    app = make_pingpong_app(results, list(pairs.values()), repetitions=repetitions)
    world = World(
        metacomputer, placement, rng=np.random.default_rng(seed)
    )
    world.launch(app, seed=seed)
    world.run()

    rows: List[Table1Row] = []
    for label, pair in pairs.items():
        paper_mean, paper_std = PAPER_TABLE1[label]
        rows.append(
            Table1Row(
                label=label,
                mean_s=results.mean_s(pair),
                std_s=results.std_s(pair),
                paper_mean_s=paper_mean,
                paper_std_s=paper_std,
            )
        )
    return rows


def table1_text(rows: List[Table1Row]) -> str:
    lines = [
        "Table 1: latencies of the internal and external networks in VIOLA",
        "",
        f"{'link':38s} {'mean [us]':>12s} {'std [us]':>10s} "
        f"{'paper mean':>12s} {'paper std':>10s}",
    ]
    for row in rows:
        lines.append(
            f"{row.label:38s} {row.mean_s * 1e6:12.2f} {row.std_s * 1e6:10.3f} "
            f"{row.paper_mean_s * 1e6:12.2f} {row.paper_std_s * 1e6:10.3f}"
        )
    return "\n".join(lines)


def check_table1_shape(rows: List[Table1Row]) -> Dict[str, bool]:
    """Shape assertions: external ≫ internal in both mean and jitter."""
    by_label = {row.label: row for row in rows}
    external = by_label["FZJ - FH-BRS (external network)"]
    fzj = by_label["FZJ (internal network)"]
    fhbrs = by_label["FH-BRS (internal network)"]
    return {
        # "two orders of magnitude" in the paper compares against the FZJ
        # internal latency (988/21.5 ≈ 46×); against the slower FH-BRS
        # network the paper's own ratio is ≈ 22×.
        "external_two_orders_above_internal": external.mean_s
        > 20 * max(fzj.mean_s, fhbrs.mean_s)
        and external.mean_s > 40 * fzj.mean_s,
        "external_std_largest": external.std_s > max(fzj.std_s, fhbrs.std_s),
        "fhbrs_slower_than_fzj_internally": fhbrs.mean_s > fzj.mean_s,
        "means_within_factor_two_of_paper": all(
            0.5 < row.mean_s / row.paper_mean_s < 2.0 for row in rows
        ),
    }
