"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments.configs import (
    experiment1,
    experiment2,
    EXPERIMENT1_BLOCKS,
    EXPERIMENT2_BLOCKS,
    table3_text,
)
from repro.experiments.table1 import Table1Row, run_table1, table1_text
from repro.experiments.table2 import Table2Row, run_table2, table2_text
from repro.experiments.figures import (
    run_figure1,
    run_figure3,
    run_figure4,
    run_metatrace_experiment,
    MetaTraceOutcome,
)

__all__ = [
    "experiment1",
    "experiment2",
    "EXPERIMENT1_BLOCKS",
    "EXPERIMENT2_BLOCKS",
    "table3_text",
    "Table1Row",
    "run_table1",
    "table1_text",
    "Table2Row",
    "run_table2",
    "table2_text",
    "run_figure1",
    "run_figure3",
    "run_figure4",
    "run_metatrace_experiment",
    "MetaTraceOutcome",
]
