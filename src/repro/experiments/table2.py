"""Table 2: clock-condition violations under the three synchronization schemes.

Runs the varying-pairs short-message benchmark on the three-metahost VIOLA
testbed with unsynchronized node clocks, then analyzes the *same* trace
archive once per synchronization scheme, counting the clock-condition
violations the parallel analyzer reports.

Paper values: single flat offset 7560, two flat offsets 2179, two
hierarchical offsets 0.  The shape targets are: the single flat offset
(no drift compensation) produces the most violations, interpolated flat
offsets still produce many (their intra-metahost relative offsets inherit
the external link's measurement error), and the hierarchical scheme
produces none.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.api import AnalysisRequest, AnalysisResult, analyze, verify_archives
from repro.apps.clockbench import ClockBenchConfig, make_clockbench_app
from repro.clocks.sync import SCHEMES
from repro.errors import ArchiveError
from repro.resilience import CheckpointJournal
from repro.sim.runtime import MetaMPIRuntime, RunResult
from repro.topology.metacomputer import Placement
from repro.topology.presets import CAESAR, FH_BRS, FZJ_XD1, viola_testbed

#: The paper's Table 2 (for reference in reports).
PAPER_TABLE2 = {
    "single-flat-offset": 7560,
    "two-flat-offsets": 2179,
    "two-hierarchical-offsets": 0,
}


@dataclass(frozen=True)
class Table2Row:
    scheme: str
    violations: int
    messages: int
    internal_violations: int
    external_violations: int
    paper_violations: int


def default_benchmark() -> ClockBenchConfig:
    """Benchmark sizing: ≈7k messages spread over ≈48 s of run time."""
    return ClockBenchConfig(
        rounds=320, exchanges_per_round=2, size_bytes=64, inter_round_gap_s=0.15
    )


def run_table2(
    seed: int = 7,
    config: Optional[ClockBenchConfig] = None,
    nodes_per_metahost: int = 4,
    clock_drift_scale: float = 3e-6,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    journal: Optional[CheckpointJournal] = None,
    verify_archive: bool = False,
    pool=None,
    deadline=None,
) -> Tuple[List[Table2Row], RunResult, Dict[str, AnalysisResult]]:
    """Regenerate Table 2.

    One traced run; three analyses of its archive, one per scheme — exactly
    how the paper's comparison works.

    With a ``journal``, each per-scheme analysis is a resumable cell: an
    interrupted sweep rerun with the same journal skips the schemes it
    already finished (their rows are rebuilt from the journal; ``analyses``
    then lacks those schemes).  ``verify_archive`` checksum-verifies the
    run's archives first and raises :class:`~repro.errors.ArchiveError` on
    damage.
    """
    config = config or default_benchmark()
    metacomputer = viola_testbed()
    placement = Placement.from_counts(
        metacomputer,
        [
            (FZJ_XD1, nodes_per_metahost, 1),
            (FH_BRS, nodes_per_metahost, 1),
            (CAESAR, nodes_per_metahost, 1),
        ],
    )
    runtime = MetaMPIRuntime(
        metacomputer,
        placement,
        seed=seed,
        clock_drift_scale=clock_drift_scale,
    )
    run = runtime.run(make_clockbench_app(config))
    if verify_archive:
        verification = verify_archives(run)
        if not verification.ok:
            raise ArchiveError(
                f"table2 archive verification failed:\n{verification.text()}"
            )

    rows: List[Table2Row] = []
    analyses: Dict[str, AnalysisResult] = {}
    for scheme in SCHEMES:
        cell = {
            "experiment": "table2",
            "scheme": scheme.name,
            "seed": seed,
            "nodes_per_metahost": nodes_per_metahost,
            "clock_drift_scale": clock_drift_scale,
            "config": asdict(config),
        }
        if journal is not None:
            cached = journal.get(cell)
            if cached is not None:
                rows.append(Table2Row(**cached))
                continue
        result = analyze(
            run,
            AnalysisRequest(jobs=jobs, timeout=timeout, max_retries=max_retries),
            scheme=scheme,
            pool=pool,
            deadline=deadline,
        )
        analyses[scheme.name] = result
        summary = result.violations.summary()
        row = Table2Row(
            scheme=scheme.name,
            violations=summary["violations"],
            messages=summary["messages"],
            internal_violations=summary["internal_violations"],
            external_violations=summary["external_violations"],
            paper_violations=PAPER_TABLE2[scheme.name],
        )
        rows.append(row)
        if journal is not None:
            journal.record(cell, asdict(row))
    return rows, run, analyses


def table2_text(rows: List[Table2Row]) -> str:
    lines = [
        "Table 2: number of clock condition violations recognized by the "
        "parallel analyzer",
        "",
        f"{'measurement':28s} {'violations':>11s} {'internal':>9s} "
        f"{'external':>9s} {'messages':>9s} {'paper':>7s}",
    ]
    for row in rows:
        lines.append(
            f"{row.scheme:28s} {row.violations:11d} {row.internal_violations:9d} "
            f"{row.external_violations:9d} {row.messages:9d} {row.paper_violations:7d}"
        )
    return "\n".join(lines)


def check_table2_shape(rows: List[Table2Row]) -> Dict[str, bool]:
    by_scheme = {row.scheme: row for row in rows}
    single = by_scheme["single-flat-offset"]
    flat = by_scheme["two-flat-offsets"]
    hierarchical = by_scheme["two-hierarchical-offsets"]
    return {
        "single_worst": single.violations > flat.violations,
        "flat_substantial": flat.violations > 50,
        "hierarchical_zero": hierarchical.violations == 0,
        "flat_violations_internal": flat.external_violations == 0,
    }
