"""Drivers for the paper's figures.

* Figure 1 — clocks with initial offset and different constant drifts.
* Figure 3 — flat vs hierarchical synchronization accuracy (intra-metahost
  pairwise offset errors under both schemes).
* Figure 4 — the Late Sender and Wait at N×N pattern semantics on
  micro-workloads.
* Figures 6/7 — the MetaTrace analyses (three-metahost heterogeneous vs
  one-metahost homogeneous).

Figures 2 and 5 are topology schematics; their content is the structure of
:func:`repro.topology.presets.viola_testbed` and is rendered by the
corresponding benchmark.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.patterns import (
    GRID_LATE_SENDER,
    GRID_WAIT_AT_BARRIER,
    GRID_WAIT_AT_NXN,
    LATE_SENDER,
    WAIT_AT_BARRIER,
    WAIT_AT_NXN,
)
# Analysis is consumed through the stable facade (safe: repro.api defers
# its own experiment imports until run_experiment() is called).
from repro.api import AnalysisRequest, AnalysisResult, analyze, verify_archives
from repro.apps.imbalance import make_imbalance_app, make_nxn_imbalance_app
from repro.apps.metatrace import make_metatrace_app
from repro.clocks.clock import LinearClock
from repro.clocks.sync import (
    FlatInterpolation,
    HierarchicalInterpolation,
    SyncScheme,
    true_master_time,
)
from repro.errors import ArchiveError, ExperimentError
from repro.experiments.configs import experiment1, experiment2
from repro.ids import NodeId
from repro.sim.runtime import MetaMPIRuntime, RunResult
from repro.topology.metacomputer import Placement
from repro.topology.presets import uniform_metacomputer


# -- Figure 1 -----------------------------------------------------------------


def run_figure1(
    duration_s: float = 100.0,
    samples: int = 11,
    clock_a: LinearClock = LinearClock(offset_s=2e-3, drift=4e-6),
    clock_b: LinearClock = LinearClock(offset_s=-1e-3, drift=-3e-6),
) -> List[Tuple[float, float, float, float]]:
    """Offset-vs-time series for two drifting clocks.

    Returns ``(true_time, local_a, local_b, offset_a_minus_b)`` rows; the
    offset changes linearly with time — the situation Figure 1 sketches and
    the reason a single offset measurement cannot synchronize a whole run.
    """
    rows = []
    for t in np.linspace(0.0, duration_s, samples):
        a = clock_a.local_time(float(t))
        b = clock_b.local_time(float(t))
        rows.append((float(t), a, b, a - b))
    return rows


# -- Figure 3 -----------------------------------------------------------------


@dataclass
class Figure3Outcome:
    """Intra-metahost pairwise synchronization errors per scheme."""

    pair_errors_us: Dict[str, List[float]]

    def max_abs_us(self, scheme: str) -> float:
        errors = self.pair_errors_us[scheme]
        return max(abs(e) for e in errors) if errors else 0.0


def run_figure3(run: RunResult, at_fraction: float = 0.5) -> Figure3Outcome:
    """Compare flat and hierarchical schemes against ground truth.

    For every pair of distinct nodes on the same (non-master) metahost,
    computes the error of the synchronized timestamp *difference* for two
    simultaneous events at mid-run — the quantity whose accuracy decides
    whether intra-metahost clock conditions hold.
    """
    if run.clocks is None:
        raise ExperimentError("run result carries no ground-truth clocks")
    master = run.placement.slot(0).node
    schemes: List[SyncScheme] = [FlatInterpolation(), HierarchicalInterpolation()]
    outcome = Figure3Outcome(pair_errors_us={s.name: [] for s in schemes})
    t = run.stats.finish_time * at_fraction

    nodes_by_machine: Dict[int, List[NodeId]] = {}
    for node in run.sync_data.records:
        nodes_by_machine.setdefault(node.machine, []).append(node)

    for scheme in schemes:
        synchronized = scheme.convert_all(run.sync_data)
        for machine, nodes in sorted(nodes_by_machine.items()):
            for i, node_a in enumerate(sorted(nodes)):
                for node_b in sorted(nodes)[i + 1 :]:
                    local_a = run.clocks.clock(node_a).local_time(t)
                    local_b = run.clocks.clock(node_b).local_time(t)
                    est = synchronized.to_master(node_a, local_a) - synchronized.to_master(
                        node_b, local_b
                    )
                    truth = true_master_time(
                        run.clocks, master, node_a, local_a
                    ) - true_master_time(run.clocks, master, node_b, local_b)
                    outcome.pair_errors_us[scheme.name].append((est - truth) * 1e6)
    return outcome


def _verify_or_raise(label: str, *runs: RunResult) -> None:
    """Strict archive verification for the figure drivers."""
    for run in runs:
        verification = verify_archives(run)
        if not verification.ok:
            raise ArchiveError(
                f"{label} archive verification failed:\n{verification.text()}"
            )


# -- Figure 4 -----------------------------------------------------------------


def run_figure4(
    seed: int = 3,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    verify_archive: bool = False,
    pool=None,
    deadline=None,
) -> Dict[str, AnalysisResult]:
    """Pattern-semantics micro-experiments.

    ``late_sender``: a two-phase ring where rank 1 computes much longer, so
    its successor waits in the receive.  ``wait_at_nxn``: unequal compute
    before an allreduce.  Both run on a two-metahost machine so the grid
    variants fire as well.
    """
    metacomputer = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
    placement = Placement.block(metacomputer, 4)

    work = {0: 0.01, 1: 0.05, 2: 0.01, 3: 0.01}
    runtime = MetaMPIRuntime(metacomputer, placement, seed=seed)
    ls_run = runtime.run(make_imbalance_app(work, iterations=4))

    runtime2 = MetaMPIRuntime(metacomputer, placement, seed=seed + 1)
    nxn_run = runtime2.run(make_nxn_imbalance_app(work, iterations=4))

    if verify_archive:
        _verify_or_raise("figure4", ls_run, nxn_run)

    request = AnalysisRequest(jobs=jobs, timeout=timeout, max_retries=max_retries)
    return {
        "late_sender": analyze(ls_run, request, pool=pool, deadline=deadline),
        "wait_at_nxn": analyze(nxn_run, request, pool=pool, deadline=deadline),
    }


# -- Figures 6 and 7 (MetaTrace) -------------------------------------------------


@dataclass
class MetaTraceOutcome:
    """Key quantities of one MetaTrace analysis (Figure 6 or 7)."""

    run: RunResult
    result: AnalysisResult
    label: str

    @property
    def grid_late_sender_pct(self) -> float:
        return self.result.pct(GRID_LATE_SENDER)

    @property
    def grid_wait_at_barrier_pct(self) -> float:
        return self.result.pct(GRID_WAIT_AT_BARRIER)

    @property
    def wait_at_barrier_pct(self) -> float:
        return self.result.pct(WAIT_AT_BARRIER)

    @property
    def late_sender_pct(self) -> float:
        return self.result.pct(LATE_SENDER)

    @property
    def grid_wait_at_nxn_pct(self) -> float:
        return self.result.pct(GRID_WAIT_AT_NXN)

    @property
    def wait_at_nxn_pct(self) -> float:
        return self.result.pct(WAIT_AT_NXN)

    def late_sender_in(self, region: str) -> float:
        """Late Sender seconds whose waiting call sits under *region*."""
        return self.result.metric_under_region(LATE_SENDER, region)

    def wait_at_barrier_in(self, region: str) -> float:
        return self.result.metric_under_region(WAIT_AT_BARRIER, region)

    def summary(self) -> Dict[str, float]:
        return {
            "total_time_s": self.result.total_time,
            "late_sender_pct": self.late_sender_pct,
            "grid_late_sender_pct": self.grid_late_sender_pct,
            "wait_at_barrier_pct": self.wait_at_barrier_pct,
            "grid_wait_at_barrier_pct": self.grid_wait_at_barrier_pct,
            "wait_at_nxn_pct": self.wait_at_nxn_pct,
            "grid_wait_at_nxn_pct": self.grid_wait_at_nxn_pct,
        }


def run_metatrace_experiment(
    which: Optional[int] = None,
    seed: int = 11,
    coupling_intervals: Optional[int] = None,
    *,
    figure: Optional[int] = None,
    request: Optional[AnalysisRequest] = None,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    verify_archive: bool = False,
    pool=None,
    deadline=None,
) -> MetaTraceOutcome:
    """Run and analyze MetaTrace Experiment 1 (Figure 6) or 2 (Figure 7).

    ``figure=`` is the canonical way to select the experiment (1 → the
    three-metahost analysis of Figure 6, 2 → the one-metahost analysis of
    Figure 7); the positional form ``run_metatrace_experiment(1)`` still
    works but emits a :class:`DeprecationWarning`.  ``request=`` describes
    the analysis (jobs, degraded, timeline, archive verification) as in
    :func:`repro.api.analyze`; the flat ``jobs``/``timeout``/
    ``max_retries``/``verify_archive`` keywords build an equivalent
    request when no request is given.
    """
    if figure is not None:
        if which is not None:
            raise ExperimentError(
                "pass either figure= or the deprecated positional experiment "
                "number, not both"
            )
        which = figure
    elif which is None:
        raise ExperimentError("run_metatrace_experiment requires figure=1 or figure=2")
    else:
        warnings.warn(
            "passing the experiment number positionally "
            "(run_metatrace_experiment(1)) is deprecated; use the figure= "
            "keyword (run_metatrace_experiment(figure=1))",
            DeprecationWarning,
            stacklevel=2,
        )
    if which == 1:
        metacomputer, placement, config = experiment1()
        label = "Experiment 1 (three metahosts)"
    elif which == 2:
        metacomputer, placement, config = experiment2()
        label = "Experiment 2 (one metahost)"
    else:
        raise ExperimentError(f"no experiment {which}; Table 3 defines 1 and 2")
    if coupling_intervals is not None:
        from dataclasses import replace

        config = replace(config, coupling_intervals=coupling_intervals)
    runtime = MetaMPIRuntime(
        metacomputer, placement, seed=seed, subcomms=config.subcomms()
    )
    run = runtime.run(make_metatrace_app(config))
    if request is None:
        request = AnalysisRequest(
            jobs=jobs,
            timeout=timeout,
            max_retries=max_retries,
            verify_archive=verify_archive,
        )
    if request.verify_archive:
        _verify_or_raise(f"figure{5 + which}", run)
    result = analyze(run, request, pool=pool, deadline=deadline)
    return MetaTraceOutcome(run=run, result=result, label=label)


def metatrace_report_text(outcome: MetaTraceOutcome) -> str:
    """The canonical rendered report of one MetaTrace analysis.

    ``repro.api.run_experiment("figure6"/"figure7")`` and the analysis
    service both emit exactly this text, so a served job's report can be
    compared byte-for-byte against a direct run.
    """
    from repro.report.render import render_analysis

    header = [
        outcome.label,
        f"grid late sender:     {outcome.grid_late_sender_pct:6.2f} % of time",
        f"grid wait at barrier: {outcome.grid_wait_at_barrier_pct:6.2f} % of time",
        f"grid late-sender by metahost pair (causer -> waiter): "
        f"{ {f'{c}->{w}': round(v, 2) for (c, w), v in outcome.result.grid_pair_breakdown(GRID_LATE_SENDER).items()} }",
        f"grid barrier-wait by metahost pair: "
        f"{ {f'{c}->{w}': round(v, 2) for (c, w), v in outcome.result.grid_pair_breakdown(GRID_WAIT_AT_BARRIER).items()} }",
        "",
    ]
    return "\n".join(header) + render_analysis(
        outcome.result, metric=LATE_SENDER, min_pct=0.5
    )
