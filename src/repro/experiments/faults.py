"""Fault-injection experiment: MetaTrace under escalating fault plans.

Runs the Figure 6 workload (Experiment 1, three metahosts) under a ladder
of fault plans — clean, lossy links, degraded links plus flaky storage,
and severe damage including lost trace data — and reports how far the
pipeline degrades at each step: retransmissions and archive retries spent
on recovery, synchronization measurements lost, ranks excluded from the
replay, and which wait-state patterns the degraded analysis still detects.

The clean plan doubles as a regression check: an empty
:class:`~repro.faults.FaultPlan` must reproduce the fault-free run byte
for byte, so its report shows zero fault activity and a non-degraded
analysis.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.analysis.patterns import (
    GRID_LATE_SENDER,
    GRID_WAIT_AT_BARRIER,
    GRID_WAIT_AT_NXN,
    LATE_SENDER,
    WAIT_AT_BARRIER,
    WAIT_AT_NXN,
)
from repro.api import AnalysisRequest, analyze, verify_archives
from repro.apps.metatrace import make_metatrace_app
from repro.errors import (
    ArchiveCreationAborted,
    CommunicationTimeoutError,
    PartialTraceWarning,
)
from repro.experiments.configs import experiment1
from repro.faults import (
    FaultCounters,
    FaultPlan,
    FileSystemFault,
    LinkDegradation,
    LinkOutage,
    MessageLoss,
    PingFault,
    TraceCorruption,
    TraceTruncation,
)
from repro.resilience import CheckpointJournal
from repro.sim.runtime import MetaMPIRuntime

#: Wait-state metrics the degradation report checks for survival.
WAIT_METRICS = (
    LATE_SENDER,
    GRID_LATE_SENDER,
    WAIT_AT_BARRIER,
    GRID_WAIT_AT_BARRIER,
    WAIT_AT_NXN,
    GRID_WAIT_AT_NXN,
)


def escalating_fault_plans(seed: int = 0, world_size: int = 32) -> List[FaultPlan]:
    """The experiment's fault ladder, mildest first.

    ``world_size`` scales the rank-targeted specs (trace truncation and
    corruption hit ranks in the upper half, where Experiment 1 places the
    Trace submodel across the metahost boundary).
    """
    hi = world_size - 1
    mid = world_size // 2
    return [
        FaultPlan(name="clean", seed=seed),
        FaultPlan(
            name="lossy-links",
            seed=seed,
            specs=(
                MessageLoss("external", probability=0.05),
                PingFault("external", drop_prob=0.1),
            ),
        ),
        FaultPlan(
            name="degraded-links+flaky-fs",
            seed=seed,
            specs=(
                MessageLoss("external", probability=0.05),
                LinkDegradation(
                    "external", 0.005, 0.02, latency_factor=4.0, loss_prob=0.2
                ),
                PingFault("external", drop_prob=0.2, asymmetry_s=5e-4),
                FileSystemFault("*", fail_count=2),
                TraceTruncation(rank=hi, keep_fraction=0.6),
            ),
        ),
        FaultPlan(
            name="severe",
            seed=seed,
            specs=(
                MessageLoss("external", probability=0.08),
                LinkDegradation(
                    "external", 0.002, 0.03, latency_factor=6.0, loss_prob=0.15
                ),
                PingFault("external", drop_prob=0.3, asymmetry_s=1e-3),
                FileSystemFault("*", fail_count=2),
                TraceTruncation(rank=hi, keep_fraction=0.4),
                TraceTruncation(rank=mid + 2, keep_fraction=0.7),
                TraceCorruption(rank=mid + 4, at_fraction=0.5, length=8),
            ),
        ),
        # An outage far beyond the retry budget (~3 ms of backoff): the
        # sender must surface CommunicationTimeoutError, and the report
        # shows the abort path instead of a degraded analysis.
        FaultPlan(
            name="link-death",
            seed=seed,
            specs=(LinkOutage("external", 0.01, 0.1),),
        ),
    ]


@dataclass
class FaultRunReport:
    """Outcome of one workload execution under one fault plan."""

    plan: FaultPlan
    completed: bool  # run + archive management finished (degraded or not)
    error: str = ""  # terminal exception when the pipeline aborted
    counters: Optional[FaultCounters] = None
    archive_retries: int = 0
    sync_failures: int = 0
    partial_warnings: int = 0
    analyzed_ranks: int = 0
    excluded_ranks: int = 0
    degraded: bool = False
    #: Wait-state metric → percent of total time (only metrics > 0).
    patterns: Dict[str, float] = field(default_factory=dict)
    #: Archive checksum verdict (None = not checked; False = damage found —
    #: expected whenever the plan injects trace damage).
    integrity_ok: Optional[bool] = None

    @property
    def recovered(self) -> bool:
        """Faults were injected and the pipeline still produced an analysis."""
        return self.completed and self.counters is not None

    _PAYLOAD_FIELDS = (
        "completed",
        "error",
        "archive_retries",
        "sync_failures",
        "partial_warnings",
        "analyzed_ranks",
        "excluded_ranks",
        "degraded",
        "patterns",
        "integrity_ok",
    )

    def to_payload(self) -> Dict:
        """JSON-serializable journal payload (the plan is the cell's key)."""
        payload = {name: getattr(self, name) for name in self._PAYLOAD_FIELDS}
        payload["counters"] = (
            None if self.counters is None else self.counters.as_dict()
        )
        return payload

    @classmethod
    def from_payload(cls, plan: FaultPlan, payload: Dict) -> "FaultRunReport":
        counters = payload.get("counters")
        return cls(
            plan=plan,
            counters=None if counters is None else FaultCounters(**counters),
            **{name: payload[name] for name in cls._PAYLOAD_FIELDS},
        )


@dataclass
class DegradationReport:
    """All per-plan reports of one escalating-fault experiment."""

    seed: int
    runs: List[FaultRunReport] = field(default_factory=list)

    def text(self) -> str:
        lines = [f"Fault-injection ladder on Experiment 1 (seed {self.seed})", ""]
        for report in self.runs:
            plan = report.plan
            lines.append(f"plan '{plan.name or '(unnamed)'}' — {len(plan.specs)} fault spec(s)")
            if not report.completed:
                lines.append(f"  ABORTED: {report.error}")
                if report.counters is not None:
                    c = report.counters
                    lines.append(
                        f"  before abort: {c.messages_dropped} drops, "
                        f"{c.retransmits} retransmits, {c.timeouts} timeout(s)"
                    )
                lines.append("")
                continue
            if report.counters is None:
                lines.append("  clean run (no injector active)")
            else:
                c = report.counters
                lines.append(
                    f"  transport: {c.messages_dropped} drops recovered by "
                    f"{c.retransmits} retransmits"
                )
                lines.append(
                    f"  measurement: {c.pings_dropped} pings dropped, "
                    f"{c.pings_reissued} reissued; {report.sync_failures} "
                    "measurement(s) abandoned"
                )
                lines.append(
                    f"  storage: {c.fs_failures_injected} create failure(s) "
                    f"absorbed by {report.archive_retries} retries"
                )
                lines.append(
                    f"  traces: {c.traces_truncated} truncated, "
                    f"{c.traces_corrupted} corrupted"
                )
            if report.integrity_ok is not None:
                verdict = "OK" if report.integrity_ok else "damage localized"
                lines.append(f"  archive checksums: {verdict}")
            mode = "degraded" if report.degraded else "strict"
            lines.append(
                f"  analysis ({mode}): {report.analyzed_ranks} ranks analyzed, "
                f"{report.excluded_ranks} excluded, "
                f"{report.partial_warnings} partial-trace warning(s)"
            )
            if report.patterns:
                lines.append("  wait-state patterns detected:")
                for metric, pct in sorted(report.patterns.items()):
                    lines.append(f"    {metric:22s} {pct:6.2f} % of time")
            else:
                lines.append("  wait-state patterns detected: none")
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"


def _analyze(
    run,
    degraded: bool,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    pool=None,
    deadline=None,
) -> tuple:
    """Run the (possibly degraded) replay, counting partial-trace warnings."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", PartialTraceWarning)
        result = analyze(
            run,
            AnalysisRequest(
                degraded=degraded,
                jobs=jobs,
                timeout=timeout,
                max_retries=max_retries,
            ),
            pool=pool,
            deadline=deadline,
        )
    partial = sum(
        1 for w in caught if issubclass(w.category, PartialTraceWarning)
    )
    return result, partial


def run_fault_experiment(
    seed: int = 11,
    plans: Optional[List[FaultPlan]] = None,
    coupling_intervals: Optional[int] = None,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    journal: Optional[CheckpointJournal] = None,
    verify_archive: bool = False,
    pool=None,
    deadline=None,
) -> DegradationReport:
    """Execute the MetaTrace workload once per fault plan.

    ``coupling_intervals`` shrinks the workload for smoke tests (CI runs
    the matrix with 1 interval); None keeps the paper's configuration.

    With a ``journal``, every settled plan — including the deterministic
    aborts of the link-death rung — is a resumable cell; an interrupted
    ladder rerun with the same journal replays the finished rungs from
    their recorded payloads.  ``verify_archive`` runs a checksum pass over
    each completed run's archives and records the verdict in the report
    (plans that injected trace damage are *expected* to fail it — the
    ladder never raises on corruption).
    """
    report = DegradationReport(seed=seed)
    for plan in plans if plans is not None else escalating_fault_plans(seed):
        cell = {
            "experiment": "faults",
            "plan": plan.name,
            "seed": seed,
            "coupling_intervals": coupling_intervals,
            "specs": len(plan.specs),
            "verify_archive": bool(verify_archive),
        }
        if journal is not None:
            cached = journal.get(cell)
            if cached is not None:
                report.runs.append(FaultRunReport.from_payload(plan, cached))
                continue
        metacomputer, placement, config = experiment1()
        if coupling_intervals is not None:
            config = replace(config, coupling_intervals=coupling_intervals)
        runtime = MetaMPIRuntime(
            metacomputer,
            placement,
            seed=seed,
            subcomms=config.subcomms(),
            fault_plan=None if plan.is_empty else plan,
        )
        entry = FaultRunReport(plan=plan, completed=False)
        report.runs.append(entry)
        try:
            run = runtime.run(make_metatrace_app(config))
        except (CommunicationTimeoutError, ArchiveCreationAborted) as exc:
            entry.error = f"{type(exc).__name__}: {exc}"
            if runtime.fault_injector is not None:
                entry.counters = runtime.fault_injector.counters
            # A deterministic abort is a settled outcome: journal it so a
            # resumed ladder does not redo the doomed run.
            if journal is not None:
                journal.record(cell, entry.to_payload())
            continue
        entry.completed = True
        entry.counters = run.fault_counters
        entry.archive_retries = run.archive_outcome.retries
        entry.sync_failures = len(run.sync_data.failures)
        entry.degraded = not plan.is_empty
        if verify_archive:
            entry.integrity_ok = verify_archives(run).ok
        result, entry.partial_warnings = _analyze(
            run,
            degraded=entry.degraded,
            jobs=jobs,
            timeout=timeout,
            max_retries=max_retries,
            pool=pool,
            deadline=deadline,
        )
        entry.analyzed_ranks = len(result.analyzed_ranks)
        entry.excluded_ranks = len(result.excluded_ranks)
        entry.patterns = {
            metric: pct
            for metric in WAIT_METRICS
            if (pct := result.pct(metric)) > 0.0
        }
        if journal is not None:
            journal.record(cell, entry.to_payload())
    return report
