"""The paper's Table 3 experiment configurations.

Experiment 1 (three metahosts, heterogeneous): Partrace on the Cray XD1 at
FZJ (8 nodes × 2 processes), Trace split across FH-BRS (2 nodes × 4) and
CAESAR (4 nodes × 2).  Experiment 2 (one metahost, homogeneous): both
submodels on the IBM AIX POWER machine, 16 processes each.  Both use 32
processes total with the same number of processors for Trace and Partrace.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.apps.metatrace.config import MetaTraceConfig, interleaved_x_coords
from repro.topology.metacomputer import Metacomputer, Placement
from repro.topology.presets import (
    CAESAR,
    FH_BRS,
    FZJ_XD1,
    IBM_POWER,
    ibm_aix_power,
    viola_testbed,
)

#: Table 3, Experiment 1 — (metahost, nodes, processes/node) blocks, in rank order.
EXPERIMENT1_BLOCKS: Tuple[Tuple[str, int, int], ...] = (
    (FZJ_XD1, 8, 2),  # Partrace: ranks 0..15
    (FH_BRS, 2, 4),  # Trace:    ranks 16..23
    (CAESAR, 4, 2),  # Trace:    ranks 24..31
)

#: Table 3, Experiment 2 — both submodels on the IBM AIX POWER machine.
EXPERIMENT2_BLOCKS: Tuple[Tuple[str, int, int], ...] = (
    (IBM_POWER, 1, 16),  # Partrace: ranks 0..15
    (IBM_POWER, 1, 16),  # Trace:    ranks 16..31
)

PARTRACE_RANKS = tuple(range(16))
TRACE_RANKS = tuple(range(16, 32))


def _workload(trace_coords) -> MetaTraceConfig:
    return MetaTraceConfig(
        trace_ranks=TRACE_RANKS,
        partrace_ranks=PARTRACE_RANKS,
        dims=(4, 2, 2),
        trace_coords=trace_coords,
    )


def experiment1() -> Tuple[Metacomputer, Placement, MetaTraceConfig]:
    """Three-metahost heterogeneous configuration (Figure 6).

    The Trace decomposition uses the interleaved x-mapping, so every
    FH-BRS process has at least one CAESAR x-neighbor — the metahost
    boundary cuts through the nearest-neighbor communication, which is what
    turns the speed imbalance into *Grid* Late Sender waiting time.
    """
    metacomputer = viola_testbed()
    placement = Placement.from_counts(metacomputer, list(EXPERIMENT1_BLOCKS))
    coords = interleaved_x_coords((4, 2, 2), 8)
    return metacomputer, placement, _workload(coords)


def scaled_experiment1(
    factor: int = 1,
    coupling_intervals: Optional[int] = None,
) -> Tuple[Metacomputer, Placement, MetaTraceConfig]:
    """Experiment 1 scaled by an integer *factor* (32·factor ranks total).

    Every block of :data:`EXPERIMENT1_BLOCKS` gets *factor*× the nodes, the
    Trace grid grows along x (``dims = (4·factor, 2, 2)``) and keeps the
    interleaved FH-BRS/CAESAR x-mapping, so the metahost boundary still
    cuts through nearest-neighbor communication at every scale.  The VIOLA
    testbed's node counts are scaled up just enough to host the placement
    (FH-BRS has six physical nodes, so factors above 3 need a larger
    testbed); per-node characteristics are unchanged.

    ``factor=1`` is exactly :func:`experiment1`'s shape; ``factor=2``/``4``
    give the 64- and 128-rank configurations of the pipeline benchmark.
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    blocks = [(host, nodes * factor, procs) for host, nodes, procs in EXPERIMENT1_BLOCKS]
    fhbrs_nodes = dict((h, n) for h, n, _ in blocks)[FH_BRS]
    node_scale = -(-fhbrs_nodes // 6)  # ceil: smallest testbed fitting FH-BRS
    metacomputer = viola_testbed(node_scale=node_scale)
    placement = Placement.from_counts(metacomputer, blocks)
    nranks = sum(nodes * procs for _, nodes, procs in blocks)
    half = nranks // 2
    dims = (4 * factor, 2, 2)
    extra = {} if coupling_intervals is None else {
        "coupling_intervals": coupling_intervals
    }
    config = MetaTraceConfig(
        trace_ranks=tuple(range(half, nranks)),
        partrace_ranks=tuple(range(half)),
        dims=dims,
        trace_coords=interleaved_x_coords(dims, 8 * factor),
        **extra,
    )
    return metacomputer, placement, config


def experiment2() -> Tuple[Metacomputer, Placement, MetaTraceConfig]:
    """One-metahost homogeneous configuration (Figure 7)."""
    metacomputer = ibm_aix_power(node_count=2, cpus_per_node=16, speed=2.0)
    placement = Placement.from_counts(metacomputer, list(EXPERIMENT2_BLOCKS))
    return metacomputer, placement, _workload(None)


def table3_text() -> str:
    """Printable version of Table 3."""
    lines: List[str] = [
        "Table 3: detailed configurations of the experiments",
        "",
        "             Experiment 1                Experiment 2",
        "Partrace     FZJ-XD1: 8 nodes,           IBM-AIX-POWER: 1 node,",
        "             2 processes/node            16 processes/node",
        "Trace        FH-BRS: 2 nodes,            IBM-AIX-POWER: 1 node,",
        "             4 processes/node            16 processes/node",
        "             CAESAR: 4 nodes,",
        "             2 processes/node",
    ]
    return "\n".join(lines)
