"""Command-line interface: regenerate the paper's tables and figures.

A thin wrapper over :mod:`repro.api` — every command resolves to one
:func:`repro.api.run_experiment` call.

Usage::

    python -m repro table1              # VIOLA network latencies
    python -m repro table2              # clock-condition violations
    python -m repro table3              # experiment configurations
    python -m repro figure6             # 3-metahost MetaTrace analysis
    python -m repro figure7             # 1-metahost MetaTrace analysis
    python -m repro faults              # escalating fault-injection ladder
    python -m repro all                 # everything above
    python -m repro figure6 --seed 3    # different random seed
    python -m repro figure6 --jobs 4    # sharded parallel analysis

(``python -m repro.cli`` keeps working as an alias.)
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.api import DEFAULT_SEEDS, EXPERIMENTS, run_experiment


def _command(name: str) -> Callable[[int], str]:
    def run(seed: int, jobs: Optional[int] = None) -> str:
        return run_experiment(name, seed=seed, jobs=jobs)

    run.__name__ = f"_cmd_{name}"
    return run


#: Command name → runner(seed[, jobs]) — the CLI's registry, one entry per
#: facade experiment.
COMMANDS: Dict[str, Callable[[int], str]] = {
    name: _command(name) for name in EXPERIMENTS
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the IPPS 2007 "
        "metacomputing trace-analysis paper on the simulated testbed.",
    )
    parser.add_argument(
        "what",
        choices=sorted(COMMANDS) + ["all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="random seed (default: per-artifact)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="analysis worker processes (1=serial, 0=one per core; "
        "default: serial)",
    )
    args = parser.parse_args(argv)

    targets = sorted(COMMANDS) if args.what == "all" else [args.what]
    for name in targets:
        seed = args.seed if args.seed is not None else DEFAULT_SEEDS[name]
        print(f"==== {name} (seed {seed}) ====")
        print(COMMANDS[name](seed, args.jobs))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
