"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro.cli table1            # VIOLA network latencies
    python -m repro.cli table2            # clock-condition violations
    python -m repro.cli table3            # experiment configurations
    python -m repro.cli figure6           # 3-metahost MetaTrace analysis
    python -m repro.cli figure7           # 1-metahost MetaTrace analysis
    python -m repro.cli faults            # escalating fault-injection ladder
    python -m repro.cli all               # everything above
    python -m repro.cli figure6 --seed 3  # different random seed
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.analysis.patterns import GRID_LATE_SENDER, GRID_WAIT_AT_BARRIER, LATE_SENDER
from repro.experiments.configs import table3_text
from repro.experiments.figures import run_metatrace_experiment
from repro.experiments.table1 import run_table1, table1_text
from repro.experiments.table2 import run_table2, table2_text
from repro.report.render import render_analysis


def _cmd_table1(seed: int) -> str:
    return table1_text(run_table1(seed=seed))


def _cmd_table2(seed: int) -> str:
    rows, _run, _analyses = run_table2(seed=seed)
    return table2_text(rows)


def _cmd_table3(_seed: int) -> str:
    return table3_text()


def _metatrace(which: int, seed: int) -> str:
    outcome = run_metatrace_experiment(which, seed=seed)
    header = [
        outcome.label,
        f"grid late sender:     {outcome.grid_late_sender_pct:6.2f} % of time",
        f"grid wait at barrier: {outcome.grid_wait_at_barrier_pct:6.2f} % of time",
        f"grid late-sender by metahost pair (causer -> waiter): "
        f"{ {f'{c}->{w}': round(v, 2) for (c, w), v in outcome.result.grid_pair_breakdown(GRID_LATE_SENDER).items()} }",
        f"grid barrier-wait by metahost pair: "
        f"{ {f'{c}->{w}': round(v, 2) for (c, w), v in outcome.result.grid_pair_breakdown(GRID_WAIT_AT_BARRIER).items()} }",
        "",
    ]
    return "\n".join(header) + render_analysis(
        outcome.result, metric=LATE_SENDER, min_pct=0.5
    )


def _cmd_figure1(_seed: int) -> str:
    from repro.experiments.figures import run_figure1

    rows = run_figure1()
    lines = ["Figure 1: clocks with initial offset and different drifts", ""]
    for t, a, b, offset in rows:
        lines.append(f"t={t:7.1f}s  A={a:12.6f}  B={b:12.6f}  A-B={offset * 1e3:8.4f} ms")
    return "\n".join(lines)


def _cmd_figure3(seed: int) -> str:
    import numpy as np

    from repro.experiments.figures import run_figure3
    from repro.experiments.table2 import run_table2

    _rows, run, _analyses = run_table2(seed=seed)
    outcome = run_figure3(run)
    lines = ["Figure 3: intra-metahost pairwise synchronization error", ""]
    for scheme, errors in outcome.pair_errors_us.items():
        abs_err = [abs(e) for e in errors]
        lines.append(
            f"{scheme:28s} mean |err| {np.mean(abs_err):8.3f} us   "
            f"max {max(abs_err):8.3f} us"
        )
    return "\n".join(lines)


def _cmd_figure4(seed: int) -> str:
    from repro.experiments.figures import run_figure4
    from repro.analysis.patterns import WAIT_AT_NXN

    analyses = run_figure4(seed=seed)
    ls = analyses["late_sender"]
    nxn = analyses["wait_at_nxn"]
    return "\n".join(
        [
            "Figure 4: pattern semantics on micro-workloads",
            f"(a) Late Sender: {ls.pct(LATE_SENDER):.1f} % of time",
            f"(b) Wait at NxN: {nxn.pct(WAIT_AT_NXN):.1f} % of time",
        ]
    )


def _cmd_faults(seed: int) -> str:
    from repro.experiments.faults import run_fault_experiment

    return run_fault_experiment(seed=seed).text()


def _cmd_figure6(seed: int) -> str:
    return _metatrace(1, seed)


def _cmd_figure7(seed: int) -> str:
    return _metatrace(2, seed)


COMMANDS: Dict[str, Callable[[int], str]] = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "figure1": _cmd_figure1,
    "figure3": _cmd_figure3,
    "figure4": _cmd_figure4,
    "figure6": _cmd_figure6,
    "figure7": _cmd_figure7,
    "faults": _cmd_faults,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the IPPS 2007 "
        "metacomputing trace-analysis paper on the simulated testbed.",
    )
    parser.add_argument(
        "what",
        choices=sorted(COMMANDS) + ["all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="random seed (default: per-artifact)"
    )
    args = parser.parse_args(argv)

    defaults = {
        "table1": 0,
        "table2": 7,
        "table3": 0,
        "figure1": 0,
        "figure3": 7,
        "figure4": 3,
        "figure6": 11,
        "figure7": 11,
        "faults": 11,
    }
    targets = sorted(COMMANDS) if args.what == "all" else [args.what]
    for name in targets:
        seed = args.seed if args.seed is not None else defaults[name]
        print(f"==== {name} (seed {seed}) ====")
        print(COMMANDS[name](seed))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
