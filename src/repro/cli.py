"""Command-line interface: regenerate the paper's tables and figures.

A thin wrapper over :mod:`repro.api` — every command resolves to one
:func:`repro.api.run_experiment` call.

Usage::

    python -m repro table1              # VIOLA network latencies
    python -m repro table2              # clock-condition violations
    python -m repro table3              # experiment configurations
    python -m repro figure6             # 3-metahost MetaTrace analysis
    python -m repro figure7             # 1-metahost MetaTrace analysis
    python -m repro faults              # escalating fault-injection ladder
    python -m repro all                 # everything above
    python -m repro figure6 --seed 3    # different random seed
    python -m repro figure6 --jobs 4    # sharded parallel analysis
    python -m repro faults --resume     # journal cells, skip finished ones
    python -m repro table2 --verify-archive   # checksum archives first

(``python -m repro.cli`` keeps working as an alias.)
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.api import CheckpointJournal, DEFAULT_SEEDS, EXPERIMENTS, run_experiment

#: Default on-disk location of the ``--resume`` checkpoint journal.
DEFAULT_JOURNAL = ".repro-checkpoint.jsonl"


def _command(name: str) -> Callable[..., str]:
    def run(seed: int, jobs: Optional[int] = None, **options) -> str:
        return run_experiment(name, seed=seed, jobs=jobs, **options)

    run.__name__ = f"_cmd_{name}"
    return run


#: Command name → runner(seed[, jobs, **options]) — the CLI's registry, one
#: entry per facade experiment.
COMMANDS: Dict[str, Callable[..., str]] = {
    name: _command(name) for name in EXPERIMENTS
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the IPPS 2007 "
        "metacomputing trace-analysis paper on the simulated testbed.",
    )
    parser.add_argument(
        "what",
        choices=sorted(COMMANDS) + ["all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="random seed (default: per-artifact)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="analysis worker processes (1=serial, 0=one per core; "
        "default: serial)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard deadline for parallel analysis workers "
        "(default: 300)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="re-dispatches allowed after a worker crash/hang (default: 2)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="record completed experiment cells in a journal and skip them "
        "on rerun",
    )
    parser.add_argument(
        "--journal",
        default=DEFAULT_JOURNAL,
        metavar="PATH",
        help=f"checkpoint journal used by --resume (default: {DEFAULT_JOURNAL})",
    )
    parser.add_argument(
        "--verify-archive",
        action="store_true",
        help="checksum-verify trace archives before analysis",
    )
    args = parser.parse_args(argv)

    journal = CheckpointJournal(args.journal) if args.resume else None
    options = {
        "timeout": args.timeout,
        "max_retries": args.max_retries,
        "journal": journal,
        "verify_archive": args.verify_archive,
    }
    targets = sorted(COMMANDS) if args.what == "all" else [args.what]
    for name in targets:
        seed = args.seed if args.seed is not None else DEFAULT_SEEDS[name]
        print(f"==== {name} (seed {seed}) ====")
        print(COMMANDS[name](seed, args.jobs, **options))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
