"""Command-line interface: regenerate the paper's artifacts, or serve them.

A thin wrapper over :mod:`repro.api`.  The experiment commands each
resolve to one :func:`repro.api.run_experiment` call; the service
commands drive the crash-safe job layer of :mod:`repro.service`.

Usage::

    python -m repro table1              # VIOLA network latencies
    python -m repro table2              # clock-condition violations
    python -m repro table3              # experiment configurations
    python -m repro figure6             # 3-metahost MetaTrace analysis
    python -m repro figure7             # 1-metahost MetaTrace analysis
    python -m repro faults              # escalating fault-injection ladder
    python -m repro all                 # everything above
    python -m repro figure6 --seed 3    # different random seed
    python -m repro figure6 --jobs 4    # sharded parallel analysis
    python -m repro faults --resume     # journal cells, skip finished ones
    python -m repro table2 --verify-archive   # checksum archives first

    python -m repro analyze figure6 --timeline           # when is the severity?
    python -m repro analyze figure6 --timeline --metric grid-late-sender

    python -m repro serve --port 8137            # run the analysis service
    python -m repro submit figure6 --wait        # submit a job, poll, print
    python -m repro jobs                         # list the service's jobs
    python -m repro jobs --store .repro-jobs.jsonl   # ... offline, from disk
    python -m repro jobs --requeue KEY           # re-admit a quarantined job
    python -m repro jobs --cancel KEY            # cancel a queued/running job

    python -m repro chaos --seeds 0..4           # seeded chaos invariants

(``python -m repro.cli`` keeps working as an alias.)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api import (
    DEFAULT_SEEDS,
    EXPERIMENTS,
    AnalysisRequest,
    CheckpointJournal,
    run_experiment,
)
from repro.errors import CheckpointLockError, PoolShutdown, ReproError

#: Default on-disk location of the ``--resume`` checkpoint journal.
DEFAULT_JOURNAL = ".repro-checkpoint.jsonl"

#: Default service endpoint of the client commands.
DEFAULT_URL = "http://127.0.0.1:8137"


def _command(name: str) -> Callable[..., str]:
    def run(
        seed: int,
        request: Optional[AnalysisRequest] = None,
        journal: Optional[CheckpointJournal] = None,
    ) -> str:
        return run_experiment(name, request, seed=seed, journal=journal)

    run.__name__ = f"_cmd_{name}"
    return run


#: Command name → runner(seed[, request, journal]) — the CLI's registry, one
#: entry per facade experiment.
COMMANDS: Dict[str, Callable[..., str]] = {
    name: _command(name) for name in EXPERIMENTS
}


# -- parser ---------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the IPPS 2007 "
        "metacomputing trace-analysis paper on the simulated testbed — "
        "directly, or through the crash-safe analysis service.",
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="COMMAND")

    experiment_opts = argparse.ArgumentParser(add_help=False)
    experiment_opts.add_argument(
        "--seed", type=int, default=None, help="random seed (default: per-artifact)"
    )
    experiment_opts.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="analysis worker processes (1=serial, 0=one per core; "
        "default: serial)",
    )
    experiment_opts.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard deadline for parallel analysis workers (default: 300)",
    )
    experiment_opts.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="re-dispatches allowed after a worker crash/hang (default: 2)",
    )
    experiment_opts.add_argument(
        "--resume",
        action="store_true",
        help="record completed experiment cells in a journal and skip them "
        "on rerun",
    )
    experiment_opts.add_argument(
        "--journal",
        default=DEFAULT_JOURNAL,
        metavar="PATH",
        help=f"checkpoint journal used by --resume (default: {DEFAULT_JOURNAL})",
    )
    experiment_opts.add_argument(
        "--verify-archive",
        action="store_true",
        help="checksum-verify trace archives before analysis",
    )
    for name in sorted(COMMANDS) + ["all"]:
        help_text = (
            "regenerate every artifact" if name == "all" else f"regenerate {name}"
        )
        run_parser = sub.add_parser(name, parents=[experiment_opts], help=help_text)
        run_parser.set_defaults(command="run", what=name)

    analyze_parser = sub.add_parser(
        "analyze",
        help="analyze one MetaTrace experiment, optionally with a "
        "time-resolved severity timeline",
    )
    analyze_parser.add_argument(
        "experiment",
        choices=("figure6", "figure7"),
        help="MetaTrace experiment to simulate and analyze",
    )
    analyze_parser.add_argument(
        "--seed", type=int, default=None, help="random seed (default: per-artifact)"
    )
    analyze_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="analysis worker processes (1=serial, 0=one per core; "
        "default: serial)",
    )
    analyze_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard deadline for parallel analysis workers",
    )
    analyze_parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="re-dispatches allowed after a worker crash/hang",
    )
    analyze_parser.add_argument(
        "--verify-archive",
        action="store_true",
        help="checksum-verify trace archives before analysis",
    )
    analyze_parser.add_argument(
        "--timeline",
        action="store_true",
        help="append rolling-window severity series to the report",
    )
    analyze_parser.add_argument(
        "--window", type=float, default=1.0, metavar="SECONDS",
        help="rolling-window width of the severity timeline (default: 1.0)",
    )
    analyze_parser.add_argument(
        "--stride", type=float, default=0.25, metavar="SECONDS",
        help="bin stride of the severity timeline (default: 0.25)",
    )
    analyze_parser.add_argument(
        "--metric",
        default=None,
        help="restrict the timeline rendering to one metric",
    )
    analyze_parser.add_argument(
        "--bounded",
        action="store_true",
        help="bounded-memory streaming replay (identical severity; "
        "drops the per-rank Gantt data)",
    )
    analyze_parser.set_defaults(command="analyze")

    serve_parser = sub.add_parser(
        "serve", help="run the analysis service (HTTP job layer over the API)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8137, help="TCP port (0 = OS-assigned)"
    )
    serve_parser.add_argument(
        "--store",
        default=".repro-jobs.jsonl",
        metavar="PATH",
        help="durable job store journal (default: .repro-jobs.jsonl)",
    )
    serve_parser.add_argument(
        "--queue-limit", type=int, default=16, metavar="N",
        help="waiting jobs admitted before submissions get 429 (default: 16)",
    )
    serve_parser.add_argument(
        "--pool-workers", type=int, default=2, metavar="N",
        help="workers in the shared analysis pool (default: 2)",
    )
    serve_parser.add_argument(
        "--default-jobs", type=int, default=2, metavar="N",
        help="analysis shard count for jobs that do not specify one",
    )
    serve_parser.add_argument(
        "--drain-grace", type=float, default=30.0, metavar="SECONDS",
        help="graceful-shutdown budget for the in-flight job (default: 30)",
    )
    serve_parser.add_argument(
        "--job-deadline", type=float, default=None, metavar="SECONDS",
        help="default wall-clock budget per job; jobs over budget are "
        "cancelled with a partial record (default: unbounded)",
    )
    serve_parser.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive worker failures before the circuit breaker "
        "opens and submissions get 503 (default: 3)",
    )
    serve_parser.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS",
        help="open-breaker cooldown before a half-open probe (default: 30)",
    )
    serve_parser.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write host:port here once listening (for scripts/tests)",
    )

    submit_parser = sub.add_parser(
        "submit", help="submit a job to a running service"
    )
    submit_parser.add_argument(
        "experiment", help="experiment name (e.g. figure6, table2, imbalance)"
    )
    submit_parser.add_argument(
        "--kind",
        choices=("run_experiment", "analyze", "simulate"),
        default="run_experiment",
        help="job kind (default: run_experiment)",
    )
    submit_parser.add_argument("--url", default=DEFAULT_URL)
    submit_parser.add_argument("--seed", type=int, default=None)
    submit_parser.add_argument("--jobs", type=int, default=None)
    submit_parser.add_argument(
        "--config",
        default=None,
        metavar="JSON",
        help='job config object, e.g. \'{"timeout": 60}\'',
    )
    submit_parser.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job settles and print its result",
    )
    submit_parser.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="SECONDS"
    )

    jobs_parser = sub.add_parser(
        "jobs", help="list jobs (from a running service, or --store offline)"
    )
    jobs_parser.add_argument("--url", default=DEFAULT_URL)
    jobs_parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="read this job store journal directly instead of over HTTP",
    )
    jobs_parser.add_argument(
        "--requeue",
        default=None,
        metavar="KEY",
        help="re-admit a quarantined (failed) or cancelled job by key",
    )
    jobs_parser.add_argument(
        "--cancel",
        default=None,
        metavar="KEY",
        help="cancel a queued or running job by key (DELETE /jobs/<key>)",
    )

    chaos_parser = sub.add_parser(
        "chaos",
        help="run seeded chaos episodes and check their invariants",
    )
    chaos_parser.add_argument(
        "--seeds",
        default="0..4",
        metavar="SPEC",
        help="seed list/ranges, e.g. '0..4' or '0,2,7' (default: 0..4)",
    )
    chaos_parser.add_argument(
        "--jobs", type=int, default=4, metavar="N",
        help="analysis worker processes per episode (default: 4)",
    )
    chaos_parser.add_argument(
        "--grace", type=float, default=120.0, metavar="SECONDS",
        help="termination slack added to each episode's deadline "
        "(default: 120)",
    )
    chaos_parser.add_argument(
        "--workdir", default=None, metavar="PATH",
        help="directory for episode markers/journals (default: a temp dir)",
    )

    check_parser = sub.add_parser(
        "check",
        help="run the static invariant checks (determinism, atomicity, "
        "concurrency, API drift) over the repro sources",
    )
    check_parser.add_argument(
        "--root", default=None, metavar="PATH",
        help="source tree to scan (default: the installed repro package)",
    )
    check_parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="suppression baseline to apply (default: the shipped "
        "checks_baseline.json)",
    )
    check_parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    check_parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to accept every current finding "
        "(existing reasons are carried forward; new entries still fail "
        "until a reason is written)",
    )
    check_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    return parser


def _parse_seeds(spec: str) -> List[int]:
    """``"0..4"`` → [0,1,2,3,4]; ``"0,2,7"`` → [0,2,7]; mixes allowed."""
    seeds: List[int] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if ".." in chunk:
            low, _, high = chunk.partition("..")
            start, end = int(low), int(high)
            if end < start:
                raise ValueError(f"empty seed range {chunk!r}")
            seeds.extend(range(start, end + 1))
        else:
            seeds.append(int(chunk))
    if not seeds:
        raise ValueError(f"no seeds in {spec!r}")
    return seeds


# -- experiment commands ---------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    # ``--resume`` owns the journal for the whole sweep, so it takes the
    # writer lock up front and fails fast if another sweep holds it.
    journal = (
        CheckpointJournal(args.journal, exclusive=True) if args.resume else None
    )
    try:
        request = AnalysisRequest(
            jobs=args.jobs,
            timeout=args.timeout,
            max_retries=args.max_retries,
            verify_archive=args.verify_archive,
        )
        targets = sorted(COMMANDS) if args.what == "all" else [args.what]
        for name in targets:
            seed = args.seed if args.seed is not None else DEFAULT_SEEDS[name]
            print(f"==== {name} (seed {seed}) ====")
            print(COMMANDS[name](seed, request, journal=journal))
            print()
    finally:
        if journal is not None:
            journal.close()
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.metric and not args.timeline:
        print("error: --metric requires --timeline", file=sys.stderr)
        return 2
    from repro.experiments.figures import (
        metatrace_report_text,
        run_metatrace_experiment,
    )
    from repro.report.timeline import render_severity_timeline

    figures = {"figure6": 1, "figure7": 2}
    seed = args.seed if args.seed is not None else DEFAULT_SEEDS[args.experiment]
    request = AnalysisRequest(
        jobs=args.jobs,
        timeout=args.timeout,
        max_retries=args.max_retries,
        verify_archive=args.verify_archive,
        timeline=args.timeline,
        window_s=args.window,
        stride_s=args.stride,
        bounded=args.bounded,
    )
    outcome = run_metatrace_experiment(
        figure=figures[args.experiment], seed=seed, request=request
    )
    print(f"==== {args.experiment} (seed {seed}) ====")
    print(metatrace_report_text(outcome))
    if args.timeline:
        print()
        print(
            render_severity_timeline(
                outcome.result.severity_timeline, metric=args.metric
            )
        )
    return 0


# -- service commands ------------------------------------------------------------


def _http_json(
    method: str, url: str, body: Optional[Dict[str, Any]] = None, timeout: float = 60.0
) -> Tuple[int, Dict[str, Any]]:
    data = json.dumps(body).encode("utf-8") if body is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    request = urllib.request.Request(url, data=data, method=method, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except (ValueError, OSError):
            payload = {"error": str(exc)}
        return exc.code, payload


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        store_path=args.store,
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        pool_workers=args.pool_workers,
        default_jobs=args.default_jobs,
        drain_grace_s=args.drain_grace,
        job_deadline_s=args.job_deadline,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
    )
    return serve(config, ready_file=args.ready_file)


def _cmd_submit(args: argparse.Namespace) -> int:
    spec: Dict[str, Any] = {"kind": args.kind, "experiment": args.experiment}
    if args.seed is not None:
        spec["seed"] = args.seed
    if args.jobs is not None:
        spec["jobs"] = args.jobs
    if args.config:
        try:
            spec["config"] = json.loads(args.config)
        except ValueError as exc:
            print(f"error: --config is not valid JSON: {exc}", file=sys.stderr)
            return 2
    try:
        status, body = _http_json("POST", f"{args.url}/jobs", spec)
    except OSError as exc:
        print(f"error: cannot reach service at {args.url}: {exc}", file=sys.stderr)
        return 1
    if status not in (200, 202):
        print(f"error: submission rejected ({status}): {body.get('error')}",
              file=sys.stderr)
        return 1
    key = body["job"]["key"]
    print(f"{body['disposition']}: job {key} ({body['job']['status']})")
    if not args.wait:
        return 0
    while True:
        status, body = _http_json("GET", f"{args.url}/jobs/{key}")
        if status != 200:
            print(f"error: poll failed ({status}): {body.get('error')}",
                  file=sys.stderr)
            return 1
        job = body["job"]
        if job["status"] in ("done", "failed"):
            break
        time.sleep(args.poll_interval)
    if job["status"] == "failed":
        print(f"job failed: {job.get('error')}", file=sys.stderr)
        return 1
    result = job.get("result") or {}
    print(result.get("text") or json.dumps(result, sort_keys=True, indent=2))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import render_report, run_chaos

    try:
        seeds = _parse_seeds(args.seeds)
    except ValueError as exc:
        print(f"error: --seeds: {exc}", file=sys.stderr)
        return 2
    report = run_chaos(
        seeds, jobs=args.jobs, grace_s=args.grace, workdir=args.workdir
    )
    print(render_report(report))
    return 0 if report.ok else 1


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import DEFAULT_BASELINE_PATH, BaselineError, run_checks

    if args.no_baseline and (args.baseline or args.update_baseline):
        print(
            "error: --no-baseline conflicts with --baseline/--update-baseline",
            file=sys.stderr,
        )
        return 2
    if args.root is not None and not os.path.isdir(args.root):
        print(f"error: --root {args.root!r} is not a directory",
              file=sys.stderr)
        return 2
    baseline_path: Optional[str]
    if args.no_baseline:
        baseline_path = None
    else:
        baseline_path = args.baseline or DEFAULT_BASELINE_PATH
    try:
        report = run_checks(
            root=args.root,
            baseline_path=baseline_path,
            update_baseline=args.update_baseline,
        )
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"error: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.to_text())
    return 0 if report.ok else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    if args.requeue and args.cancel:
        print("error: --requeue and --cancel are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.requeue or args.cancel:
        if args.store:
            print("error: --requeue/--cancel need a running service (--url), "
                  "not --store", file=sys.stderr)
            return 2
        key = args.requeue or args.cancel
        method, url = (
            ("POST", f"{args.url}/jobs/{key}/requeue")
            if args.requeue
            else ("DELETE", f"{args.url}/jobs/{key}")
        )
        try:
            status, body = _http_json(method, url)
        except OSError as exc:
            print(f"error: cannot reach service at {args.url}: {exc}",
                  file=sys.stderr)
            return 1
        if status not in (200, 202):
            detail = body.get("error")
            if detail is None and "job" in body:
                detail = f"job is already {body['job'].get('status')}"
            print(f"error: request failed ({status}): {detail}", file=sys.stderr)
            return 1
        job = body["job"]
        verb = body.get("disposition", "requeued")
        print(f"{verb}: job {job['key']} ({job['status']})")
        return 0
    if args.store:
        # Offline listing reads the journal directly; a plain (lazy-lock)
        # journal never takes the writer lock for reads, so this works
        # while a service owns the store.
        from repro.service.store import JobRecord

        journal = CheckpointJournal(args.store)
        summaries = []
        for canon, payload in journal.cells().items():
            cell = json.loads(canon)
            if not (isinstance(cell, dict) and "job" in cell):
                continue
            try:
                summaries.append(JobRecord.from_payload(payload).summary())
            except (KeyError, TypeError, ValueError):
                continue
        summaries.sort(key=lambda s: s["seq"])
    else:
        try:
            status, body = _http_json("GET", f"{args.url}/jobs")
        except OSError as exc:
            print(f"error: cannot reach service at {args.url}: {exc}",
                  file=sys.stderr)
            return 1
        if status != 200:
            print(f"error: listing failed ({status}): {body.get('error')}",
                  file=sys.stderr)
            return 1
        summaries = body["jobs"]
    if not summaries:
        print("no jobs")
        return 0
    for job in summaries:
        line = (
            f"{job['key'][:12]}  {job['status']:8s} "
            f"{job['kind']}/{job['experiment']} seed={job['seed']} "
            f"attempts={job['attempts']}"
        )
        if job.get("phase"):
            line += f"  [{job['phase']}]"
        if job.get("error"):
            line += f"  error: {job['error']}"
        print(line)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "jobs":
            return _cmd_jobs(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "check":
            return _cmd_check(args)
    except BrokenPipeError:
        # The reader closed stdout early (`repro ... | head`).  Point the
        # fd at devnull so the interpreter's exit-time flush stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE, the conventional shell encoding
    except CheckpointLockError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except PoolShutdown as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
