"""The stable public API of :mod:`repro`.

Everything a user of this package needs lives behind four names:

* :func:`simulate` — run one traced experiment on a simulated metacomputer
  and return its :class:`~repro.sim.runtime.RunResult`;
* :func:`analyze` — replay a run's trace archive into an
  :class:`~repro.analysis.replay.AnalysisResult`, serially (``jobs=1``) or
  sharded across worker processes (``jobs>=2`` / ``jobs=0`` for one per
  core) with bit-identical output;
* :func:`run_experiment` — regenerate one of the paper's tables or figures
  by name and return its rendered text;
* the topology presets (:func:`~repro.topology.presets.viola_testbed` and
  friends) for building machines to simulate on;
* the analysis service (:func:`~repro.service.app.create_app`,
  :func:`~repro.service.http.serve`, :class:`~repro.service.store.JobStore`)
  — the same three verbs as crash-safe asynchronous HTTP jobs.

Analyses are described by one object: :class:`AnalysisRequest` carries
``degraded`` (salvage-and-continue replay), ``jobs`` (analysis process
count), the supervised-pool tunables, and the time-resolved severity
options (``timeline``/``window_s``/``stride_s``/``bounded``).  ``seed=``
selects the deterministic random seed and ``scheme=`` the
clock-synchronization scheme everywhere.  The pre-request keyword sprawl
(``degraded=``/``jobs=``/``timeout=``/``max_retries=``/``verify_archive=``)
survives one release as a ``DeprecationWarning`` shim.

This module's ``__all__`` is the compatibility contract: names listed here
are stable; anything imported from deeper modules may move between
releases.  ``repro.cli`` and the experiment drivers consume the package
exclusively through this facade.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.analysis.parallel import resolve_jobs
from repro.analysis.replay import _UNSET, AnalysisResult, analyze_run, resolve_request
from repro.analysis.request import AnalysisRequest
from repro.analysis.severity_timeline import SeverityTimeline
from repro.clocks.sync import SyncScheme
from repro.errors import ExperimentError, TimeBudgetExceeded
from repro.report.render import render_analysis
from repro.resilience import CheckpointJournal, Deadline, ExecutionReport
from repro.service import JobStore, ServiceConfig, create_app, serve
from repro.sim.process import AppGenerator
from repro.sim.runtime import MetaMPIRuntime, RunResult
from repro.topology.metacomputer import Metacomputer, Placement
from repro.topology.presets import (
    ibm_aix_power,
    single_cluster,
    uniform_metacomputer,
    viola_testbed,
)
from repro.trace.archive import RunVerification

__all__ = [
    "simulate",
    "analyze",
    "run_experiment",
    "run_checks",
    "verify_archives",
    "resolve_jobs",
    "AnalysisRequest",
    "AnalysisResult",
    "SeverityTimeline",
    "RunResult",
    "Metacomputer",
    "Placement",
    "CheckpointJournal",
    "Deadline",
    "ExecutionReport",
    "TimeBudgetExceeded",
    "create_app",
    "serve",
    "ServiceConfig",
    "JobStore",
    "render_analysis",
    "EXPERIMENTS",
    "DEFAULT_SEEDS",
    "viola_testbed",
    "single_cluster",
    "uniform_metacomputer",
    "ibm_aix_power",
]


# -- core verbs ---------------------------------------------------------------


def simulate(
    app: Callable[..., AppGenerator],
    metacomputer: Metacomputer,
    placement: Placement,
    *,
    seed: int = 0,
    **runtime_options,
) -> RunResult:
    """Run *app* traced on *metacomputer* under *placement*.

    Thin veneer over :class:`~repro.sim.runtime.MetaMPIRuntime`: any
    further keyword (``params=``, ``clocks=``, ``namespaces=``,
    ``subcomms=``, ``fault_plan=``, ...) is forwarded to its constructor.
    """
    runtime = MetaMPIRuntime(metacomputer, placement, seed=seed, **runtime_options)
    return runtime.run(app)


def analyze(
    run: RunResult,
    request: Optional[AnalysisRequest] = None,
    *,
    scheme: Optional[SyncScheme] = None,
    pool=None,
    deadline=None,
    degraded=_UNSET,
    jobs=_UNSET,
    timeout=_UNSET,
    max_retries=_UNSET,
) -> AnalysisResult:
    """Replay-analyze a traced run's archive.

    *request* (an :class:`AnalysisRequest`) describes the analysis:
    ``jobs=None``/``1`` runs the serial single-pass streaming analyzer,
    ``jobs>=2`` shards the replay across that many worker processes
    (``0`` = one per available core).  Every value of ``jobs`` produces a
    bit-identical :class:`AnalysisResult` — see
    :mod:`repro.analysis.parallel` for the merge model that guarantees it.
    ``request.timeline`` additionally accumulates a time-resolved
    :class:`SeverityTimeline` (``result.severity_timeline``), and
    ``request.bounded`` caps serial memory at the matching window.

    ``request.timeout`` (per-shard deadline, seconds) and
    ``request.max_retries`` (re-dispatches after a worker crash or hang)
    tune the supervised pool behind the parallel path; a parallel result
    carries the pool's :class:`ExecutionReport` in ``result.execution``.
    ``pool`` lends the run an externally owned warm :class:`SupervisedPool`
    (task function ``analyze_shard``) instead of spawning one — how the
    analysis service shares a single pool across every job it serves.

    ``request.deadline_s`` bounds the whole analysis end to end: on
    expiry the analyzer stops cooperatively and returns a *partial*
    result — severity accumulated so far, honest per-rank completeness,
    ``result.interrupted`` set — instead of hanging.  ``deadline`` lends
    an externally owned :class:`Deadline` instead (how the service makes
    a client ``DELETE`` reach the running analysis).

    The loose ``degraded=``/``jobs=``/``timeout=``/``max_retries=``
    keywords are deprecated; they warn and are folded into a request.
    """
    legacy = {
        name: value
        for name, value in (
            ("degraded", degraded),
            ("jobs", jobs),
            ("timeout", timeout),
            ("max_retries", max_retries),
        )
        if value is not _UNSET
    }
    request = resolve_request(request, legacy, "analyze")
    return analyze_run(
        run, scheme=scheme, request=request, pool=pool, deadline=deadline
    )


def verify_archives(run: RunResult) -> RunVerification:
    """Checksum-verify every partial archive of a traced run.

    Walks each metahost's archive through its own reader and checks all
    manifest-covered traces block by block, localizing any damage; see
    :class:`~repro.trace.archive.RunVerification`.  Never raises on
    corruption — the verdict is the return value.
    """
    verification = RunVerification()
    for machine in run.machines_used:
        verification.archives.append(run.reader(machine).verify())
    return verification


def run_checks(root: Optional[str] = None, **options):
    """Run the :mod:`repro.check` static-analysis pass over a source tree.

    Walks *root* (default: the installed ``repro`` package) through every
    rule family — determinism, atomicity, concurrency, API drift — applies
    the checked-in suppression baseline, and returns a
    :class:`~repro.check.findings.CheckReport`.  ``repro check`` is a thin
    CLI shell over this function; see its docstring for the options.

    Imported lazily so the facade does not pull the checker (and the
    ``ast`` machinery) into ordinary simulation runs.
    """
    from repro.check.engine import run_checks as _run_checks

    return _run_checks(root=root, **options)


# -- named experiments --------------------------------------------------------

#: Experiment name → default seed (the seeds the committed outputs use).
DEFAULT_SEEDS: Dict[str, int] = {
    "table1": 0,
    "table2": 7,
    "table3": 0,
    "figure1": 0,
    "figure3": 7,
    "figure4": 3,
    "figure6": 11,
    "figure7": 11,
    "faults": 11,
}

# The experiment runners import their drivers lazily: the drivers
# themselves import through this facade, and deferring the other
# direction keeps the cycle open at module-import time.
#
# Every runner takes ``(seed, jobs, **opts)``; the resilience options in
# ``opts`` (``timeout``, ``max_retries``, ``journal``, ``verify_archive``)
# are forwarded to the drivers that have an analysis phase and ignored by
# the purely computational ones.

_ANALYSIS_OPTS = ("timeout", "max_retries", "verify_archive", "pool", "deadline")


def _analysis_opts(opts: Dict, *extra: str) -> Dict:
    wanted = _ANALYSIS_OPTS + extra
    return {key: opts[key] for key in wanted if opts.get(key) is not None}


def _run_table1(seed: int, jobs: Optional[int], **opts) -> str:
    from repro.experiments.table1 import run_table1, table1_text

    return table1_text(run_table1(seed=seed))


def _run_table2(seed: int, jobs: Optional[int], **opts) -> str:
    from repro.experiments.table2 import run_table2, table2_text

    rows, _run, _analyses = run_table2(
        seed=seed, jobs=jobs, **_analysis_opts(opts, "journal")
    )
    return table2_text(rows)


def _run_table3(seed: int, jobs: Optional[int], **opts) -> str:
    from repro.experiments.configs import table3_text

    return table3_text()


def _run_figure1(seed: int, jobs: Optional[int], **opts) -> str:
    from repro.experiments.figures import run_figure1

    rows = run_figure1()
    lines = ["Figure 1: clocks with initial offset and different drifts", ""]
    for t, a, b, offset in rows:
        lines.append(
            f"t={t:7.1f}s  A={a:12.6f}  B={b:12.6f}  A-B={offset * 1e3:8.4f} ms"
        )
    return "\n".join(lines)


def _run_figure3(seed: int, jobs: Optional[int], **opts) -> str:
    import numpy as np

    from repro.experiments.figures import run_figure3
    from repro.experiments.table2 import run_table2

    # No journal here: figure3 needs the live RunResult, which a
    # journal-satisfied table2 cell would not recompute.
    _rows, run, _analyses = run_table2(seed=seed, jobs=jobs, **_analysis_opts(opts))
    outcome = run_figure3(run)
    lines = ["Figure 3: intra-metahost pairwise synchronization error", ""]
    for scheme, errors in outcome.pair_errors_us.items():
        abs_err = [abs(e) for e in errors]
        lines.append(
            f"{scheme:28s} mean |err| {np.mean(abs_err):8.3f} us   "
            f"max {max(abs_err):8.3f} us"
        )
    return "\n".join(lines)


def _run_figure4(seed: int, jobs: Optional[int], **opts) -> str:
    from repro.analysis.patterns import LATE_SENDER, WAIT_AT_NXN
    from repro.experiments.figures import run_figure4

    analyses = run_figure4(seed=seed, jobs=jobs, **_analysis_opts(opts))
    ls = analyses["late_sender"]
    nxn = analyses["wait_at_nxn"]
    return "\n".join(
        [
            "Figure 4: pattern semantics on micro-workloads",
            f"(a) Late Sender: {ls.pct(LATE_SENDER):.1f} % of time",
            f"(b) Wait at NxN: {nxn.pct(WAIT_AT_NXN):.1f} % of time",
        ]
    )


def _metatrace_text(figure: int, seed: int, jobs: Optional[int], **opts) -> str:
    from repro.experiments.figures import (
        metatrace_report_text,
        run_metatrace_experiment,
    )

    outcome = run_metatrace_experiment(
        figure=figure, seed=seed, jobs=jobs, **_analysis_opts(opts)
    )
    return metatrace_report_text(outcome)


def _run_figure6(seed: int, jobs: Optional[int], **opts) -> str:
    return _metatrace_text(1, seed, jobs, **opts)


def _run_figure7(seed: int, jobs: Optional[int], **opts) -> str:
    return _metatrace_text(2, seed, jobs, **opts)


def _run_faults(seed: int, jobs: Optional[int], **opts) -> str:
    from repro.experiments.faults import run_fault_experiment

    return run_fault_experiment(
        seed=seed, jobs=jobs, **_analysis_opts(opts, "journal")
    ).text()


#: Experiment name → runner(seed, jobs, **opts) producing the rendered text.
EXPERIMENTS: Dict[str, Callable[..., str]] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "figure1": _run_figure1,
    "figure3": _run_figure3,
    "figure4": _run_figure4,
    "figure6": _run_figure6,
    "figure7": _run_figure7,
    "faults": _run_faults,
}


def run_experiment(
    name: str,
    request: Optional[AnalysisRequest] = None,
    *,
    seed: Optional[int] = None,
    journal: Optional[CheckpointJournal] = None,
    pool=None,
    deadline=None,
    jobs=_UNSET,
    timeout=_UNSET,
    max_retries=_UNSET,
    verify_archive=_UNSET,
) -> str:
    """Regenerate one paper artifact by name; returns its rendered text.

    ``name`` is one of :data:`EXPERIMENTS` (``table1`` ... ``faults``).
    ``seed=None`` uses the artifact's committed default seed; *request*
    describes the analysis phases as in :func:`analyze` — ``request.jobs``
    selects the analysis process count, ``request.timeout``/
    ``request.max_retries`` tune its supervised pool, and
    ``request.verify_archive`` checksum-verifies trace archives before
    analysis.

    ``journal`` makes the run resumable: each completed (experiment, seed)
    cell — and, inside ``table2`` and ``faults``, each completed
    per-scheme/per-plan sub-cell — is persisted, and a rerun with the same
    journal skips straight to the cached result.  On archive damage the
    strict experiments raise :class:`~repro.errors.ArchiveError`, the
    fault ladder records the verdict in its report instead.

    ``pool`` lends every analysis phase of the experiment an externally
    owned warm :class:`SupervisedPool`, as in :func:`analyze`.

    The loose ``jobs=``/``timeout=``/``max_retries=``/``verify_archive=``
    keywords are deprecated; they warn and are folded into a request.
    """
    runner = EXPERIMENTS.get(name)
    if runner is None:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(f"unknown experiment {name!r}; choose from: {known}")
    legacy = {
        name_: value
        for name_, value in (
            ("jobs", jobs),
            ("timeout", timeout),
            ("max_retries", max_retries),
            ("verify_archive", verify_archive),
        )
        if value is not _UNSET
    }
    request = resolve_request(request, legacy, "run_experiment")
    if seed is None:
        seed = DEFAULT_SEEDS[name]
    if deadline is None and request.deadline_s is not None:
        # One budget for the whole experiment: simulation, verification,
        # and every analysis phase draw down the same clock.
        deadline = Deadline(request.deadline_s)
    cell = {"experiment": name, "seed": seed}
    if journal is not None:
        cached = journal.get(cell)
        if cached is not None:
            return cached["text"]
    text = runner(
        seed,
        request.jobs,
        timeout=request.timeout,
        max_retries=request.max_retries,
        journal=journal,
        verify_archive=request.verify_archive,
        pool=pool,
        deadline=deadline,
    )
    if journal is not None:
        journal.record(cell, {"text": text})
    return text
