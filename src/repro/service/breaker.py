"""Circuit breaker guarding the analysis pool against overload collapse.

The service keeps accepting jobs while its worker pool crash-loops, which
turns one poisoned input or an exhausted machine into an unbounded queue
of doomed work.  The breaker watches *infrastructure* outcomes — jobs
quarantined after repeated worker crashes or hangs, and jobs that blew
their time budget — and trips open after ``threshold`` consecutive
failures.  While open, new submissions are rejected with ``503`` and a
``Retry-After`` equal to the remaining cooldown.  After the cooldown one
probe job is admitted (half-open); its success closes the breaker, its
failure re-opens it for another full cooldown.

Application-level errors (bad specs, analysis errors raised by healthy
workers) and client-requested cancellations say nothing about service
health, so they neither trip nor reset the breaker.

The breaker is deliberately clock-injected (``clock`` defaults to
``time.monotonic``) so tests and the chaos harness can drive state
transitions deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a single half-open probe slot."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be positive, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._last_failure: Optional[str] = None
        self._probe_inflight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> Optional[float]:
        """Gate one admission.

        Returns ``None`` when the submission may proceed, or the number of
        seconds the caller should wait before retrying.  Calling this when
        the cooldown has elapsed consumes the half-open probe slot: exactly
        one job is admitted until the probe's outcome is recorded.
        """
        with self._lock:
            if self._state == CLOSED:
                return None
            if self._state == OPEN:
                elapsed = self._clock() - (self._opened_at or 0.0)
                remaining = self.cooldown_s - elapsed
                if remaining > 0:
                    return remaining
                self._state = HALF_OPEN
                self._probe_inflight = False
            # Half-open: admit exactly one probe; everyone else waits a
            # short beat for the probe's verdict.
            if self._probe_inflight:
                return min(self.cooldown_s, 1.0)
            self._probe_inflight = True
            return None

    def record_success(self) -> None:
        """A job completed on healthy infrastructure: reset to closed."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._opened_at = None
            self._last_failure = None
            self._probe_inflight = False

    def record_failure(self, reason: str) -> None:
        """An infrastructure failure: count it, trip when at threshold."""
        with self._lock:
            self._last_failure = reason
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, full cooldown.
                self._state = OPEN
                self._opened_at = self._clock()
                self._probe_inflight = False
                return
            self._failures += 1
            if self._failures >= self.threshold and self._state == CLOSED:
                self._state = OPEN
                self._opened_at = self._clock()

    def release_probe(self) -> None:
        """The probe ended without an infrastructure verdict.

        Used when the half-open probe job is cancelled by a client: the
        slot frees up so the next submission becomes the new probe,
        instead of the breaker waiting forever on a verdict that will
        never arrive.
        """
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_inflight = False

    def snapshot(self) -> Dict[str, object]:
        """State for ``healthz`` / ``stats`` — JSON-serialisable."""
        with self._lock:
            snap: Dict[str, object] = {
                "state": self._state,
                "consecutive_failures": self._failures,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
            }
            if self._last_failure is not None:
                snap["last_failure"] = self._last_failure
            if self._state == OPEN and self._opened_at is not None:
                elapsed = self._clock() - self._opened_at
                snap["retry_after_s"] = max(0.0, self.cooldown_s - elapsed)
            return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self._failures}/{self.threshold})"
        )
