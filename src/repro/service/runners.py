"""Execution of canonical job specs against the :mod:`repro.api` facade.

One entry point, :func:`execute_job`, shared by the live service and by
tests that want to compute a job's expected result without a server.
Determinism contract: for a fixed canonical spec, the ``result`` mapping
is byte-stable across runs and across restarts — it contains only
simulated-time quantities (rendered report text, severity cells, counts),
never wall-clock measurements.  Nondeterministic execution telemetry
(the supervised pool's :class:`~repro.resilience.pool.ExecutionReport`)
is returned *separately* so the job record can carry it without
polluting the cacheable result.

All :mod:`repro.api` imports are deferred into the functions: the
service package is itself re-exported through the facade, and deferring
keeps that cycle open at import time.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.errors import JobValidationError

__all__ = ["execute_job"]

Progress = Callable[[str], None]

#: ``analyze`` experiment name → MetaTrace figure number.
_FIGURES = {"figure6": 1, "figure7": 2}


def execute_job(
    spec: Mapping[str, Any],
    *,
    pool=None,
    progress: Optional[Progress] = None,
    deadline=None,
) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
    """Run one canonical job spec; return ``(result, execution)``.

    ``pool`` is the service's long-lived warm
    :class:`~repro.resilience.pool.SupervisedPool` (task function
    ``analyze_shard``), lent to every analysis phase.  ``progress`` is
    called with human-readable phase strings as the job advances.
    ``deadline`` is an optional :class:`~repro.resilience.Deadline`
    bounding the whole job; when it expires (or a client cancels it) the
    job raises :class:`~repro.errors.TimeBudgetExceeded` rather than
    returning — a partial result must never enter the content-addressed
    cache, where it would shadow the complete answer forever.
    """
    notify = progress or (lambda phase: None)
    if deadline is None:
        budget = spec.get("config", {}).get("deadline_s")
        if budget:
            from repro.resilience import Deadline

            deadline = Deadline(budget)
    kind = spec.get("kind")
    if kind == "run_experiment":
        return _run_experiment_job(spec, pool, notify, deadline)
    if kind == "analyze":
        return _analyze_job(spec, pool, notify, deadline)
    if kind == "simulate":
        return _simulate_job(spec, notify, deadline)
    raise JobValidationError(f"unknown job kind {kind!r}")


def _check_budget(deadline) -> None:
    """Refuse to cache a result whose budget ran out along the way."""
    if deadline is not None:
        deadline.check()


def _run_experiment_job(
    spec: Mapping[str, Any], pool, notify: Progress, deadline
) -> Tuple[Dict[str, Any], None]:
    """Regenerate a paper artifact; the result is its rendered text."""
    from repro.api import AnalysisRequest, run_experiment

    config = spec.get("config", {})
    notify(f"running experiment {spec['experiment']}")
    text = run_experiment(
        spec["experiment"],
        AnalysisRequest(
            jobs=spec["jobs"] or None,
            timeout=config.get("timeout"),
            max_retries=config.get("max_retries"),
            verify_archive=bool(config.get("verify_archive", False)),
            deadline_s=config.get("deadline_s"),
        ),
        seed=spec["seed"],
        pool=pool,
        deadline=deadline,
    )
    # The experiment renderers flatten the AnalysisResult to text, so an
    # interrupted analysis is invisible here; the budget check is the
    # cache guard for this kind.
    _check_budget(deadline)
    return {"kind": "run_experiment", "experiment": spec["experiment"], "text": text}, None


def _analyze_job(
    spec: Mapping[str, Any], pool, notify: Progress, deadline
) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
    """MetaTrace pipeline end to end: simulate, replay, render, cube.

    The ``text`` field is produced by the same renderer
    (:func:`~repro.experiments.figures.metatrace_report_text`) that
    ``run_experiment("figure6"/"figure7")`` uses, so a served report can
    be compared byte-for-byte against a direct library call.
    """
    from repro.api import AnalysisRequest
    from repro.experiments.figures import (
        metatrace_report_text,
        run_metatrace_experiment,
    )
    from repro.report.serialize import result_to_dict

    config = spec.get("config", {})
    experiment = spec["experiment"]
    notify(f"simulating and replaying {experiment}")
    request = AnalysisRequest(
        jobs=spec["jobs"] or None,
        timeout=config.get("timeout"),
        max_retries=config.get("max_retries"),
        verify_archive=bool(config.get("verify_archive", False)),
        timeline=bool(config.get("timeline", False)),
        window_s=float(config.get("window_s", 1.0)),
        stride_s=float(config.get("stride_s", 0.25)),
        bounded=bool(config.get("bounded", False)),
        deadline_s=config.get("deadline_s"),
    )
    outcome = run_metatrace_experiment(
        figure=_FIGURES[experiment],
        seed=spec["seed"],
        coupling_intervals=config.get("coupling_intervals"),
        request=request,
        pool=pool,
        deadline=deadline,
    )
    if outcome.result.interrupted is not None:
        from repro.errors import TimeBudgetExceeded

        raise TimeBudgetExceeded(outcome.result.interrupted)
    _check_budget(deadline)
    notify("rendering report")
    result = {
        "kind": "analyze",
        "experiment": experiment,
        "text": metatrace_report_text(outcome),
        "summary": outcome.summary(),
        "severity": result_to_dict(outcome.result, name=experiment),
    }
    if outcome.result.severity_timeline is not None:
        result["timeline"] = outcome.result.severity_timeline.to_payload()
    execution = (
        outcome.result.execution.to_dict()
        if outcome.result.execution is not None
        else None
    )
    return result, execution


def _simulate_job(
    spec: Mapping[str, Any], notify: Progress, deadline
) -> Tuple[Dict[str, Any], None]:
    """Run a synthetic imbalance workload; report archive integrity."""
    import math

    from repro.api import Placement, simulate, uniform_metacomputer, verify_archives
    from repro.apps.imbalance import make_imbalance_app

    config = spec.get("config", {})
    ranks = int(config.get("ranks", 4))
    metahosts = int(config.get("metahosts", 2))
    iterations = int(config.get("iterations", 4))
    node_count = max(1, math.ceil(ranks / metahosts))
    metacomputer = uniform_metacomputer(
        metahost_count=metahosts, node_count=node_count, cpus_per_node=1
    )
    placement = Placement.block(metacomputer, ranks)
    # Deterministic per-rank compute imbalance: three work classes.
    work = {rank: 0.005 * (1 + rank % 3) for rank in range(ranks)}
    notify(f"simulating imbalance workload ({ranks} ranks, {metahosts} metahosts)")
    run = simulate(
        make_imbalance_app(work, iterations=iterations),
        metacomputer,
        placement,
        seed=spec["seed"],
    )
    notify("verifying archives")
    verification = verify_archives(run)
    _check_budget(deadline)
    result = {
        "kind": "simulate",
        "experiment": spec["experiment"],
        "world_size": run.placement.size,
        "machines": [metacomputer.metahosts[m].name for m in run.machines_used],
        "integrity_ok": verification.ok,
    }
    return result, None
