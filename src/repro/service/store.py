"""Durable, idempotent job store for the analysis service.

Two properties carry the service's crash-safety story, and both live
here:

* **Durability** — every state transition of a job (accepted, running,
  done, failed) is persisted through a
  :class:`~repro.resilience.checkpoint.CheckpointJournal` *before* the
  transition is acknowledged to anyone.  The journal's atomic
  rewrite-and-replace discipline means a SIGKILL at any instant leaves a
  loadable store; on restart, every job that was accepted is still there
  and every job that was mid-run is found in ``running`` state and
  re-queued.
* **Idempotency** — a job's identity is :func:`job_key`, the SHA-256 of
  its *canonicalized* specification.  Two submissions that mean the same
  work (same kind, experiment, seed, jobs, config — regardless of key
  order or defaulted fields) collapse onto one record, so resubmitting a
  finished job is a cache hit and resubmitting a queued one is a no-op.

The store itself is deliberately passive: no threads, no locks beyond
the journal's inter-process writer lock (``exclusive=True`` — a second
service on the same store fails fast with
:class:`~repro.errors.CheckpointLockError`).  Serialization of concurrent
access within one process is the :class:`~repro.service.app.AnalysisService`'s
job.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.analysis.request import AnalysisRequest
from repro.errors import JobValidationError
from repro.resilience.checkpoint import CheckpointJournal

__all__ = [
    "ACCEPTED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "JOB_KINDS",
    "canonical_spec",
    "job_key",
    "JobRecord",
    "JobStore",
]

#: Job lifecycle states.  ``accepted`` and ``running`` are recoverable
#: (re-queued on restart); ``done``, ``failed`` and ``cancelled`` are
#: terminal.  A cancelled job (client ``DELETE`` or deadline expiry) is
#: deliberately *not* recoverable — the whole point of cancelling is that
#: a restart must not resurrect the work — but it may be re-admitted by a
#: fresh submission or ``requeue``.
ACCEPTED = "accepted"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL = (DONE, FAILED, CANCELLED)
RECOVERABLE = (ACCEPTED, RUNNING)

JOB_KINDS = ("simulate", "analyze", "run_experiment")

#: Experiments each kind accepts.  ``analyze`` jobs run the MetaTrace
#: pipeline end to end (simulate + replay) and expose the severity cube;
#: ``simulate`` jobs run a workload and report archive integrity only.
_ANALYZE_EXPERIMENTS = ("figure6", "figure7")
_SIMULATE_EXPERIMENTS = ("imbalance",)

#: Per-kind whitelist of ``config`` keys: (name, validator, description).
_CONFIG_SCHEMA: Dict[str, Dict[str, Any]] = {
    "run_experiment": {
        "timeout": ("positive number", lambda v: _is_number(v) and v > 0),
        "max_retries": ("non-negative integer", lambda v: _is_int(v) and v >= 0),
        "verify_archive": ("boolean", lambda v: isinstance(v, bool)),
        "deadline_s": ("positive number", lambda v: _is_number(v) and v > 0),
    },
    "analyze": {
        "timeout": ("positive number", lambda v: _is_number(v) and v > 0),
        "max_retries": ("non-negative integer", lambda v: _is_int(v) and v >= 0),
        "verify_archive": ("boolean", lambda v: isinstance(v, bool)),
        "deadline_s": ("positive number", lambda v: _is_number(v) and v > 0),
        "coupling_intervals": ("positive integer", lambda v: _is_int(v) and v >= 1),
        "timeline": ("boolean", lambda v: isinstance(v, bool)),
        "window_s": ("positive number", lambda v: _is_number(v) and v > 0),
        "stride_s": ("positive number", lambda v: _is_number(v) and v > 0),
        "bounded": ("boolean", lambda v: isinstance(v, bool)),
    },
    "simulate": {
        "ranks": ("integer >= 2", lambda v: _is_int(v) and v >= 2),
        "metahosts": ("positive integer", lambda v: _is_int(v) and v >= 1),
        "iterations": ("positive integer", lambda v: _is_int(v) and v >= 1),
        "deadline_s": ("positive number", lambda v: _is_number(v) and v > 0),
    },
}


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value: Any) -> bool:
    return _is_int(value) or isinstance(value, float)


def canonical_spec(raw: Mapping[str, Any], *, default_jobs: int = 1) -> Dict[str, Any]:
    """Validate a submission and reduce it to its canonical form.

    The canonical spec is the *meaning* of the job with every default
    made explicit: ``{"kind", "experiment", "seed", "jobs", "config"}``.
    Submissions that differ only in key order, omitted defaults, or
    JSON-irrelevant formatting canonicalize identically — the foundation
    of :func:`job_key` dedup.  ``config`` may also be an
    :class:`~repro.analysis.request.AnalysisRequest`: it reduces to its
    defaults-omitted dict form (jobs lifting into the spec's top-level
    field), so a request submission dedupes against the equivalent plain
    JSON one.

    Raises :class:`~repro.errors.JobValidationError` on anything
    malformed, with a message precise enough to fix the submission.
    """
    if not isinstance(raw, Mapping):
        raise JobValidationError("job specification must be a JSON object")
    allowed = {"kind", "experiment", "seed", "jobs", "config"}
    unknown = sorted(set(raw) - allowed)
    if unknown:
        raise JobValidationError(
            f"unknown job field(s) {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )

    kind = raw.get("kind", "run_experiment")
    if kind not in JOB_KINDS:
        raise JobValidationError(
            f"unknown job kind {kind!r}; choose from: {', '.join(JOB_KINDS)}"
        )

    experiment = raw.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        raise JobValidationError("job needs an 'experiment' name (string)")
    if kind == "run_experiment":
        from repro.api import EXPERIMENTS  # deferred: api imports this package

        if experiment not in EXPERIMENTS:
            raise JobValidationError(
                f"unknown experiment {experiment!r}; "
                f"choose from: {', '.join(sorted(EXPERIMENTS))}"
            )
    elif kind == "analyze":
        if experiment not in _ANALYZE_EXPERIMENTS:
            raise JobValidationError(
                f"analyze jobs support {', '.join(_ANALYZE_EXPERIMENTS)}; "
                f"got {experiment!r}"
            )
    else:  # simulate
        if experiment not in _SIMULATE_EXPERIMENTS:
            raise JobValidationError(
                f"simulate jobs support {', '.join(_SIMULATE_EXPERIMENTS)}; "
                f"got {experiment!r}"
            )

    seed = raw.get("seed")
    if seed is None:
        from repro.api import DEFAULT_SEEDS

        seed = DEFAULT_SEEDS.get(experiment, 0)
    if not _is_int(seed):
        raise JobValidationError(f"seed must be an integer, got {seed!r}")

    config = raw.get("config") or {}
    request_jobs = None
    if isinstance(config, AnalysisRequest):
        # An AnalysisRequest canonicalizes through its defaults-omitted
        # dict form, so a request of all defaults hashes exactly like the
        # empty config pre-request submissions produced.  Its ``jobs``
        # belongs to the spec's top-level field, not the config.
        config = config.to_config()
        request_jobs = config.pop("jobs", None)
    if not isinstance(config, Mapping):
        raise JobValidationError("config must be a JSON object")

    jobs = raw.get("jobs")
    if jobs is not None and request_jobs is not None and jobs != request_jobs:
        raise JobValidationError(
            f"job field jobs={jobs!r} conflicts with the analysis request's "
            f"jobs={request_jobs!r}; set one of them"
        )
    if jobs is None:
        jobs = request_jobs
    if jobs is None:
        jobs = default_jobs
    if not _is_int(jobs) or jobs < 0:
        raise JobValidationError(
            f"jobs must be a non-negative integer (0 = one per core), got {jobs!r}"
        )
    schema = _CONFIG_SCHEMA[kind]
    clean: Dict[str, Any] = {}
    for key in sorted(config):
        if key not in schema:
            raise JobValidationError(
                f"config key {key!r} is not valid for {kind} jobs; "
                f"allowed: {', '.join(sorted(schema)) or '(none)'}"
            )
        expected, check = schema[key]
        value = config[key]
        if not check(value):
            raise JobValidationError(f"config {key!r} must be a {expected}, got {value!r}")
        clean[key] = value

    return {
        "kind": kind,
        "experiment": experiment,
        "seed": seed,
        "jobs": jobs,
        "config": clean,
    }


def job_key(spec: Mapping[str, Any]) -> str:
    """Content-addressed identity of a canonical spec (SHA-256 hex)."""
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class JobRecord:
    """One job's full lifecycle, exactly as journaled.

    ``phase`` is the human-readable progress string shown by the polling
    endpoint; it is in-memory detail between journal writes (only the
    phase at each durable transition survives a crash, which is all a
    restarted service needs).
    """

    key: str
    seq: int
    spec: Dict[str, Any]
    status: str = ACCEPTED
    attempts: int = 0
    phase: str = ""
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    execution: Optional[Dict[str, Any]] = field(default=None)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "seq": self.seq,
            "spec": self.spec,
            "status": self.status,
            "attempts": self.attempts,
            "phase": self.phase,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result,
            "error": self.error,
            "execution": self.execution,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "JobRecord":
        return cls(
            key=str(payload["key"]),
            seq=int(payload["seq"]),
            spec=dict(payload["spec"]),
            status=str(payload["status"]),
            attempts=int(payload.get("attempts", 0)),
            phase=str(payload.get("phase", "")),
            submitted_at=float(payload.get("submitted_at", 0.0)),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            result=payload.get("result"),
            error=payload.get("error"),
            execution=payload.get("execution"),
        )

    def summary(self) -> Dict[str, Any]:
        """Compact listing entry (everything but the result payloads)."""
        return {
            "key": self.key,
            "seq": self.seq,
            "kind": self.spec.get("kind"),
            "experiment": self.spec.get("experiment"),
            "seed": self.spec.get("seed"),
            "status": self.status,
            "attempts": self.attempts,
            "phase": self.phase,
            "error": self.error,
        }


class JobStore:
    """Journal-backed map of job key → :class:`JobRecord`.

    Opening the store takes the journal's writer lock immediately
    (``exclusive=True``): one store, one writer process, enforced at the
    file-system level.  Loading tolerates a torn journal tail exactly as
    the journal itself does — the at-most-one transition an interrupted
    :meth:`save` can lose is re-derived by the recovery scan.
    """

    def __init__(self, path: str) -> None:
        self._journal = CheckpointJournal(path, exclusive=True)
        self._records: Dict[str, JobRecord] = {}
        for canon, payload in self._journal.cells().items():
            try:
                cell = json.loads(canon)
            except ValueError:  # pragma: no cover - journal guarantees JSON keys
                continue
            if not (isinstance(cell, dict) and "job" in cell):
                continue  # foreign cell (shared path misuse); leave it alone
            try:
                record = JobRecord.from_payload(payload)
            except (KeyError, TypeError, ValueError):
                continue  # damaged payload degrades to "job unknown"
            self._records[record.key] = record

    @property
    def path(self) -> str:
        return self._journal.path

    # -- queries ---------------------------------------------------------------

    def get(self, key: str) -> Optional[JobRecord]:
        return self._records.get(key)

    def records(self) -> List[JobRecord]:
        """Every job, in submission order."""
        return sorted(self._records.values(), key=lambda r: r.seq)

    def pending(self) -> List[JobRecord]:
        """Jobs a restarted service must finish, in submission order."""
        return [r for r in self.records() if r.status in RECOVERABLE]

    def next_seq(self) -> int:
        return 1 + max((r.seq for r in self._records.values()), default=0)

    def __len__(self) -> int:
        return len(self._records)

    # -- persistence -----------------------------------------------------------

    def save(self, record: JobRecord) -> None:
        """Persist a job's current state durably (fsync'd) before returning."""
        self._records[record.key] = record
        self._journal.record({"job": record.key}, record.to_payload())

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
