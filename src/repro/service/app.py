"""The analysis service: lifecycle, admission control, execution.

:class:`AnalysisService` owns exactly three long-lived things:

* one :class:`~repro.service.store.JobStore` (durable state — the only
  thing that must survive a crash),
* one warm persistent :class:`~repro.resilience.pool.SupervisedPool`
  of ``analyze_shard`` workers, lent to every analysis job instead of
  spawning a pool per request,
* one executor thread draining the in-memory run queue in submission
  order.

Crash-safety protocol (the order matters):

1. :meth:`submit` journals the accepted record *before* acknowledging —
   an acknowledged job is durable by construction.
2. The executor journals the ``running`` transition before computing,
   so a SIGKILL mid-compute is distinguishable from never-started.
3. On :meth:`startup`, every journaled job still in a recoverable state
   is re-queued (in original submission order) and runs to completion;
   since each job is deterministic in its canonical spec, the recovered
   result is byte-identical to the one the uninterrupted service would
   have produced.
4. A graceful shutdown (SIGTERM → :meth:`shutdown`) stops admission,
   lets the in-flight job finish within ``drain_grace_s``, cancels it
   through the pool past that, and leaves everything unfinished
   journaled as ``accepted`` for the next start.

Admission control is a bounded queue: past ``queue_limit`` waiting jobs,
:meth:`submit` raises :class:`~repro.errors.JobRejected` (HTTP 429)
rather than buffering unbounded work it may never get to.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import JobRejected, PoolShutdown, ServiceError
from repro.service.runners import execute_job
from repro.service.store import (
    ACCEPTED,
    DONE,
    FAILED,
    RUNNING,
    JobRecord,
    JobStore,
    canonical_spec,
    job_key,
)

__all__ = ["ServiceConfig", "AnalysisService", "create_app"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance."""

    #: Journal file backing the job store (the single source of truth).
    store_path: str = ".repro-jobs.jsonl"
    host: str = "127.0.0.1"
    #: TCP port; 0 lets the OS pick (the bound port is printed/exposed).
    port: int = 8137
    #: Maximum jobs waiting behind the running one before 429s start.
    queue_limit: int = 16
    #: Workers in the shared analysis pool.
    pool_workers: int = 2
    #: Default ``jobs`` for submissions that do not specify one.
    default_jobs: int = 2
    #: Per-shard deadline / crash-retry budget for analysis, pool-wide
    #: defaults (a job's config may override per run).
    timeout_s: Optional[float] = None
    max_retries: Optional[int] = None
    #: How long a graceful shutdown waits for the in-flight job.
    drain_grace_s: float = 30.0
    #: Journaled attempts after which a job is declared crash-looping.
    max_job_attempts: int = 3


class AnalysisService:
    """Crash-safe async job execution over :mod:`repro.api`.

    Use as a context manager, or pair :meth:`startup` / :meth:`shutdown`
    explicitly.  All public methods are thread-safe (the HTTP front end
    calls them from handler threads).
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self._lock = threading.RLock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: Deque[str] = deque()
        self._accepting = False
        self._stopping = False
        self._running_key: Optional[str] = None
        self._executed = 0  # jobs actually computed by this process
        self.store: Optional[JobStore] = None
        self.pool = None
        self._executor: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------

    def startup(self) -> "AnalysisService":
        """Open the store, recover journaled work, start pool + executor."""
        if self.store is not None:
            return self
        from dataclasses import replace as _replace

        from repro.analysis.parallel import analyze_shard
        from repro.resilience.pool import PoolConfig, SupervisedPool

        self.store = JobStore(self.config.store_path)
        pool_config = PoolConfig(
            max_workers=max(1, self.config.pool_workers),
            handle_signals=False,  # the serve loop owns signal handling
        )
        if self.config.timeout_s is not None:
            pool_config = _replace(pool_config, timeout_s=self.config.timeout_s)
        if self.config.max_retries is not None:
            pool_config = _replace(pool_config, max_retries=self.config.max_retries)
        self.pool = SupervisedPool(analyze_shard, pool_config, persistent=True)
        with self._lock:
            recovered = self.store.pending()
            for record in recovered:
                # A job found ``running`` was killed mid-compute; both
                # recoverable states simply re-enter the queue.
                record.status = ACCEPTED
                record.phase = "recovered from journal"
                self.store.save(record)
                self._queue.append(record.key)
            self._accepting = True
            self._wakeup.notify_all()
        self._executor = threading.Thread(
            target=self._run_jobs, name="repro-service-executor", daemon=True
        )
        self._executor.start()
        return self

    def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting, settle the in-flight job, release everything.

        ``drain=True`` gives the running job ``drain_grace_s`` to finish
        cleanly; past the grace (or with ``drain=False``) the job is
        cancelled through the pool, journaled back to ``accepted`` and
        left for the next start.  Queued jobs always stay journaled as
        ``accepted``.  Idempotent.
        """
        if self.store is None:
            return
        with self._lock:
            self._accepting = False
            self._stopping = True
            self._wakeup.notify_all()
        if self.pool is not None and not drain:
            self.pool.request_shutdown("service shutdown (no drain)")
        if self._executor is not None:
            grace = self.config.drain_grace_s if drain else 5.0
            self._executor.join(timeout=grace)
            if self._executor.is_alive() and self.pool is not None:
                # Drain grace exceeded: cancel the in-flight analysis.
                self.pool.request_shutdown("drain grace exceeded")
                self._executor.join(timeout=10.0)
            self._executor = None
        if self.pool is not None:
            self.pool.close()
            self.pool = None
        store, self.store = self.store, None
        store.close()

    def __enter__(self) -> "AnalysisService":
        return self.startup()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- submission ------------------------------------------------------------

    def submit(self, raw: Dict[str, Any]) -> Tuple[JobRecord, str]:
        """Accept (or dedup) one submission; returns ``(record, disposition)``.

        Dispositions: ``created`` (new work journaled), ``duplicate``
        (same job already queued or running), ``cached`` (already done —
        the stored result is authoritative, nothing recomputes),
        ``retried`` (a previously failed job re-admitted).
        """
        spec = canonical_spec(raw, default_jobs=self.config.default_jobs)
        key = job_key(spec)
        with self._lock:
            if not self._accepting:
                raise JobRejected(
                    "service is draining and not accepting jobs", retry_after_s=5.0
                )
            assert self.store is not None
            existing = self.store.get(key)
            if existing is not None and existing.status == DONE:
                return existing, "cached"
            if existing is not None and existing.status in (ACCEPTED, RUNNING):
                return existing, "duplicate"
            if len(self._queue) >= self.config.queue_limit:
                raise JobRejected(
                    f"job queue is full ({self.config.queue_limit} waiting); "
                    "retry later",
                    retry_after_s=2.0,
                )
            if existing is not None:  # a failed job, resubmitted
                record = existing
                record.status = ACCEPTED
                record.phase = "re-admitted after failure"
                record.error = None
                record.attempts = 0
                disposition = "retried"
            else:
                record = JobRecord(
                    key=key,
                    seq=self.store.next_seq(),
                    spec=spec,
                    status=ACCEPTED,
                    submitted_at=time.time(),
                )
                disposition = "created"
            # Durability before acknowledgement: the fsync'd journal
            # write happens inside save(), before the caller sees a key.
            self.store.save(record)
            self._queue.append(key)
            self._wakeup.notify_all()
            return record, disposition

    # -- introspection ---------------------------------------------------------

    def job(self, key: str) -> Optional[JobRecord]:
        with self._lock:
            return self.store.get(key) if self.store is not None else None

    def jobs(self) -> List[JobRecord]:
        with self._lock:
            return self.store.records() if self.store is not None else []

    @property
    def accepting(self) -> bool:
        with self._lock:
            return self._accepting

    @property
    def ready(self) -> bool:
        with self._lock:
            return (
                self._accepting
                and self._executor is not None
                and self._executor.is_alive()
            )

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "accepting": self._accepting,
                "queued": len(self._queue),
                "running": self._running_key,
                "executed": self._executed,
                "jobs_total": len(self.store) if self.store is not None else 0,
                "store": self.store.path if self.store is not None else None,
                "pool_workers": self.config.pool_workers,
            }

    def severity(
        self, key: str, *, metric: Optional[str] = None
    ) -> Dict[str, Any]:
        """Query the severity cube of a finished ``analyze`` job.

        Without ``metric``: the available metrics and cube metadata.
        With ``metric``: total severity plus by-rank and by-callpath
        aggregations of that metric's cells.
        """
        record = self.job(key)
        if record is None:
            raise ServiceError(f"no job {key}")
        if record.status != DONE or not record.result:
            raise ServiceError(f"job {key} is {record.status}; no result to query")
        cube = record.result.get("severity")
        if not cube:
            raise ServiceError(
                f"job {key} is a {record.result.get('kind')} job; "
                "only analyze jobs carry a severity cube"
            )
        cells = cube.get("cells", [])
        if metric is None:
            return {
                "job": key,
                "metrics": sorted({c["metric"] for c in cells}),
                "total_time": cube.get("total_time"),
                "scheme": cube.get("scheme"),
                "machine_names": cube.get("machine_names"),
            }
        chosen = [c for c in cells if c["metric"] == metric]
        if not chosen:
            known = ", ".join(sorted({c["metric"] for c in cells}))
            raise ServiceError(f"metric {metric!r} not in cube; available: {known}")
        by_rank: Dict[str, float] = {}
        by_callpath: Dict[str, float] = {}
        total = 0.0
        for cell in chosen:
            value = float(cell["value"])
            total += value
            rank = str(cell["rank"])
            path = "/".join(cell["path"])
            by_rank[rank] = by_rank.get(rank, 0.0) + value
            by_callpath[path] = by_callpath.get(path, 0.0) + value
        return {
            "job": key,
            "metric": metric,
            "total": total,
            "by_rank": by_rank,
            "by_callpath": by_callpath,
        }

    def severity_timeline(
        self, key: str, *, metric: Optional[str] = None
    ) -> Dict[str, Any]:
        """Window-resolved severity series of a finished ``analyze`` job.

        Requires the job to have been submitted with config
        ``{"timeline": true}``; without ``metric`` the full payload (every
        recorded metric's rolling-window series, peak window and per-rank
        breakdown), with ``metric`` just that metric's entry.
        """
        record = self.job(key)
        if record is None:
            raise ServiceError(f"no job {key}")
        if record.status != DONE or not record.result:
            raise ServiceError(f"job {key} is {record.status}; no result to query")
        if record.result.get("kind") != "analyze":
            raise ServiceError(
                f"job {key} is a {record.result.get('kind')} job; "
                "only analyze jobs carry a severity timeline"
            )
        payload = record.result.get("timeline")
        if not payload:
            raise ServiceError(
                f"job {key} did not record a timeline; submit with "
                'config {"timeline": true} to get time-resolved severity'
            )
        if metric is None:
            return {"job": key, **payload}
        entry = payload.get("metrics", {}).get(metric)
        if entry is None:
            known = ", ".join(sorted(payload.get("metrics", {})))
            raise ServiceError(
                f"metric {metric!r} not in timeline; available: {known}"
            )
        return {
            "job": key,
            "window_s": payload["window_s"],
            "stride_s": payload["stride_s"],
            "metrics": {metric: entry},
        }

    # -- the executor ----------------------------------------------------------

    def _set_phase(self, key: str, phase: str) -> None:
        with self._lock:
            record = self.store.get(key) if self.store is not None else None
            if record is not None:
                record.phase = phase  # in-memory progress; journaled on transitions

    def _run_jobs(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._stopping:
                    self._wakeup.wait(timeout=0.2)
                if self._stopping:
                    return
                key = self._queue.popleft()
                assert self.store is not None
                record = self.store.get(key)
                if record is None:  # pragma: no cover - queue/store drift guard
                    continue
                record.attempts += 1
                if record.attempts > self.config.max_job_attempts:
                    # The job has now crashed the service repeatedly;
                    # quarantine it instead of crash-looping forever.
                    record.status = FAILED
                    record.error = (
                        f"gave up after {record.attempts - 1} interrupted attempts"
                    )
                    record.finished_at = time.time()
                    record.phase = ""
                    self.store.save(record)
                    continue
                record.status = RUNNING
                record.started_at = time.time()
                record.phase = "starting"
                self.store.save(record)
                self._running_key = key
                pool = self.pool
            try:
                result, execution = execute_job(
                    record.spec,
                    pool=pool,
                    progress=lambda phase: self._set_phase(key, phase),
                )
            except PoolShutdown:
                # Shutdown raced the job: put it back to ``accepted`` so
                # the next start finishes it; the loop then observes
                # ``_stopping`` and exits.
                with self._lock:
                    record.status = ACCEPTED
                    record.phase = "interrupted by shutdown; resumes on restart"
                    self.store.save(record)
                    self._running_key = None
                continue
            except Exception as exc:
                with self._lock:
                    record.status = FAILED
                    record.error = f"{type(exc).__name__}: {exc}"
                    record.finished_at = time.time()
                    record.phase = ""
                    self.store.save(record)
                    self._running_key = None
                continue
            with self._lock:
                record.status = DONE
                record.result = result
                record.execution = execution
                record.finished_at = time.time()
                record.phase = ""
                self.store.save(record)
                self._running_key = None
                self._executed += 1


def create_app(config: Optional[ServiceConfig] = None) -> AnalysisService:
    """Build an (un-started) service — the app-factory entry point.

    Call :meth:`AnalysisService.startup` (or enter the context manager,
    or hand it to :func:`repro.service.http.serve`) to open the store,
    recover journaled jobs and start executing.
    """
    return AnalysisService(config)
