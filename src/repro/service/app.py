"""The analysis service: lifecycle, admission control, execution.

:class:`AnalysisService` owns exactly three long-lived things:

* one :class:`~repro.service.store.JobStore` (durable state — the only
  thing that must survive a crash),
* one warm persistent :class:`~repro.resilience.pool.SupervisedPool`
  of ``analyze_shard`` workers, lent to every analysis job instead of
  spawning a pool per request,
* one executor thread draining the in-memory run queue in submission
  order.

Crash-safety protocol (the order matters):

1. :meth:`submit` journals the accepted record *before* acknowledging —
   an acknowledged job is durable by construction.
2. The executor journals the ``running`` transition before computing,
   so a SIGKILL mid-compute is distinguishable from never-started.
3. On :meth:`startup`, every journaled job still in a recoverable state
   is re-queued (in original submission order) and runs to completion;
   since each job is deterministic in its canonical spec, the recovered
   result is byte-identical to the one the uninterrupted service would
   have produced.
4. A graceful shutdown (SIGTERM → :meth:`shutdown`) stops admission,
   lets the in-flight job finish within ``drain_grace_s``, cancels it
   through the pool past that, and leaves everything unfinished
   journaled as ``accepted`` for the next start.

Admission control is a bounded queue: past ``queue_limit`` waiting jobs,
:meth:`submit` raises :class:`~repro.errors.JobRejected` (HTTP 429)
rather than buffering unbounded work it may never get to.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import (
    JobRejected,
    PoolShutdown,
    ServiceError,
    TimeBudgetExceeded,
)
from repro.resilience.deadline import Deadline
from repro.service.breaker import CircuitBreaker
from repro.service.runners import execute_job
from repro.service.store import (
    ACCEPTED,
    CANCELLED,
    DONE,
    FAILED,
    RUNNING,
    TERMINAL,
    JobRecord,
    JobStore,
    canonical_spec,
    job_key,
)
from repro.wallclock import wallclock

__all__ = ["ServiceConfig", "AnalysisService", "create_app"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance."""

    #: Journal file backing the job store (the single source of truth).
    store_path: str = ".repro-jobs.jsonl"
    host: str = "127.0.0.1"
    #: TCP port; 0 lets the OS pick (the bound port is printed/exposed).
    port: int = 8137
    #: Maximum jobs waiting behind the running one before 429s start.
    queue_limit: int = 16
    #: Workers in the shared analysis pool.
    pool_workers: int = 2
    #: Default ``jobs`` for submissions that do not specify one.
    default_jobs: int = 2
    #: Per-shard deadline / crash-retry budget for analysis, pool-wide
    #: defaults (a job's config may override per run).
    timeout_s: Optional[float] = None
    max_retries: Optional[int] = None
    #: How long a graceful shutdown waits for the in-flight job.
    drain_grace_s: float = 30.0
    #: Journaled attempts after which a job is declared crash-looping.
    max_job_attempts: int = 3
    #: Default wall-clock budget applied to every job that does not set
    #: ``config["deadline_s"]`` itself.  ``None`` means unbounded (jobs
    #: are still cancellable via ``DELETE /jobs/<key>``).
    job_deadline_s: Optional[float] = None
    #: Consecutive infrastructure failures (crash-loop quarantines,
    #: blown deadlines) before the circuit breaker opens.
    breaker_threshold: int = 3
    #: Seconds the open breaker rejects submissions before probing.
    breaker_cooldown_s: float = 30.0


class AnalysisService:
    """Crash-safe async job execution over :mod:`repro.api`.

    Use as a context manager, or pair :meth:`startup` / :meth:`shutdown`
    explicitly.  All public methods are thread-safe (the HTTP front end
    calls them from handler threads).
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self._lock = threading.RLock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: Deque[str] = deque()
        self._accepting = False
        self._stopping = False
        self._running_key: Optional[str] = None
        self._running_deadline: Optional[Deadline] = None
        self._cancel_requested: set = set()
        self._drain_started: Optional[float] = None
        self._executed = 0  # jobs actually computed by this process
        self.store: Optional[JobStore] = None
        self.pool = None
        self._executor: Optional[threading.Thread] = None
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )

    # -- lifecycle -------------------------------------------------------------

    def startup(self) -> "AnalysisService":
        """Open the store, recover journaled work, start pool + executor."""
        if self.store is not None:
            return self
        from dataclasses import replace as _replace

        from repro.analysis.parallel import analyze_shard
        from repro.resilience.pool import PoolConfig, SupervisedPool

        self.store = JobStore(self.config.store_path)
        pool_config = PoolConfig(
            max_workers=max(1, self.config.pool_workers),
            handle_signals=False,  # the serve loop owns signal handling
        )
        if self.config.timeout_s is not None:
            pool_config = _replace(pool_config, timeout_s=self.config.timeout_s)
        if self.config.max_retries is not None:
            pool_config = _replace(pool_config, max_retries=self.config.max_retries)
        self.pool = SupervisedPool(analyze_shard, pool_config, persistent=True)
        with self._lock:
            recovered = self.store.pending()
            for record in recovered:
                # A job found ``running`` was killed mid-compute; both
                # recoverable states simply re-enter the queue.
                record.status = ACCEPTED
                record.phase = "recovered from journal"
                self.store.save(record)
                self._queue.append(record.key)
            self._accepting = True
            self._wakeup.notify_all()
        self._executor = threading.Thread(
            target=self._run_jobs, name="repro-service-executor", daemon=True
        )
        self._executor.start()
        return self

    def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting, settle the in-flight job, release everything.

        ``drain=True`` gives the running job ``drain_grace_s`` to finish
        cleanly; past the grace (or with ``drain=False``) the job is
        cancelled through the pool, journaled back to ``accepted`` and
        left for the next start.  Queued jobs always stay journaled as
        ``accepted``.  Idempotent.
        """
        if self.store is None:
            return
        with self._lock:
            self._accepting = False
            self._stopping = True
            if self._drain_started is None:
                self._drain_started = time.monotonic()
            self._wakeup.notify_all()
        if self.pool is not None and not drain:
            self.pool.request_shutdown("service shutdown (no drain)")
        if self._executor is not None:
            grace = self.config.drain_grace_s if drain else 5.0
            self._executor.join(timeout=grace)
            if self._executor.is_alive() and self.pool is not None:
                # Drain grace exceeded: cancel the in-flight analysis.
                self.pool.request_shutdown("drain grace exceeded")
                self._executor.join(timeout=10.0)
            self._executor = None
        if self.pool is not None:
            self.pool.close()
            self.pool = None
        store, self.store = self.store, None
        store.close()

    def __enter__(self) -> "AnalysisService":
        return self.startup()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- submission ------------------------------------------------------------

    def submit(self, raw: Dict[str, Any]) -> Tuple[JobRecord, str]:
        """Accept (or dedup) one submission; returns ``(record, disposition)``.

        Dispositions: ``created`` (new work journaled), ``duplicate``
        (same job already queued or running), ``cached`` (already done —
        the stored result is authoritative, nothing recomputes),
        ``retried`` (a previously failed or cancelled job re-admitted).
        """
        spec = canonical_spec(raw, default_jobs=self.config.default_jobs)
        key = job_key(spec)
        with self._lock:
            if not self._accepting:
                raise JobRejected(
                    "service is draining and not accepting jobs",
                    retry_after_s=self.drain_retry_after_s(),
                )
            assert self.store is not None
            existing = self.store.get(key)
            if existing is not None and existing.status == DONE:
                return existing, "cached"
            if existing is not None and existing.status in (ACCEPTED, RUNNING):
                return existing, "duplicate"
            if len(self._queue) >= self.config.queue_limit:
                raise JobRejected(
                    f"job queue is full ({self.config.queue_limit} waiting); "
                    "retry later",
                    retry_after_s=2.0,
                )
            # Cached and duplicate answers cost nothing, so they are
            # served even while the breaker is open; only *new compute*
            # is gated.  Checked after the queue bound so a rejected
            # submission never consumes the half-open probe slot.
            retry_after = self.breaker.allow()
            if retry_after is not None:
                raise JobRejected(
                    "circuit breaker is open after repeated worker "
                    "failures; retry later",
                    retry_after_s=retry_after,
                    status=503,
                )
            if existing is not None:  # a failed/cancelled job, resubmitted
                record = existing
                prior = record.status
                record.status = ACCEPTED
                record.phase = f"re-admitted after {prior}"
                record.error = None
                record.attempts = 0
                record.finished_at = None
                disposition = "retried"
            else:
                record = JobRecord(
                    key=key,
                    seq=self.store.next_seq(),
                    spec=spec,
                    status=ACCEPTED,
                    submitted_at=wallclock(),
                )
                disposition = "created"
            # Durability before acknowledgement: the fsync'd journal
            # write happens inside save(), before the caller sees a key.
            self.store.save(record)
            self._queue.append(key)
            self._wakeup.notify_all()
            return record, disposition

    def cancel(
        self, key: str, *, reason: str = "cancelled by client"
    ) -> Tuple[JobRecord, str]:
        """Cancel a queued or running job; returns ``(record, disposition)``.

        Dispositions: ``cancelled`` (a queued job, journaled terminal
        immediately), ``cancelling`` (the running job — its deadline is
        cancelled and the executor journals the ``cancelled`` state as
        soon as the analysis reaches its next cooperative check),
        ``terminal`` (already done/failed/cancelled; nothing to do).
        Raises :class:`~repro.errors.ServiceError` for unknown keys.
        """
        with self._lock:
            if self.store is None:
                raise ServiceError("service is not running")
            record = self.store.get(key)
            if record is None:
                raise ServiceError(f"no job {key}")
            if record.status in TERMINAL:
                return record, "terminal"
            if key == self._running_key:
                self._cancel_requested.add(key)
                if self._running_deadline is not None:
                    self._running_deadline.cancel(reason)
                record.phase = "cancellation requested"
                return record, "cancelling"
            try:
                self._queue.remove(key)
            except ValueError:  # pragma: no cover - queue/store drift guard
                pass
            record.status = CANCELLED
            record.error = reason
            record.finished_at = wallclock()
            record.phase = ""
            self.store.save(record)
            return record, "cancelled"

    def requeue(self, key: str) -> JobRecord:
        """Re-admit a quarantined (failed) or cancelled job.

        An explicit operator action, so it bypasses the circuit breaker
        — requeueing *is* how you probe a quarantined job after fixing
        the underlying problem — but still honours the queue bound and
        the draining state.
        """
        with self._lock:
            if self.store is None:
                raise ServiceError("service is not running")
            if not self._accepting:
                raise JobRejected(
                    "service is draining and not accepting jobs",
                    retry_after_s=self.drain_retry_after_s(),
                )
            record = self.store.get(key)
            if record is None:
                raise ServiceError(f"no job {key}")
            if record.status not in (FAILED, CANCELLED):
                raise ServiceError(
                    f"job {key} is {record.status}; only failed or "
                    "cancelled jobs can be re-queued"
                )
            if len(self._queue) >= self.config.queue_limit:
                raise JobRejected(
                    f"job queue is full ({self.config.queue_limit} waiting); "
                    "retry later",
                    retry_after_s=2.0,
                )
            record.status = ACCEPTED
            record.phase = "re-queued by operator"
            record.error = None
            record.attempts = 0
            record.finished_at = None
            self.store.save(record)
            self._queue.append(key)
            self._wakeup.notify_all()
            return record

    def drain_retry_after_s(self) -> float:
        """Seconds a client should wait while the service drains.

        Derived from the remaining drain grace — a drain that started
        ``t`` seconds ago will either finish its in-flight job or cancel
        it within ``drain_grace_s - t``, after which a restarted
        instance can take the retry.  Never less than one second.
        """
        with self._lock:
            if self._drain_started is None:
                return self.config.drain_grace_s
            elapsed = time.monotonic() - self._drain_started
            return max(1.0, self.config.drain_grace_s - elapsed)

    # -- introspection ---------------------------------------------------------

    def job(self, key: str) -> Optional[JobRecord]:
        with self._lock:
            return self.store.get(key) if self.store is not None else None

    def jobs(self) -> List[JobRecord]:
        with self._lock:
            return self.store.records() if self.store is not None else []

    @property
    def accepting(self) -> bool:
        with self._lock:
            return self._accepting

    @property
    def ready(self) -> bool:
        with self._lock:
            return (
                self._accepting
                and self._executor is not None
                and self._executor.is_alive()
            )

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "accepting": self._accepting,
                "queued": len(self._queue),
                "running": self._running_key,
                "executed": self._executed,
                "jobs_total": len(self.store) if self.store is not None else 0,
                "store": self.store.path if self.store is not None else None,
                "pool_workers": self.config.pool_workers,
                "breaker": self.breaker.snapshot(),
            }

    def severity(
        self, key: str, *, metric: Optional[str] = None
    ) -> Dict[str, Any]:
        """Query the severity cube of a finished ``analyze`` job.

        Without ``metric``: the available metrics and cube metadata.
        With ``metric``: total severity plus by-rank and by-callpath
        aggregations of that metric's cells.
        """
        record = self.job(key)
        if record is None:
            raise ServiceError(f"no job {key}")
        if record.status != DONE or not record.result:
            raise ServiceError(f"job {key} is {record.status}; no result to query")
        cube = record.result.get("severity")
        if not cube:
            raise ServiceError(
                f"job {key} is a {record.result.get('kind')} job; "
                "only analyze jobs carry a severity cube"
            )
        cells = cube.get("cells", [])
        if metric is None:
            return {
                "job": key,
                "metrics": sorted({c["metric"] for c in cells}),
                "total_time": cube.get("total_time"),
                "scheme": cube.get("scheme"),
                "machine_names": cube.get("machine_names"),
            }
        chosen = [c for c in cells if c["metric"] == metric]
        if not chosen:
            known = ", ".join(sorted({c["metric"] for c in cells}))
            raise ServiceError(f"metric {metric!r} not in cube; available: {known}")
        by_rank: Dict[str, float] = {}
        by_callpath: Dict[str, float] = {}
        total = 0.0
        for cell in chosen:
            value = float(cell["value"])
            total += value
            rank = str(cell["rank"])
            path = "/".join(cell["path"])
            by_rank[rank] = by_rank.get(rank, 0.0) + value
            by_callpath[path] = by_callpath.get(path, 0.0) + value
        return {
            "job": key,
            "metric": metric,
            "total": total,
            "by_rank": by_rank,
            "by_callpath": by_callpath,
        }

    def severity_timeline(
        self, key: str, *, metric: Optional[str] = None
    ) -> Dict[str, Any]:
        """Window-resolved severity series of a finished ``analyze`` job.

        Requires the job to have been submitted with config
        ``{"timeline": true}``; without ``metric`` the full payload (every
        recorded metric's rolling-window series, peak window and per-rank
        breakdown), with ``metric`` just that metric's entry.
        """
        record = self.job(key)
        if record is None:
            raise ServiceError(f"no job {key}")
        if record.status != DONE or not record.result:
            raise ServiceError(f"job {key} is {record.status}; no result to query")
        if record.result.get("kind") != "analyze":
            raise ServiceError(
                f"job {key} is a {record.result.get('kind')} job; "
                "only analyze jobs carry a severity timeline"
            )
        payload = record.result.get("timeline")
        if not payload:
            raise ServiceError(
                f"job {key} did not record a timeline; submit with "
                'config {"timeline": true} to get time-resolved severity'
            )
        if metric is None:
            return {"job": key, **payload}
        entry = payload.get("metrics", {}).get(metric)
        if entry is None:
            known = ", ".join(sorted(payload.get("metrics", {})))
            raise ServiceError(
                f"metric {metric!r} not in timeline; available: {known}"
            )
        return {
            "job": key,
            "window_s": payload["window_s"],
            "stride_s": payload["stride_s"],
            "metrics": {metric: entry},
        }

    # -- the executor ----------------------------------------------------------

    def _set_phase(self, key: str, phase: str) -> None:
        with self._lock:
            record = self.store.get(key) if self.store is not None else None
            if record is not None:
                record.phase = phase  # in-memory progress; journaled on transitions

    def _run_jobs(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._stopping:
                    self._wakeup.wait(timeout=0.2)
                if self._stopping:
                    return
                key = self._queue.popleft()
                assert self.store is not None
                record = self.store.get(key)
                if record is None:  # pragma: no cover - queue/store drift guard
                    continue
                record.attempts += 1
                if record.attempts > self.config.max_job_attempts:
                    # The job has now crashed the service repeatedly;
                    # quarantine it instead of crash-looping forever.
                    record.status = FAILED
                    record.error = (
                        f"gave up after {record.attempts - 1} interrupted attempts"
                    )
                    record.finished_at = wallclock()
                    record.phase = ""
                    self.store.save(record)
                    self.breaker.record_failure(
                        f"job {key} quarantined after crash-looping"
                    )
                    continue
                record.status = RUNNING
                record.started_at = wallclock()
                record.phase = "starting"
                self.store.save(record)
                self._running_key = key
                # One Deadline per job: the budget from the job's config
                # (falling back to the service default), and always a
                # handle — an unbounded deadline is still the channel a
                # client cancel travels through.
                budget = record.spec.get("config", {}).get("deadline_s")
                if budget is None:
                    budget = self.config.job_deadline_s
                deadline = Deadline(budget)
                self._running_deadline = deadline
                pool = self.pool
            try:
                result, execution = execute_job(
                    record.spec,
                    pool=pool,
                    progress=lambda phase: self._set_phase(key, phase),
                    deadline=deadline,
                )
            except PoolShutdown:
                # Shutdown raced the job: put it back to ``accepted`` so
                # the next start finishes it; the loop then observes
                # ``_stopping`` and exits.
                with self._lock:
                    record.status = ACCEPTED
                    record.phase = "interrupted by shutdown; resumes on restart"
                    self.store.save(record)
                    self._clear_running(key)
                continue
            except TimeBudgetExceeded as exc:
                # Budget expired or a client cancelled: terminal
                # ``cancelled`` state; the partial result is discarded so
                # the content-addressed cache only ever holds complete
                # answers.
                with self._lock:
                    client = key in self._cancel_requested
                    record.status = CANCELLED
                    record.error = f"TimeBudgetExceeded: {exc.reason}"
                    record.finished_at = wallclock()
                    record.phase = ""
                    self.store.save(record)
                    self._clear_running(key)
                if client:
                    # A client cancel says nothing about service health:
                    # don't count it, but do free the half-open probe
                    # slot if this job happened to be the probe.
                    self.breaker.release_probe()
                else:
                    self.breaker.record_failure(
                        f"job {key} exceeded its time budget: {exc.reason}"
                    )
                continue
            except Exception as exc:
                with self._lock:
                    record.status = FAILED
                    record.error = f"{type(exc).__name__}: {exc}"
                    record.finished_at = wallclock()
                    record.phase = ""
                    self.store.save(record)
                    self._clear_running(key)
                # A deterministic application error from a healthy worker
                # proves the infrastructure works; it resets the breaker
                # rather than tripping it.
                self.breaker.record_success()
                continue
            with self._lock:
                record.status = DONE
                record.result = result
                record.execution = execution
                record.finished_at = wallclock()
                record.phase = ""
                self.store.save(record)
                self._clear_running(key)
                self._executed += 1
            self.breaker.record_success()

    def _clear_running(self, key: str) -> None:
        """Drop the running-job bookkeeping (caller holds the lock)."""
        self._running_key = None
        self._running_deadline = None
        self._cancel_requested.discard(key)


def create_app(config: Optional[ServiceConfig] = None) -> AnalysisService:
    """Build an (un-started) service — the app-factory entry point.

    Call :meth:`AnalysisService.startup` (or enter the context manager,
    or hand it to :func:`repro.service.http.serve`) to open the store,
    recover journaled jobs and start executing.
    """
    return AnalysisService(config)
