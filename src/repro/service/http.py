"""Stdlib HTTP front end of the analysis service.

Routes (all JSON):

* ``POST /jobs`` — submit ``{"kind", "experiment", "seed", "jobs",
  "config"}``.  ``202`` for newly accepted work; ``200`` with a
  ``disposition`` of ``duplicate``/``cached``/``retried`` for idempotent
  resubmission; ``400`` on a malformed spec; ``429`` +
  ``Retry-After`` when the queue is full; ``503`` + ``Retry-After``
  while draining.
* ``GET /jobs`` — all jobs (summaries, submission order).
* ``GET /jobs/<key>`` — one job's full record (status, phase, attempts).
* ``GET /jobs/<key>/result`` — the result payload; ``409`` until the
  job is ``done`` (or after it failed — the body says which).
* ``GET /jobs/<key>/severity[?metric=...]`` — severity-cube query of a
  finished analyze job.
* ``GET /jobs/<key>/severity/timeline[?metric=...]`` — window-resolved
  severity series of a finished analyze job submitted with config
  ``{"timeline": true}``.
* ``DELETE /jobs/<key>`` — cancel.  ``200`` for a queued job (journaled
  ``cancelled`` immediately); ``202`` for the running job (its deadline
  is cancelled, the executor journals ``cancelled`` at the next
  cooperative check); ``409`` when already terminal; ``404`` unknown.
* ``POST /jobs/<key>/requeue`` — re-admit a quarantined or cancelled
  job (``202``), bypassing the circuit breaker but not the queue bound.
* ``GET /healthz`` — liveness plus circuit-breaker state; ``GET
  /readyz`` — readiness (``503`` + ``Retry-After`` derived from the
  remaining drain grace while draining) plus queue statistics.

:func:`serve` is the blocking entry point behind ``repro serve``: it
starts the app, serves until SIGTERM/SIGINT, then drains gracefully —
stop admission, let the in-flight job finish (bounded by the configured
grace), journal the rest for the next start.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    CheckpointError,
    JobRejected,
    JobValidationError,
    ServiceError,
)
from repro.service.app import AnalysisService, ServiceConfig, create_app

__all__ = ["ServiceHTTPServer", "serve"]

_MAX_BODY_BYTES = 1 << 20  # a job spec is tiny; anything bigger is abuse


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the :class:`AnalysisService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], app: AnalysisService) -> None:
        super().__init__(address, _Handler)
        self.app = app


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> AnalysisService:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging is the supervisor's job, not stderr noise

    # -- response plumbing -----------------------------------------------------

    def _send(
        self, status: int, payload: Dict[str, Any], headers: Optional[Dict[str, str]] = None
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise JobValidationError("request body must be a JSON object")
        if length > _MAX_BODY_BYTES:
            raise JobValidationError("request body too large")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JobValidationError(f"request body is not valid JSON: {exc}") from exc

    # -- routing ---------------------------------------------------------------

    def _submit(self) -> None:
        raw = self._read_json()
        record, disposition = self.app.submit(raw)
        status = 202 if disposition in ("created", "retried") else 200
        self._send(
            status,
            {
                "disposition": disposition,
                "job": record.to_payload(),
                "url": f"/jobs/{record.key}",
            },
        )

    def do_POST(self) -> None:  # noqa: N802
        path = urlsplit(self.path).path.rstrip("/")
        try:
            if path == "/jobs":
                self._submit()
            elif path.startswith("/jobs/") and path.endswith("/requeue"):
                key = path[len("/jobs/") : -len("/requeue")]
                record = self.app.requeue(key)
                self._send(
                    202,
                    {
                        "disposition": "requeued",
                        "job": record.to_payload(),
                        "url": f"/jobs/{record.key}",
                    },
                )
            else:
                self._send(404, {"error": f"no route POST {path}"})
        except JobValidationError as exc:
            self._send(400, {"error": str(exc)})
        except JobRejected as exc:
            status = exc.status or (503 if not self.app.accepting else 429)
            self._send(
                status,
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                headers={"Retry-After": str(max(1, int(exc.retry_after_s)))},
            )
        except ServiceError as exc:
            self._send(404, {"error": str(exc)})
        except CheckpointError as exc:
            self._send(500, {"error": f"job store failure: {exc}"})
        except Exception as exc:  # pragma: no cover - last-resort 500
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_DELETE(self) -> None:  # noqa: N802
        path = urlsplit(self.path).path.rstrip("/")
        try:
            if path.startswith("/jobs/"):
                key = path[len("/jobs/") :]
                if "/" in key:
                    self._send(404, {"error": f"no route DELETE {path}"})
                    return
                record, disposition = self.app.cancel(key)
                status = {"cancelled": 200, "cancelling": 202}.get(disposition, 409)
                self._send(
                    status,
                    {"disposition": disposition, "job": record.to_payload()},
                )
            else:
                self._send(404, {"error": f"no route DELETE {path}"})
        except ServiceError as exc:
            self._send(404, {"error": str(exc)})
        except CheckpointError as exc:
            self._send(500, {"error": f"job store failure: {exc}"})
        except Exception as exc:  # pragma: no cover - last-resort 500
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_GET(self) -> None:  # noqa: N802
        split = urlsplit(self.path)
        path = split.path.rstrip("/")
        query = parse_qs(split.query)
        try:
            if path == "/healthz":
                self._send(
                    200,
                    {"status": "alive", "breaker": self.app.breaker.snapshot()},
                )
            elif path == "/readyz":
                stats = self.app.stats()
                if self.app.ready:
                    self._send(200, {"status": "ready", **stats})
                else:
                    retry_after = self.app.drain_retry_after_s()
                    self._send(
                        503,
                        {
                            "status": "draining",
                            "retry_after_s": retry_after,
                            **stats,
                        },
                        headers={"Retry-After": str(max(1, int(retry_after)))},
                    )
            elif path == "/jobs":
                self._send(200, {"jobs": [r.summary() for r in self.app.jobs()]})
            elif path.startswith("/jobs/"):
                self._job_routes(path[len("/jobs/") :], query)
            else:
                self._send(404, {"error": f"no route GET {path}"})
        except ServiceError as exc:
            self._send(404, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - last-resort 500
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _job_routes(self, rest: str, query: Dict[str, Any]) -> None:
        parts = rest.split("/")
        key = parts[0]
        record = self.app.job(key)
        if record is None:
            self._send(404, {"error": f"no job {key}"})
            return
        if len(parts) == 1:
            self._send(200, {"job": record.to_payload()})
        elif parts[1:] == ["result"]:
            if record.status == "done":
                self._send(
                    200,
                    {
                        "status": record.status,
                        "result": record.result,
                        "execution": record.execution,
                    },
                )
            else:
                self._send(
                    409,
                    {
                        "status": record.status,
                        "phase": record.phase,
                        "error": record.error,
                    },
                )
        elif parts[1:] == ["severity"]:
            metric = (query.get("metric") or [None])[0]
            try:
                self._send(200, self.app.severity(key, metric=metric))
            except ServiceError as exc:
                self._send(409, {"error": str(exc)})
        elif parts[1:] == ["severity", "timeline"]:
            metric = (query.get("metric") or [None])[0]
            try:
                self._send(200, self.app.severity_timeline(key, metric=metric))
            except ServiceError as exc:
                self._send(409, {"error": str(exc)})
        else:
            self._send(404, {"error": f"no route GET /jobs/{rest}"})


def serve(
    config: Optional[ServiceConfig] = None,
    *,
    app: Optional[AnalysisService] = None,
    ready_file: Optional[str] = None,
) -> int:
    """Run the service until SIGTERM/SIGINT; returns the exit code.

    Binds first (``port=0`` lets the OS pick), then opens the store and
    recovers journaled jobs, then announces readiness — on stdout and,
    when ``ready_file`` is given, as ``host:port`` in that file (how
    tests and scripts discover an OS-assigned port).  On signal:
    graceful drain (see :meth:`AnalysisService.shutdown`), then exit 0.
    """
    config = config or ServiceConfig()
    app = app or create_app(config)
    httpd = ServiceHTTPServer((config.host, config.port), app)
    host, port = httpd.server_address[:2]
    app.startup()

    stop = threading.Event()
    received: Dict[str, Any] = {"signal": None}

    def _on_signal(signum, frame):  # noqa: ANN001
        received["signal"] = signum
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _on_signal)

    server_thread = threading.Thread(
        target=httpd.serve_forever, kwargs={"poll_interval": 0.1}, daemon=True
    )
    server_thread.start()
    print(f"repro service listening on http://{host}:{port} (store: {app.config.store_path})", flush=True)
    if ready_file:
        # Watchers poll for this file; an atomic replace means they never
        # observe a torn half-written address.
        directory = os.path.dirname(os.path.abspath(ready_file)) or "."
        fd, tmp = tempfile.mkstemp(prefix=".ready-", dir=directory)
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(f"{host}:{port}\n")
        os.replace(tmp, ready_file)
    try:
        while not stop.is_set():
            stop.wait(timeout=0.5)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        name = (
            signal.Signals(received["signal"]).name
            if received["signal"] is not None
            else "shutdown"
        )
        print(f"repro service draining on {name} ...", flush=True)
        httpd.shutdown()
        server_thread.join(timeout=5.0)
        httpd.server_close()
        app.shutdown(drain=True)
        print("repro service stopped", flush=True)
    return 0
