"""Analysis-as-a-service: a crash-safe async job layer over :mod:`repro.api`.

The package turns the library's three verbs — ``simulate``, ``analyze``,
``run_experiment`` — into *jobs* submitted over HTTP and executed
asynchronously against one long-lived warm
:class:`~repro.resilience.pool.SupervisedPool`:

* :mod:`repro.service.store` — the durable, idempotent job store.  Every
  accepted job is journaled (via
  :class:`~repro.resilience.checkpoint.CheckpointJournal`) *before* the
  client sees the acknowledgement, keyed by a content-addressed hash of
  its canonicalized specification, so a SIGKILL'd service resumes exactly
  the accepted work on restart and a duplicate submission is served from
  cache instead of recomputed.
* :mod:`repro.service.runners` — maps a canonical job spec onto the
  :mod:`repro.api` facade and produces a JSON-serializable result.
* :mod:`repro.service.app` — :class:`AnalysisService`: lifecycle
  (startup / graceful drain), admission control (bounded queue,
  reject-when-full), the single executor loop, and the severity-cube
  query.
* :mod:`repro.service.http` — the stdlib HTTP front end
  (:func:`serve`, ``repro serve``) exposing submission, polling, result
  retrieval, severity queries and health/readiness endpoints.

Everything is standard library only (``http.server`` + threads); the
stable entry points ``create_app``, ``ServiceConfig`` and ``JobStore``
are re-exported through :mod:`repro.api`.
"""

from __future__ import annotations

from repro.service.app import AnalysisService, ServiceConfig, create_app
from repro.service.http import serve
from repro.service.runners import execute_job
from repro.service.store import (
    ACCEPTED,
    DONE,
    FAILED,
    RUNNING,
    JobRecord,
    JobStore,
    canonical_spec,
    job_key,
)

__all__ = [
    "AnalysisService",
    "ServiceConfig",
    "create_app",
    "serve",
    "execute_job",
    "JobStore",
    "JobRecord",
    "canonical_spec",
    "job_key",
    "ACCEPTED",
    "RUNNING",
    "DONE",
    "FAILED",
]
