"""The one sanctioned wall-clock read.

Result-bearing packages never read any clock (rule ``DET102``): simulated
time is the only time they know, which is what makes same-seed runs
byte-identical.  The service and resilience layers *do* need wall time —
job records carry submitted/started/finished timestamps — and rule
``DET103`` requires every such read to route through :func:`wallclock`
so the tree's entire wall-clock dependency is auditable at this one
import site.

Keeping the helper trivial is the point: anything cleverer (caching,
mocking hooks, timezone logic) would turn an audit point into a
behavior.  Tests that need a fake clock monkeypatch this function.
"""

from __future__ import annotations

import time


def wallclock() -> float:
    """Seconds since the epoch, as :func:`time.time` reports them."""
    return time.time()
