"""Fault plans: declarative, seed-driven descriptions of injected faults.

A :class:`FaultPlan` is an immutable list of fault specs plus its own
random seed.  Fault randomness (message-loss coin flips, ping drops) is
drawn from a generator seeded by the *plan*, never from the simulation's
latency stream — so an empty plan leaves every simulation draw, and hence
every trace byte, exactly as it would be without fault injection, and the
same plan replayed against the same workload injects the same faults.

Link-valued specs select links by *pattern*: an exact link name
(``"FZJ<->FH-BRS"``), a link class (``"external"``, ``"internal"``,
``"loopback"``), or ``"*"`` for every link.  The external links are the
interesting targets — the paper's premise is that metacomputer trouble
lives on the slow inter-metahost paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.errors import ConfigurationError
from repro.topology.network import LinkSpec

#: Patterns that select a whole link class rather than a named link.
_CLASS_PATTERNS = ("external", "internal", "loopback")


def link_matches(pattern: str, spec: LinkSpec) -> bool:
    """Does *pattern* (name, class, or ``"*"``) select this link?"""
    if pattern == "*":
        return True
    if spec.name == pattern:
        return True
    return spec.link_class.value == pattern


def _check_pattern(pattern: str) -> None:
    if not pattern:
        raise ConfigurationError("fault spec link pattern must be non-empty")


def _check_prob(value: float, what: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{what} must be in [0, 1], got {value}")


def _check_window(start_s: float, end_s: float) -> None:
    if start_s < 0 or end_s <= start_s:
        raise ConfigurationError(
            f"fault window must satisfy 0 <= start < end, got [{start_s}, {end_s}]"
        )


@dataclass(frozen=True)
class LinkOutage:
    """The selected links deliver nothing during ``[start_s, end_s)``.

    Every message hitting the link inside the window is lost; senders ride
    the outage out through retransmission backoff or — if the window outlasts
    the retry budget — hit :class:`~repro.errors.CommunicationTimeoutError`.
    """

    link: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        _check_pattern(self.link)
        _check_window(self.start_s, self.end_s)


@dataclass(frozen=True)
class LinkDegradation:
    """The selected links run slow and lossy during ``[start_s, end_s)``.

    ``latency_factor`` multiplies every sampled transfer time on the link
    while the window is active; ``loss_prob`` additionally drops each
    message with that probability (recovered by retransmission).
    """

    link: str
    start_s: float
    end_s: float
    latency_factor: float = 1.0
    loss_prob: float = 0.0

    def __post_init__(self) -> None:
        _check_pattern(self.link)
        _check_window(self.start_s, self.end_s)
        if self.latency_factor < 1.0:
            raise ConfigurationError(
                f"latency factor must be >= 1, got {self.latency_factor}"
            )
        _check_prob(self.loss_prob, "degradation loss probability")


@dataclass(frozen=True)
class MessageLoss:
    """Uniform per-message loss on the selected links, for the whole run."""

    link: str
    probability: float

    def __post_init__(self) -> None:
        _check_pattern(self.link)
        _check_prob(self.probability, "message-loss probability")


@dataclass(frozen=True)
class PingFault:
    """Interference with clock-offset measurement probes on selected links.

    ``drop_prob`` loses individual ping-pong exchanges (the measurement
    re-pings, bounded); ``asymmetry_s`` adds a one-directional delay to the
    *return* leg of each exchange, biasing the Cristian offset estimate —
    the failure mode that makes outlier rejection worthwhile.
    """

    link: str
    drop_prob: float = 0.0
    asymmetry_s: float = 0.0

    def __post_init__(self) -> None:
        _check_pattern(self.link)
        _check_prob(self.drop_prob, "ping drop probability")
        if self.asymmetry_s < 0:
            raise ConfigurationError("ping asymmetry must be non-negative")


@dataclass(frozen=True)
class FileSystemFault:
    """Directory creation on one metahost's storage fails.

    The first ``fail_count`` create attempts raise
    :class:`~repro.errors.FileSystemError`; with ``permanent`` every attempt
    fails, which drives the archive-management protocol into its abort path.
    ``machine`` is a metahost name or ``"*"``.
    """

    machine: str
    fail_count: int = 1
    permanent: bool = False

    def __post_init__(self) -> None:
        if not self.machine:
            raise ConfigurationError("file-system fault machine must be non-empty")
        if self.fail_count < 1:
            raise ConfigurationError("file-system fault needs fail_count >= 1")


@dataclass(frozen=True)
class TraceTruncation:
    """Keep only a prefix of one rank's trace file (buffer lost at the end).

    ``keep_fraction`` is the fraction of the payload (post-header) bytes
    retained; the cut lands wherever it lands, usually mid-record.
    """

    rank: int
    keep_fraction: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError("trace truncation rank must be >= 0")
        _check_prob(self.keep_fraction, "trace keep fraction")


@dataclass(frozen=True)
class TraceCorruption:
    """Overwrite bytes of one rank's trace file with garbage (0xFF).

    The damage starts at the first record boundary at or after
    ``at_fraction`` of the payload, so the salvageable prefix ends exactly
    at the corruption point.
    """

    rank: int
    at_fraction: float = 0.5
    length: int = 4

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError("trace corruption rank must be >= 0")
        _check_prob(self.at_fraction, "trace corruption position")
        if self.length < 1:
            raise ConfigurationError("trace corruption length must be >= 1")


FaultSpec = Union[
    LinkOutage,
    LinkDegradation,
    MessageLoss,
    PingFault,
    FileSystemFault,
    TraceTruncation,
    TraceCorruption,
]

_SPEC_TYPES = (
    LinkOutage,
    LinkDegradation,
    MessageLoss,
    PingFault,
    FileSystemFault,
    TraceTruncation,
    TraceCorruption,
)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of fault specs plus the seed for fault randomness.

    ``FaultPlan()`` is the empty plan: injecting it is indistinguishable
    from not injecting at all (no draws, no delays, no mangling).
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        for spec in self.specs:
            if not isinstance(spec, _SPEC_TYPES):
                raise ConfigurationError(
                    f"not a fault spec: {spec!r} (type {type(spec).__name__})"
                )
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def is_empty(self) -> bool:
        return not self.specs

    def of_type(self, spec_type: type) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if isinstance(s, spec_type))

    def describe(self) -> str:
        """One line per spec, for degradation reports and logs."""
        if self.is_empty:
            return "(no faults)"
        return "\n".join(
            f"{type(s).__name__}({', '.join(f'{k}={v!r}' for k, v in vars(s).items())})"
            for s in self.specs
        )
