"""Deterministic fault injection for metacomputer simulations.

The paper's environment is hostile — slow shared external links, no common
file system, an archive protocol with an abort path — and this package
makes that hostility testable: a :class:`FaultPlan` declares link outages,
degradation windows, message loss, measurement-ping interference,
file-system failures and trace damage; a :class:`FaultInjector` executes
the plan against one run from its own seeded random stream, leaving the
simulation's stream untouched (empty plan ⇒ byte-identical run).
"""

from repro.faults.injector import FaultCounters, FaultInjector, build_injector
from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    FileSystemFault,
    LinkDegradation,
    LinkOutage,
    MessageLoss,
    PingFault,
    TraceCorruption,
    TraceTruncation,
    link_matches,
)

__all__ = [
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FileSystemFault",
    "LinkDegradation",
    "LinkOutage",
    "MessageLoss",
    "PingFault",
    "TraceCorruption",
    "TraceTruncation",
    "build_injector",
    "link_matches",
]
