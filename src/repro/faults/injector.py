"""Runtime fault injection driven by a :class:`~repro.faults.plan.FaultPlan`.

One :class:`FaultInjector` is shared by every layer of a run — transport,
offset measurement, archive management, trace writing — so a single seeded
generator orders all fault randomness and a single counter block feeds the
degradation report.  All methods are cheap no-ops when the plan carries no
spec of the relevant type; the simulation's own random stream is never
touched.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import CommunicationTimeoutError
from repro.faults.plan import (
    FaultPlan,
    FileSystemFault,
    LinkDegradation,
    LinkOutage,
    MessageLoss,
    PingFault,
    TraceCorruption,
    TraceTruncation,
    link_matches,
)
from repro.sim.transfer import RetryPolicy
from repro.topology.network import LinkSpec
from repro.trace.encoding import HEADER_SIZE, record_boundary


@dataclass
class FaultCounters:
    """What the injector did to a run; the degradation report reads this."""

    messages_dropped: int = 0
    retransmits: int = 0
    timeouts: int = 0
    pings_dropped: int = 0
    pings_reissued: int = 0
    fs_failures_injected: int = 0
    traces_truncated: int = 0
    traces_corrupted: int = 0

    @property
    def total(self) -> int:
        return sum(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultInjector:
    """Stateful executor of one fault plan over one run.

    Holds the plan's own :class:`numpy.random.Generator` (seeded from
    ``plan.seed``) and the mutable per-run state: loss coin flips, the
    per-machine file-system failure budgets, and the fault counters.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.counters = FaultCounters()
        self._outages: Tuple[LinkOutage, ...] = plan.of_type(LinkOutage)
        self._degradations: Tuple[LinkDegradation, ...] = plan.of_type(LinkDegradation)
        self._losses: Tuple[MessageLoss, ...] = plan.of_type(MessageLoss)
        self._ping_faults: Tuple[PingFault, ...] = plan.of_type(PingFault)
        self._trace_truncations: Tuple[TraceTruncation, ...] = plan.of_type(
            TraceTruncation
        )
        self._trace_corruptions: Tuple[TraceCorruption, ...] = plan.of_type(
            TraceCorruption
        )
        self._fs_budget: Dict[str, Optional[int]] = {}
        for spec in plan.of_type(FileSystemFault):
            # None marks a permanent failure; ints count down to zero.
            self._fs_budget[spec.machine] = None if spec.permanent else spec.fail_count

    # ------------------------------------------------------------------ links

    def link_blacked_out(self, spec: LinkSpec, when: float) -> bool:
        """Is the link inside an outage window at time *when*?"""
        return any(
            o.start_s <= when < o.end_s and link_matches(o.link, spec)
            for o in self._outages
        )

    def latency_factor(self, spec: LinkSpec, when: float) -> float:
        """Multiplier on sampled transfer times (1.0 when undisturbed)."""
        factor = 1.0
        for d in self._degradations:
            if d.start_s <= when < d.end_s and link_matches(d.link, spec):
                factor *= d.latency_factor
        return factor

    def _loss_probability(self, spec: LinkSpec, when: float) -> float:
        prob = 0.0
        for loss in self._losses:
            if link_matches(loss.link, spec):
                prob = max(prob, loss.probability)
        for d in self._degradations:
            if d.start_s <= when < d.end_s and link_matches(d.link, spec):
                prob = max(prob, d.loss_prob)
        return prob

    def message_delivery(
        self, spec: LinkSpec, when: float, policy: RetryPolicy
    ) -> float:
        """Extra sender-side delay for one message crossing *spec* at *when*.

        Simulates the delivery attempts: each attempt fails if the link is
        blacked out at the attempt time or the loss coin comes up bad; a
        failed attempt costs the policy's backoff before the next.  Returns
        the summed backoff delay of all failed attempts (0.0 for a clean
        first attempt — the common case takes no random draw unless a loss
        probability applies).  Raises
        :class:`~repro.errors.CommunicationTimeoutError` when the budget
        runs out, which models permanent link death.
        """
        if not (self._outages or self._degradations or self._losses):
            return 0.0
        waited = 0.0
        attempt = 1
        while True:
            now = when + waited
            lost = self.link_blacked_out(spec, now)
            if not lost:
                prob = self._loss_probability(spec, now)
                lost = prob > 0.0 and self.rng.random() < prob
            if not lost:
                if attempt > 1:
                    self.counters.retransmits += attempt - 1
                return waited
            self.counters.messages_dropped += 1
            backoff = policy.backoff_s(attempt)
            if attempt >= policy.max_attempts or waited + backoff > policy.timeout_s:
                self.counters.timeouts += 1
                raise CommunicationTimeoutError(
                    f"message on link '{spec.name or spec.link_class.value}' "
                    f"undeliverable after {attempt} attempts "
                    f"({waited * 1e3:.2f} ms of backoff)",
                    link=spec.name or spec.link_class.value,
                    attempts=attempt,
                    waited_s=waited,
                )
            waited += backoff
            attempt += 1

    # ------------------------------------------------------------ measurement

    def ping_dropped(self, spec: LinkSpec) -> bool:
        """Loses one offset-measurement exchange (caller re-pings)."""
        for fault in self._ping_faults:
            if fault.drop_prob > 0.0 and link_matches(fault.link, spec):
                if self.rng.random() < fault.drop_prob:
                    self.counters.pings_dropped += 1
                    return True
        return False

    def ping_asymmetry_s(self, spec: LinkSpec) -> float:
        """One-directional extra delay on the return leg of an exchange."""
        return sum(
            f.asymmetry_s
            for f in self._ping_faults
            if f.asymmetry_s > 0.0 and link_matches(f.link, spec)
        )

    @property
    def touches_measurement(self) -> bool:
        return bool(self._ping_faults)

    # ------------------------------------------------------------ file system

    def fs_create_fails(self, machine: str) -> bool:
        """Should this directory-creation attempt on *machine* fail?

        Consumes one unit of the machine's failure budget per call (so a
        transient fault fails exactly ``fail_count`` attempts, then heals).
        """
        for key in (machine, "*"):
            budget = self._fs_budget.get(key, 0)
            if budget is None:  # permanent
                self.counters.fs_failures_injected += 1
                return True
            if budget > 0:
                self._fs_budget[key] = budget - 1
                self.counters.fs_failures_injected += 1
                return True
        return False

    # ------------------------------------------------------------------ trace

    def mangle_trace(self, rank: int, blob: bytes) -> bytes:
        """Apply truncation/corruption specs for *rank* to an encoded trace."""
        for trunc in self._trace_truncations:
            if trunc.rank != rank:
                continue
            payload = max(0, len(blob) - HEADER_SIZE)
            keep = HEADER_SIZE + int(payload * trunc.keep_fraction)
            if keep < len(blob):
                blob = blob[:keep]
                self.counters.traces_truncated += 1
        for corr in self._trace_corruptions:
            if corr.rank != rank or len(blob) <= HEADER_SIZE:
                continue
            payload = len(blob) - HEADER_SIZE
            target = HEADER_SIZE + int(payload * corr.at_fraction)
            start = record_boundary(blob, target)
            if start >= len(blob):
                continue
            end = min(len(blob), start + corr.length)
            blob = blob[:start] + b"\xff" * (end - start) + blob[end:]
            self.counters.traces_corrupted += 1
        return blob


def build_injector(plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """Injector for *plan*, or None for a missing/empty plan.

    Returning None for the empty plan is what guarantees byte-identical
    behavior with faults disabled: every consumer checks for None before
    doing anything at all.
    """
    if plan is None or plan.is_empty:
        return None
    return FaultInjector(plan)
