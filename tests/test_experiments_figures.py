"""Tests regenerating the paper's figures and checking their shapes.

Figure 6 (Experiment 1, three metahosts): Grid Late Sender ≈ 9.3 % of
execution time, concentrated in ``cgiteration()`` on FH-BRS; Grid Wait at
Barrier ≈ 23.1 %, concentrated in ``ReadVelFieldFromTrace()`` on the XD1.

Figure 7 (Experiment 2, one metahost): grid severities vanish, the barrier
waiting time drops sharply, and the steering Late Sender grows — "now Trace
mostly waits for Partrace".
"""

import pytest

from repro.analysis.patterns import (
    GRID_LATE_SENDER,
    GRID_WAIT_AT_BARRIER,
    GRID_WAIT_AT_NXN,
    LATE_SENDER,
    WAIT_AT_BARRIER,
)
from repro.errors import ExperimentError
from repro.experiments.figures import (
    run_figure1,
    run_figure3,
    run_figure4,
)


class TestFigure1:
    def test_offset_changes_linearly(self):
        rows = run_figure1(duration_s=100.0, samples=11)
        offsets = [row[3] for row in rows]
        deltas = [b - a for a, b in zip(offsets, offsets[1:])]
        assert max(deltas) - min(deltas) < 1e-12  # constant slope
        assert offsets[0] != offsets[-1]  # drifting apart

    def test_initial_offset_visible(self):
        rows = run_figure1()
        t0, a0, b0, offset0 = rows[0]
        assert t0 == 0.0
        assert offset0 == pytest.approx(a0 - b0)
        assert abs(offset0) > 1e-3


class TestFigure3:
    def test_hierarchical_beats_flat_intra_metahost(self, table2_outcome):
        outcome = run_figure3(table2_outcome["run"])
        flat = outcome.max_abs_us("two-flat-offsets")
        hier = outcome.max_abs_us("two-hierarchical-offsets")
        assert hier < flat
        # Hierarchical pair errors stay below the smallest internal latency
        # (21.5 µs) — that is why it produces zero violations.
        assert hier < 21.5

    def test_flat_errors_exceed_internal_latency(self, table2_outcome):
        outcome = run_figure3(table2_outcome["run"])
        assert outcome.max_abs_us("two-flat-offsets") > 21.5


class TestFigure4:
    @pytest.fixture(scope="class")
    def analyses(self):
        return run_figure4(seed=3)

    def test_late_sender_semantics(self, analyses):
        result = analyses["late_sender"]
        assert result.metric_total(LATE_SENDER) > 0.1
        # Rank 1 is the slow one; its ring successor (rank 2) waits most.
        by_rank = result.cube.by_rank(LATE_SENDER)
        assert by_rank.get(2, 0.0) == max(by_rank.values())

    def test_wait_at_nxn_semantics(self, analyses):
        from repro.analysis.patterns import WAIT_AT_NXN

        result = analyses["wait_at_nxn"]
        assert result.metric_total(WAIT_AT_NXN) > 0.3
        by_rank = result.cube.by_rank(WAIT_AT_NXN)
        assert by_rank.get(1, 0.0) == 0.0  # the slow rank never waits

    def test_grid_variants_present(self, analyses):
        # The micro-machine spans two metahosts, so grid patterns fire.
        assert analyses["wait_at_nxn"].metric_total(GRID_WAIT_AT_NXN) > 0.0


class TestFigure6Experiment1:
    def test_grid_late_sender_band(self, metatrace_exp1):
        assert 5.0 <= metatrace_exp1.grid_late_sender_pct <= 15.0

    def test_grid_wait_at_barrier_band(self, metatrace_exp1):
        assert 15.0 <= metatrace_exp1.grid_wait_at_barrier_pct <= 32.0

    def test_late_sender_concentrated_in_cgiteration(self, metatrace_exp1):
        total = metatrace_exp1.result.metric_total(LATE_SENDER)
        in_cg = metatrace_exp1.late_sender_in("cgiteration")
        assert in_cg / total > 0.9

    def test_late_sender_mostly_on_fhbrs(self, metatrace_exp1):
        by_machine = metatrace_exp1.result.machine_breakdown(LATE_SENDER)
        assert by_machine["FH-BRS"] > 0.8 * sum(by_machine.values())

    def test_barrier_wait_in_read_vel_field_on_xd1(self, metatrace_exp1):
        total = metatrace_exp1.result.metric_total(WAIT_AT_BARRIER)
        in_read = metatrace_exp1.wait_at_barrier_in("ReadVelFieldFromTrace")
        assert in_read / total > 0.9
        by_machine = metatrace_exp1.result.machine_breakdown(WAIT_AT_BARRIER)
        assert by_machine["FZJ-XD1"] > 0.9 * sum(by_machine.values())

    def test_grid_subsets_of_parents(self, metatrace_exp1):
        result = metatrace_exp1.result
        assert result.metric_total(GRID_LATE_SENDER) <= result.metric_total(
            LATE_SENDER
        ) * (1 + 1e-9)
        assert result.metric_total(GRID_WAIT_AT_BARRIER) <= result.metric_total(
            WAIT_AT_BARRIER
        ) * (1 + 1e-9)

    def test_no_clock_violations_with_hierarchical_sync(self, metatrace_exp1):
        assert metatrace_exp1.result.violations.violations == 0


class TestFigure7Experiment2:
    def test_grid_patterns_vanish(self, metatrace_exp2):
        assert metatrace_exp2.grid_late_sender_pct == 0.0
        assert metatrace_exp2.grid_wait_at_barrier_pct == 0.0
        assert metatrace_exp2.grid_wait_at_nxn_pct == 0.0

    def test_barrier_wait_decreases_sharply(self, metatrace_exp1, metatrace_exp2):
        assert (
            metatrace_exp2.wait_at_barrier_pct
            < metatrace_exp1.wait_at_barrier_pct / 3
        )

    def test_cgiteration_wait_decreases(self, metatrace_exp1, metatrace_exp2):
        assert metatrace_exp2.late_sender_in("cgiteration") < (
            metatrace_exp1.late_sender_in("cgiteration") / 5
        )

    def test_steering_late_sender_increases(self, metatrace_exp1, metatrace_exp2):
        """Trace now mostly waits for Partrace (in getsteering)."""
        assert metatrace_exp2.late_sender_in("getsteering") > 10 * max(
            metatrace_exp1.late_sender_in("getsteering"), 1e-9
        )
        # And it dominates Experiment 2's Late Sender severity.
        total = metatrace_exp2.result.metric_total(LATE_SENDER)
        assert metatrace_exp2.late_sender_in("getsteering") / total > 0.5


class TestDriverErrors:
    def test_unknown_experiment_rejected(self):
        from repro.experiments.figures import run_metatrace_experiment

        with pytest.raises(ExperimentError):
            run_metatrace_experiment(figure=3)
